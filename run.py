#!/usr/bin/env python3
"""Artifact entry point (paper appendix §A.4.1): regenerate all figures.

    python run.py [--quick] [--no-ccz-sweep]

``--quick`` restricts the sweep to one instance per size and skips the
slow compilers' timeout demonstrations; without it, expect the run to
take on the order of the benchmark suite (minutes, not the paper's 24 h).
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))

from repro.evaluation import EvaluationConfig  # noqa: E402
from repro.evaluation.artifact import run_artifact  # noqa: E402
from repro.evaluation.runner import DEFAULT_BUDGETS  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small, fast sweep")
    parser.add_argument(
        "--no-ccz-sweep", action="store_true", help="skip the Fig. 10(c) sweep"
    )
    parser.add_argument(
        "--budget", type=float, default=60.0,
        help="Geyser/DPQA compile budget in seconds (default 60)",
    )
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="persist results to this JSON file and resume from it if it "
             "exists (interrupted sweeps recompile only missing cells)",
    )
    parser.add_argument(
        "--devices", metavar="NAMES", default=None,
        help="comma-separated device profiles to sweep the Weaver path "
             "over (see `weaver devices`); adds a per-device comparison "
             "table to the report",
    )
    args = parser.parse_args()
    budgets = dict(DEFAULT_BUDGETS)
    budgets["geyser"] = args.budget
    budgets["dpqa"] = args.budget
    devices = (
        tuple(name.strip() for name in args.devices.split(",") if name.strip())
        if args.devices
        else ()
    )
    if devices:
        # Validate up front: a typo'd or non-FPQA device must fail in
        # milliseconds, not after the whole figure sweep has run.
        from repro.devices import get_device
        from repro.exceptions import DeviceError

        for name in devices:
            try:
                profile = get_device(name)
            except DeviceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if profile.kind != "fpqa":
                print(
                    f"error: --devices sweeps the Weaver FPQA path; "
                    f"{name!r} is a {profile.kind} profile",
                    file=sys.stderr,
                )
                return 2
    if args.quick:
        config = EvaluationConfig(
            compilers=("superconducting", "atomique", "weaver", "dpqa", "geyser"),
            fixed_instances=tuple(f"uf20-{i:02d}" for i in range(1, 4)),
            scaling_sizes=(20, 50, 75),
            instances_per_size=1,
            budgets=budgets,
            devices=devices,
        )
    else:
        config = EvaluationConfig(budgets=budgets, devices=devices)
    run_artifact(
        config,
        include_ccz_sweep=not args.no_ccz_sweep,
        verbose=True,
        store_path=args.store,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
