"""Retargeting: one workload, two backends (paper Figure 3, both arrows).

Compiles the same MAX-3SAT instance down both of Weaver's paths — the
superconducting path (SABRE routing onto a Washington-like 127-qubit
heavy-hex backend) and the FPQA path (wOptimizer) — and prints the
compile-time / execution-time / fidelity trade-off the paper's evaluation
quantifies: superconducting executes faster, the FPQA program is far more
likely to be *correct* per shot.

Run:  python examples/retarget_superconducting.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    SuperconductingTranspiler,
    compile_formula,
    program_duration_us,
    program_eps,
    qaoa_circuit,
    satlib_instance,
)


def main() -> None:
    formula = satlib_instance("uf20-01")
    print(f"Workload: {formula.name} ({formula.num_vars} vars, {formula.num_clauses} clauses)")

    # Hardware-agnostic compilation: the shared QAOA circuit.
    circuit = qaoa_circuit(formula, measure=True)
    print(f"QAOA circuit: {circuit.num_qubits} qubits, {circuit.size} ops")

    # Path 1: superconducting (Qiskit-style transpile to heavy-hex).
    sc = SuperconductingTranspiler().transpile(circuit)
    print("\nSuperconducting path (127-qubit heavy-hex):")
    print(f"  compile time:   {sc.compile_seconds:.2f} s")
    print(f"  SWAPs inserted: {sc.num_swaps}")
    print(f"  gate counts:    {sc.counts}")
    print(f"  execution time: {sc.duration_us / 1e3:.2f} ms")
    print(f"  EPS:            {sc.eps:.3e}")

    # Path 2: FPQA (wOptimizer).
    fpqa = compile_formula(formula)
    duration_us = program_duration_us(fpqa.program)
    eps = program_eps(fpqa.program)
    print("\nFPQA path (Weaver wOptimizer):")
    print(f"  compile time:   {fpqa.compile_seconds:.2f} s")
    print(f"  zones (colors): {fpqa.stats['clause-coloring']['num_colors']}")
    print(f"  pulse counts:   {fpqa.program.pulse_counts()}")
    print(f"  execution time: {duration_us / 1e3:.2f} ms")
    print(f"  EPS:            {eps:.3e}")

    print("\nTrade-off (paper §8):")
    print(f"  superconducting executes {duration_us / sc.duration_us:.0f}x faster,")
    print(f"  but the FPQA program is {eps / max(sc.eps, 1e-300):.3g}x more likely")
    print("  to produce a correct shot - superconducting fidelity collapses")
    print("  under the SWAP overhead of rigid connectivity.")
    assert eps > sc.eps


if __name__ == "__main__":
    main()
