"""Retargeting: one workload, two backends (paper Figure 3, both arrows).

Compiles the same MAX-3SAT instance for two registered targets — the
superconducting path (SABRE routing onto a Washington-like 127-qubit
heavy-hex backend) and the FPQA path (wOptimizer) — with the *same*
``repro.compile`` call, and prints the compile-time / execution-time /
fidelity trade-off the paper's evaluation quantifies: superconducting
executes faster, the FPQA program is far more likely to be *correct* per
shot.

Run:  python examples/retarget_superconducting.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro


def main() -> None:
    formula = repro.satlib_instance("uf20-01")
    print(f"Workload: {formula.name} ({formula.num_vars} vars, {formula.num_clauses} clauses)")
    print(f"Registered targets: {', '.join(repro.available_targets())}")

    # Retargeting is the difference of one string.
    sc = repro.compile(formula, target="superconducting")
    fpqa = repro.compile(formula, target="fpqa")

    print("\nSuperconducting path (127-qubit heavy-hex):")
    print(f"  compile time:   {sc.compile_seconds:.2f} s")
    print(f"  SWAPs inserted: {sc.stats['num_swaps']}")
    print(f"  gate counts:    {sc.stats['counts']}")
    print(f"  execution time: {sc.execution_seconds * 1e3:.2f} ms")
    print(f"  EPS:            {sc.eps:.3e}")

    print("\nFPQA path (Weaver wOptimizer):")
    print(f"  compile time:   {fpqa.compile_seconds:.2f} s")
    print(f"  zones (colors): {fpqa.stats['clause-coloring']['num_colors']}")
    print(f"  pulse counts:   {fpqa.program.pulse_counts()}")
    print(f"  execution time: {fpqa.execution_seconds * 1e3:.2f} ms")
    print(f"  EPS:            {fpqa.eps:.3e}")

    print("\nTrade-off (paper §8):")
    print(f"  superconducting executes {fpqa.execution_seconds / sc.execution_seconds:.0f}x faster,")
    print(f"  but the FPQA program is {fpqa.eps / max(sc.eps, 1e-300):.3g}x more likely")
    print("  to produce a correct shot - superconducting fidelity collapses")
    print("  under the SWAP overhead of rigid connectivity.")
    assert fpqa.eps > sc.eps


if __name__ == "__main__":
    main()
