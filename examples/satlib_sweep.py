"""A fast mini-evaluation: Weaver vs Atomique over growing SATLIB sizes.

A lightweight version of the paper's Figure 8(b)/11(b)/12(b) sweep using
only the two fast FPQA compilers, showing the trends the full benchmark
harness (``pytest benchmarks/``) reproduces with all five systems:
compile time stays flat-ish, Weaver's execution-time and EPS advantage
over Atomique compounds with size.

Run:  python examples/satlib_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import AtomiqueCompiler, WeaverCompiler, run_with_timeout
from repro.evaluation import format_table
from repro.sat import satlib_instance


def main() -> None:
    rows = []
    for size in (20, 50, 75, 100):
        formula = satlib_instance(f"uf{size}-01")
        weaver = run_with_timeout(WeaverCompiler(), formula, budget_seconds=300)
        atomique = run_with_timeout(AtomiqueCompiler(), formula, budget_seconds=300)
        rows.append(
            {
                "vars": size,
                "w_compile_s": weaver.compile_seconds,
                "a_compile_s": atomique.compile_seconds,
                "w_exec_s": weaver.execution_seconds,
                "a_exec_s": atomique.execution_seconds,
                "w_eps": weaver.eps,
                "a_eps": atomique.eps,
                "eps_ratio": weaver.eps / atomique.eps if atomique.eps else None,
            }
        )
        print(f"finished size {size}")
    print()
    print(format_table(rows, title="Weaver vs Atomique scaling sweep"))
    print(
        "Note how eps_ratio grows by orders of magnitude with size -\n"
        "global-pulse parallelism amortizes error, per-gate movement does not\n"
        "(the paper's Figure 12(b), reporting ~1e8x at 150 variables)."
    )


if __name__ == "__main__":
    main()
