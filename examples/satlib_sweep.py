"""A fast mini-evaluation: Weaver vs Atomique over growing SATLIB sizes.

A lightweight version of the paper's Figure 8(b)/11(b)/12(b) sweep using
only the two fast FPQA compilers, run through one batched
:class:`repro.CompilerSession` — per-target budgets included — showing
the trends the full benchmark harness (``pytest benchmarks/``) reproduces
with all five systems: compile time stays flat-ish, Weaver's
execution-time and EPS advantage over Atomique compounds with size.

Run:  python examples/satlib_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.evaluation import format_table


def main() -> None:
    sizes = (20, 50, 75, 100)
    workloads = [repro.satlib_instance(f"uf{size}-01") for size in sizes]
    session = repro.CompilerSession(budgets={"fpqa": 300.0, "atomique": 300.0})

    # One batched call compiles every (workload, target) cell; results
    # come back workload-major, in input order.
    results = session.compile_many(workloads, targets=["fpqa", "atomique"])

    rows = []
    for size, (weaver, atomique) in zip(
        sizes, zip(results[0::2], results[1::2])
    ):
        rows.append(
            {
                "vars": size,
                "w_compile_s": weaver.compile_seconds,
                "a_compile_s": atomique.compile_seconds,
                "w_exec_s": weaver.execution_seconds,
                "a_exec_s": atomique.execution_seconds,
                "w_eps": weaver.eps,
                "a_eps": atomique.eps,
                "eps_ratio": weaver.eps / atomique.eps if atomique.eps else None,
            }
        )
        print(f"finished size {size}")
    print()
    print(format_table(rows, title="Weaver vs Atomique scaling sweep"))
    print(
        "Note how eps_ratio grows by orders of magnitude with size -\n"
        "global-pulse parallelism amortizes error, per-gate movement does not\n"
        "(the paper's Figure 12(b), reporting ~1e8x at 150 variables)."
    )


if __name__ == "__main__":
    main()
