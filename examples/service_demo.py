"""Service mode: the async compilation server, end to end.

Three acts:

1. **In-process service** — submit a burst of mixed-target traffic from
   two tenants through :class:`repro.service.CompilationService`, watch
   per-job progress events, and read the shard/artifact counters.
2. **Warm resubmission** — send the same traffic again; every job
   resolves from the content-addressed artifact store without touching
   a compiler, byte-identical to the first pass.
3. **Socket front door** — host the same service on a Unix socket
   (what ``weaver serve`` does) and drive it with the JSON-lines client
   (what ``weaver submit`` does).

Run:  python examples/service_demo.py
"""

import asyncio
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.service import CompilationService, ServiceClient, ServiceServer

TARGETS = ("fpqa", "superconducting")


def progress(job, event: str) -> None:
    if event == "done" and job.from_cache:
        event = "done (artifact cache)"
    print(f"    [{job.client}] {job.job_id} {job.target}: {event}")


async def in_process_demo() -> None:
    workloads = [repro.satlib_instance(f"uf20-{i:02d}") for i in range(1, 4)]

    async with CompilationService(shards=2, backend="thread") as service:
        print("== act 1: cold traffic from two tenants ==")
        start = time.perf_counter()
        jobs = [
            await service.submit(
                workload,
                target=target,
                client=client,
                on_progress=progress,
            )
            for client in ("alice", "bob")
            for workload in workloads
            for target in TARGETS
        ]
        results = await service.gather(jobs)
        cold_s = time.perf_counter() - start
        unique = len({job.key for job in jobs})
        print(
            f"  {len(results)} jobs ({unique} unique cells) in {cold_s:.2f}s; "
            f"all succeeded: {all(r.succeeded for r in results)}"
        )

        print("\n== act 2: warm resubmission ==")
        start = time.perf_counter()
        again = [
            await service.submit(workload, target=target, client="alice")
            for workload in workloads
            for target in TARGETS
        ]
        await service.gather(again)
        warm_s = time.perf_counter() - start
        print(
            f"  {len(again)} jobs in {warm_s * 1e3:.1f} ms, "
            f"all from cache: {all(job.from_cache for job in again)}"
        )

        stats = service.stats()
        artifacts = stats["artifacts"]
        print(
            f"  artifact store: {artifacts['entries']} entries, "
            f"hit rate {artifacts['hit_rate']:.0%}, "
            f"jobs per shard {stats['jobs_per_shard']}"
        )


async def socket_demo() -> None:
    print("\n== act 3: the socket front door ==")
    workload = repro.satlib_instance("uf20-01")
    socket_path = Path(tempfile.mkdtemp(prefix="weaver-demo-")) / "weaver.sock"
    service = CompilationService(shards=2, backend="thread")
    async with ServiceServer(service, socket_path):
        async with await ServiceClient.connect(socket_path) as client:
            pong = await client.ping()
            print(f"  connected (protocol v{pong['version']})")
            first = await client.submit(workload, target="fpqa", client="demo")
            second = await client.submit(workload, target="fpqa", client="demo")
            print(
                f"  {first.job_id}: {first.result.num_pulses} pulses, "
                f"events {first.events}"
            )
            print(
                f"  {second.job_id}: cached={second.from_cache}, "
                f"byte-identical={first.raw == second.raw}"
            )
            stats = await client.stats()
            print(f"  server counters: {stats['jobs_submitted']} jobs submitted")
    print(f"  server stopped, socket removed: {not socket_path.exists()}")


def main() -> None:
    asyncio.run(in_process_demo())
    asyncio.run(socket_demo())


if __name__ == "__main__":
    main()
