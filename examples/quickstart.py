"""Quickstart: compile a MAX-3SAT formula to an FPQA program and verify it.

Walks the full Weaver workflow of paper Figure 3 on the running example of
Figure 5 / Algorithm 1:

1. express the problem as a MAX-3SAT formula;
2. compile it with ``repro.compile(..., target="fpqa")`` — the wOptimizer
   pipeline (clause coloring -> color shuttling -> 3-qubit gate
   compression) producing a validated wQasm program;
3. inspect the unified result: pulse counts, execution time and EPS;
4. verify equivalence with the wChecker.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro


def main() -> None:
    # The paper's example formula: three clauses over six variables.
    formula = repro.CnfFormula.from_lists(
        [[-1, -2, -3], [4, -5, 6], [3, 5, -6]], num_vars=6, name="paper-example"
    )
    print(f"Formula: {formula}")

    # Compile for the FPQA target.  The result bundles the wQasm program,
    # per-pass statistics, cost estimates, and the reference circuit.
    result = repro.compile(formula, target="fpqa")
    program = result.program
    stats = result.stats

    print(f"\nCompiled in {result.compile_seconds * 1e3:.1f} ms")
    print(f"  colors (parallel zones): {stats['clause-coloring']['num_colors']}")
    print(f"  shuttle waves:           {stats['color-shuttling']['total_waves']}")
    print(f"  CCZ compression used:    {stats['gate-compression']['use_compression']}")
    print(f"  pulse counts:            {program.pulse_counts()}")
    print(f"  est. execution time:     {result.execution_seconds * 1e3:.2f} ms")
    print(f"  est. success prob (EPS): {result.eps:.4f}")

    # The wQasm text is a superset of OpenQASM 3: annotations + gates.
    lines = program.to_wqasm().splitlines()
    print("\nFirst lines of the wQasm program:")
    for line in lines[:12]:
        print(f"  {line}")
    print(f"  ... ({len(lines)} lines total)")

    # Verify with the wChecker: pulses must implement the logical gates,
    # and the logical circuit must match the original QAOA circuit.
    report = repro.check_program(program, reference=result.native_circuit)
    print(f"\nwChecker: ok={report.ok}")
    print(f"  operations checked: {report.operations_checked}")
    print(f"  pulse-to-gate reconstruction equivalent: {report.reconstructed_equivalent}")
    print(f"  equivalent to original QAOA circuit:     {report.reference_equivalent}")
    report.raise_on_failure()
    print("\nAll checks passed.")


if __name__ == "__main__":
    main()
