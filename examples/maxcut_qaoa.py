"""Max-cut via QAOA on an FPQA — the paper's Figure 1 scenario, end to end.

Encodes a 6-vertex max-cut instance in the style of Figure 1 as MAX-SAT
(each edge (u, v) contributes the clauses (u OR v) and (NOT u OR NOT v);
both are satisfied exactly when the edge is cut), compiles the QAOA
circuit with Weaver, simulates the *logical* circuit, and interprets the
measurement distribution as a near-optimal cut — Figure 1(c)/(d).

Run:  python examples/maxcut_qaoa.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import CnfFormula, QaoaParameters, check_program
from repro.qaoa import expected_unsatisfied, sample_best_assignment

# The graph of Figure 1(a): vertices a..f, edges chosen so the best cut is
# {a, b, e} vs {c, d, f}.
VERTICES = "abcdef"
EDGES = [
    ("a", "c"), ("a", "d"), ("b", "c"), ("b", "f"),
    ("e", "c"), ("e", "f"), ("a", "b"), ("d", "f"),
]


def maxcut_formula(edges: list[tuple[str, str]]) -> CnfFormula:
    """MAX-SAT encoding: an edge is cut iff both of its clauses hold."""
    index = {v: i + 1 for i, v in enumerate(VERTICES)}
    clauses = []
    for u, v in edges:
        clauses.append([index[u], index[v]])
        clauses.append([-index[u], -index[v]])
    return CnfFormula.from_lists(clauses, num_vars=len(VERTICES), name="maxcut-fig1")


def cut_size(assignment: list[bool]) -> int:
    index = {v: i for i, v in enumerate(VERTICES)}
    return sum(
        1 for u, v in EDGES if assignment[index[u]] != assignment[index[v]]
    )


def main() -> None:
    formula = maxcut_formula(EDGES)
    print(f"Max-cut instance: {len(VERTICES)} vertices, {len(EDGES)} edges")
    print(f"MAX-SAT encoding: {formula.num_clauses} clauses")

    # Sweep a small angle grid (stand-in for the classical outer loop).
    best_params, best_energy = None, float("inf")
    for gamma in (-1.2, -0.8, -0.4, 0.4, 0.8, 1.2):
        for beta in (0.15, 0.3, 0.45):
            params = QaoaParameters((gamma,), (beta,))
            result = repro.compile(formula, parameters=params, measure=False)
            energy = expected_unsatisfied(formula, result.program.logical_circuit())
            if energy < best_energy:
                best_params, best_energy = params, energy
    print(
        f"Best angles: gamma={best_params.gammas[0]:+.2f} "
        f"beta={best_params.betas[0]:+.2f} "
        f"(expected unsatisfied clauses {best_energy:.3f})"
    )

    # Compile at the best angles and verify before "running".
    result = repro.compile(formula, parameters=best_params)
    report = check_program(result.program, reference=result.native_circuit)
    report.raise_on_failure()
    print(f"wChecker passed over {report.operations_checked} operations")

    # Figure 1(c)/(d): sample the output distribution, read off the cut.
    assignment, satisfied = sample_best_assignment(
        formula, result.program.logical_circuit(), shots=2048, seed=7
    )
    left = {v for v, bit in zip(VERTICES, assignment) if bit}
    right = set(VERTICES) - left
    print(f"\nBest sampled bitstring satisfies {satisfied}/{formula.num_clauses} clauses")
    print(f"Cut: {sorted(left)} | {sorted(right)}  (size {cut_size(assignment)})")
    assert cut_size(assignment) >= 6, "QAOA should find a near-optimal cut"


if __name__ == "__main__":
    main()
