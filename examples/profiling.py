"""Profiling a compile: the ``repro.perf`` instrumentation subsystem.

Every FPQA compile carries a performance profile — per-pass timings,
per-primitive counts, cache hit rates — at negligible overhead, so
"where did the time go?" never requires a re-run under a profiler:

1. compile a mid-size random 3-SAT instance and print the profile table
   (the same table ``weaver compile --profile`` prints);
2. read individual counters from ``result.profile`` (a JSON-safe dict);
3. compare against the unoptimized reference pipeline
   (``OptimizationFlags.reference()``) to see the fast paths' effect;
4. append a benchmark run to a trajectory file with the bench runner.

Run:  python examples/profiling.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.perf import OptimizationFlags, format_profile_table, run_compile_bench
from repro.sat.generator import random_ksat


def main() -> None:
    formula = random_ksat(60, 256, seed=7)

    # 1. Every compile records a profile; no flags needed.
    result = repro.compile(formula, target="fpqa")
    print(f"Compiled {formula.name}: {result.compile_seconds * 1e3:.1f} ms\n")
    print(format_profile_table(result.profile))

    # 2. The profile is a plain dict (JSON round trip included), so
    #    dashboards and CI checks can consume it directly.
    raman = result.profile["primitives"]["raman_local"]
    angles = result.profile["caches"]["raman_angles"]
    hit_rate = angles["hits"] / (angles["hits"] + angles["misses"])
    print(f"\n{raman['count']} local Raman pulses, "
          f"{hit_rate:.1%} angle-cache hit rate")

    # 3. The legacy pipeline is one option away — compare end to end.
    reference = repro.compile(
        formula,
        target="fpqa",
        target_options={"optimize": OptimizationFlags.reference()},
    )
    speedup = reference.compile_seconds / result.compile_seconds
    print(f"\nReference pipeline: {reference.compile_seconds * 1e3:.1f} ms "
          f"-> fast paths give {speedup:.1f}x on this formula")

    # 4. The bench runner measures a grid of sizes and returns the run
    #    record it would append to BENCH_compile.json (see
    #    `python -m repro.perf.bench --help` for the file-writing CLI).
    run = run_compile_bench(sizes=(20, 40), repeats=1, verbose=False)
    for cell in run["cells"]:
        print(f"  n={cell['num_vars']}: {cell['optimized_seconds']:.3f}s "
              f"({cell['speedup']:.1f}x vs reference)")


if __name__ == "__main__":
    main()
