"""Batched compilation sessions: sweeps with budgets, caching, fan-out.

Production-style use of the target API: one :class:`repro.CompilerSession`
compiles a grid of (workload x target) cells with

* per-target compile budgets (runaway compilers become ``timed_out`` rows
  instead of hung processes — the paper's "X" cells at laptop scale);
* an on-disk JSON result cache (re-run this script and watch every cell
  come back instantly); and
* optional process-pool fan-out (``parallel=N``) that keeps results in
  input order.

Run:  python examples/batched_compilation.py [--parallel N]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.evaluation import format_table

TARGETS = ("fpqa", "fpqa-nocompress", "atomique", "dpqa")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", type=int, default=2)
    parser.add_argument(
        "--cache-dir", default=".weaver-cache", help="on-disk result cache"
    )
    args = parser.parse_args()

    workloads = [repro.satlib_instance(f"uf20-{i:02d}") for i in range(1, 5)]
    session = repro.CompilerSession(
        budgets={"dpqa": 30.0, "geyser": 30.0},
        cache_dir=args.cache_dir,
    )

    start = time.perf_counter()
    results = session.compile_many(
        workloads, targets=TARGETS, parallel=args.parallel
    )
    elapsed = time.perf_counter() - start

    rows = [
        {
            "workload": r.workload,
            "target": r.target,
            "ok": r.succeeded,
            "cached": r.cached,
            "compile_s": r.compile_seconds,
            "eps": r.eps,
            "pulses": r.num_pulses,
        }
        for r in results
    ]
    print(format_table(rows, title="Batched compilation grid"))
    hits = sum(1 for r in results if r.cached)
    print(
        f"{len(results)} cells in {elapsed:.2f}s with parallel={args.parallel} "
        f"({hits} served from {args.cache_dir}/)"
    )
    print("Re-run this script: every cell is a cache hit.")


if __name__ == "__main__":
    main()
