"""Watch one compile+simulate request end to end with the telemetry layer.

Turns on span tracing, runs ``repro.compile(..., simulate=...)`` on a
uf20 MAX-3SAT instance, and then shows every observability surface at
once: the span tree of the request (compile passes nested under the
compile span, simulator phases under ``sim.run``), the global metrics
registry (the simulator's shots/sec histogram) in Prometheus text
exposition, and a Chrome trace-event file you can open at
https://ui.perfetto.dev to see the same request on a timeline.

The equivalent one-liner for any CLI invocation::

    weaver trace -o trace.json simulate uf20-01 --shots 200

Run:  python examples/telemetry_demo.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import telemetry

INSTANCE = "uf20-01"
SHOTS = 200
SEED = 7
TRACE_PATH = Path("telemetry_demo_trace.json")


def main() -> None:
    formula = repro.satlib_instance(INSTANCE)
    print(
        f"{INSTANCE}: {formula.num_vars} variables, "
        f"{formula.num_clauses} clauses; tracing one "
        f"compile+simulate ({SHOTS} shots)\n"
    )

    # 1. Record: every instrumentation point in the compiler and the
    #    simulator starts emitting spans to the returned tracer.
    tracer = telemetry.configure(enabled=True)
    try:
        result = repro.compile(
            formula, target="fpqa", simulate={"shots": SHOTS, "seed": SEED}
        )
    finally:
        spans = tracer.export()
        telemetry.configure(enabled=False)

    execution = result.execution
    print(
        f"compiled and executed: {result.num_pulses} pulses, "
        f"sampled EPS {execution['eps_sampled']:.4f}\n"
    )

    # 2. The span tree: the causal structure of the request, with the
    #    codegen passes and simulator phases as children.
    print("span tree:")
    print(telemetry.format_trace_tree(spans))

    # 3. The metrics registry: histograms with p50/p90/p99, rendered the
    #    way `weaver top` renders a running service's registry.
    metrics = telemetry.get_metrics().to_dict()
    table = telemetry.format_metrics_table(metrics)
    print("\nglobal metrics registry:")
    print(table)

    # ... and the same snapshot in Prometheus text exposition, ready for
    # a scraper.
    print("\nprometheus exposition (excerpt):")
    for line in telemetry.prometheus_text(metrics).splitlines()[:6]:
        print(f"  {line}")

    # 4. The Chrome trace: load it in ui.perfetto.dev for the timeline.
    payload = telemetry.chrome_trace(spans)
    telemetry.validate_chrome_trace(payload)
    TRACE_PATH.write_text(json.dumps(payload), encoding="utf-8")
    print(
        f"\nwrote {len(spans)} spans to {TRACE_PATH} "
        "(open in https://ui.perfetto.dev)"
    )


if __name__ == "__main__":
    main()
