"""Close the loop: compile one instance on two devices, then *run* it.

Everything before repro.sim estimated quality analytically; this demo
executes the compiled artifacts.  The same uf20 MAX-3SAT instance is
compiled for the baseline rubidium machine and the next-generation
profile, each compiled program is replayed shot by shot under its own
device's Monte-Carlo noise model, and the sampled results — EPS with a
confidence interval, and the QAOA approximation ratio — show what the
better hardware actually buys at execution time.

Run:  python examples/simulate_demo.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro

INSTANCE = "uf20-01"
DEVICES = ("rubidium-baseline", "rubidium-nextgen")
SHOTS = 1000
SEED = 7


def main() -> None:
    formula = repro.satlib_instance(INSTANCE)
    print(
        f"{INSTANCE}: {formula.num_vars} variables, "
        f"{formula.num_clauses} clauses; {SHOTS} shots per device\n"
    )
    rows = []
    for device in DEVICES:
        result = repro.compile(formula, target="fpqa", device=device)
        execution = result.simulate(shots=SHOTS, seed=SEED, formula=formula)
        rows.append((device, execution))
        low, high = execution.eps_ci
        print(f"{device}:")
        print(f"  pulses:              {result.num_pulses}")
        print(f"  analytic EPS:        {execution.eps_analytic:.4f}")
        print(
            f"  sampled EPS:         {execution.eps_sampled:.4f} "
            f"(95% CI {low:.4f}-{high:.4f})"
        )
        print(
            f"  mean satisfied:      {execution.mean_satisfied:.2f}"
            f"/{execution.optimum_satisfied:g}"
        )
        print(f"  approximation ratio: {execution.approximation_ratio:.4f}")
        top = next(iter(execution.counts.items()))
        print(f"  most frequent:       {top[0]} ({top[1]} shots)\n")

    (baseline_name, baseline), (nextgen_name, nextgen) = rows
    gain = nextgen.eps_sampled - baseline.eps_sampled
    ratio_delta = nextgen.approximation_ratio - baseline.approximation_ratio
    print(
        f"{nextgen_name} executes the same program with "
        f"{gain:+.3f} sampled EPS over {baseline_name} "
        f"(approximation ratio {ratio_delta:+.4f}) — the device cost-model "
        "gap, observed in sampled outcomes instead of estimated."
    )


if __name__ == "__main__":
    main()
