"""Device sweep: one compiler, one workload suite, many machines.

The retargetability demonstration below the target level: the same
Weaver FPQA pipeline compiles the same formulas for every registered
FPQA device profile (different trap geometry, AOD limits, fidelities),
and the superconducting pipeline for every superconducting profile.
Each profile carries a precomputed noise-aware cost model, so the
per-device EPS/timing numbers come straight from the result rows.

Run:  python examples/device_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.evaluation import format_table


def main() -> None:
    workloads = [repro.satlib_instance(f"uf20-{i:02d}") for i in range(1, 4)]
    session = repro.CompilerSession()

    rows = []
    for kind, target in (("fpqa", "fpqa"), ("superconducting", "superconducting")):
        devices = repro.list_devices(kind=kind)
        results = session.compile_many(workloads, targets=target, devices=devices)
        for device in devices:
            cells = [r for r in results if r.device == device and r.succeeded]
            failed = [r for r in results if r.device == device and not r.succeeded]
            rows.append(
                {
                    "device": device,
                    "target": target,
                    "ok": len(cells),
                    "failed": len(failed),
                    "eps": (
                        sum(r.eps for r in cells) / len(cells) if cells else None
                    ),
                    "execution_s": (
                        sum(r.execution_seconds for r in cells) / len(cells)
                        if cells
                        else None
                    ),
                }
            )

    print(format_table(rows, title="uf20 suite across every registered device"))

    # A sweep cell that cannot fit its device becomes a row, not a crash:
    # zone-lite-16 holds 16 atoms and the uf20 suite needs 20.
    tight = next(row for row in rows if row["device"] == "zone-lite-16")
    print(f"zone-lite-16 rejected {tight['failed']} oversized instances")

    # Registering a custom machine is one call; it joins every sweep.
    repro.register_device(
        repro.DeviceProfile(
            name="my-lab-rig",
            kind="fpqa",
            description="hypothetical upgrade: better CCZ, slower shuttles",
            params={"fidelity_ccz": 0.995, "shuttle_settle_us": 10.0},
        )
    )
    result = repro.compile(workloads[0], target="fpqa", device="my-lab-rig")
    print(f"my-lab-rig: EPS {result.eps:.4f} "
          f"({result.execution_seconds * 1e3:.2f} ms execution)")


if __name__ == "__main__":
    main()
