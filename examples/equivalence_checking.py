"""wChecker in action: catching a miscompiled FPQA program (paper §6).

Compiles a formula, then injects three classes of compiler bugs into the
wQasm program — a wrong Raman rotation angle, a corrupted shuttle offset
(atoms end up in the wrong place, so a Rydberg pulse entangles the wrong
clusters), and a dropped pulse whose logical gates are still claimed —
and shows that the wChecker pinpoints each one.

Run:  python examples/equivalence_checking.py
"""

import copy
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import CnfFormula, check_program
from repro.fpqa import RamanLocal, RydbergPulse, Shuttle, ShuttleMove
from repro.wqasm.program import AnnotatedOperation


def tamper(program, predicate, replacement):
    """Return a copy of ``program`` with the first matching pulse replaced."""
    tampered = copy.deepcopy(program)
    for index, operation in enumerate(tampered.operations):
        instructions = list(operation.instructions)
        for pos, instruction in enumerate(instructions):
            if predicate(instruction):
                instructions[pos] = replacement(instruction)
                tampered.operations[index] = AnnotatedOperation(
                    tuple(instructions), operation.gates
                )
                return tampered
    raise RuntimeError("nothing to tamper with")


def drop_pulse(program):
    """Remove a Rydberg pulse but keep claiming its gates."""
    tampered = copy.deepcopy(program)
    for index, operation in enumerate(tampered.operations):
        if any(isinstance(i, RydbergPulse) for i in operation.instructions):
            kept = tuple(
                i for i in operation.instructions if not isinstance(i, RydbergPulse)
            )
            tampered.operations[index] = AnnotatedOperation(kept, operation.gates)
            return tampered
    raise RuntimeError("no pulse to drop")


def main() -> None:
    formula = CnfFormula.from_lists(
        [[-1, -2, -3], [4, -5, 6], [3, 5, -6]], num_vars=6, name="paper-example"
    )
    result = repro.compile(formula, target="fpqa", measure=False)
    program = result.program

    print("Checking the honest program...")
    report = check_program(program, reference=result.native_circuit)
    print(f"  ok={report.ok} ({report.operations_checked} operations)\n")
    assert report.ok

    bugs = {
        "wrong Raman angle": tamper(
            program,
            lambda i: isinstance(i, RamanLocal),
            lambda i: RamanLocal(i.qubit, i.x + 0.4, i.y, i.z),
        ),
        "corrupted shuttle offset": tamper(
            program,
            lambda i: isinstance(i, Shuttle) and i.move.axis == "row",
            lambda i: Shuttle(ShuttleMove("row", 0, i.move.offset * 0.5)),
        ),
        "dropped Rydberg pulse": drop_pulse(program),
    }
    for name, buggy in bugs.items():
        report = check_program(buggy)
        verdict = "CAUGHT" if not report.ok else "MISSED"
        first = report.operation_failures[0] if report.operation_failures else "-"
        print(f"Bug: {name:26s} -> {verdict}")
        print(f"  first finding: {first[:110]}")
        assert not report.ok, f"the checker must catch: {name}"
    print("\nAll injected bugs were caught.")


if __name__ == "__main__":
    main()
