"""wLint in action: prove a compile clean, then catch an injected bug.

The static analyzer is the cheapest rung of the evidence ladder
(lint -> wChecker -> simulate): one linear pass over the compiled
artifact, no unitary reconstruction, no execution.  This demo compiles
a SATLIB instance, shows the clean verdict, then injects a
shuttle-order fault from the mutation corpus — the kind of corruption
a codegen bug would actually produce — and shows both the static and
the dynamic tier rejecting it.

Run:  python examples/lint_demo.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro.analysis import analyze_program, format_report
from repro.analysis.mutations import corrupt_shuttle_order

INSTANCE = "uf20-01"


def main() -> None:
    formula = repro.satlib_instance(INSTANCE)
    result = repro.compile(formula, target="fpqa", analyze=True)
    print(
        f"{INSTANCE}: {formula.num_vars} variables -> "
        f"{result.num_pulses} pulses\n"
    )

    # Tier 1 — static proof, recorded on the result by analyze=True.
    report = result.analyze()
    start = time.perf_counter()
    result.analyze()
    lint_ms = (time.perf_counter() - start) * 1e3
    print(f"wLint on the clean compile ({lint_ms:.1f} ms):")
    print(f"  {format_report(report)}\n")

    # Inject a fault: swap the legs of one parallel shuttle so the AOD
    # rows cross — exactly what a buggy move scheduler would emit.
    mutant = corrupt_shuttle_order(result.program)
    bad = analyze_program(mutant, hardware=result.fpqa_hardware())
    print("wLint on the shuttle-order mutant:")
    print(f"  {format_report(bad, max_findings=3)}\n")
    assert not bad.ok and bad.errors

    # Tier 2 — the dynamic wChecker agrees, at ~10x the cost.
    start = time.perf_counter()
    try:
        dynamic = repro.check_program(
            mutant,
            reference=result.native_circuit,
            hardware=result.fpqa_hardware(),
        )
        verdict = "ok" if dynamic.ok else "rejected"
    except repro.WeaverError as exc:
        verdict = f"rejected during replay ({type(exc).__name__})"
    checker_ms = (time.perf_counter() - start) * 1e3
    print(f"wChecker on the same mutant ({checker_ms:.1f} ms): {verdict}")
    print(
        f"\nSame verdict, {checker_ms / max(lint_ms, 1e-9):.0f}x the cost — "
        "run the linter on everything, the checker on what matters."
    )


if __name__ == "__main__":
    main()
