"""Fault tolerance: chaos injection, crash recovery, dead letters.

Three acts, all bit-reproducible from one seed:

1. **Supervised retries** — a seeded :class:`repro.service.ChaosPolicy`
   crashes 30% of worker executions; the service restarts the shard and
   retries each victim under its :class:`repro.service.RetryPolicy`,
   and a poison job (crashes twice) is quarantined as a dead letter.
2. **Kill -9 and recover** — a service with a durable
   :class:`repro.service.JobJournal` accepts a burst, is torn down with
   most of it still queued, and a *fresh* service replays the journal:
   every accepted job reaches done-or-dead, nothing runs twice.
3. **Load shedding** — a tiny queue high-water mark sheds a burst with
   structured ``retry_after`` hints; the resubmission drains clean.

Run:  python examples/chaos_demo.py [seed]
"""

import asyncio
import sys
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sat.generator import random_ksat
from repro.service import (
    ArtifactStore,
    ChaosPolicy,
    CompilationService,
    JobJournal,
    RetryPolicy,
    ServiceOverloaded,
    replay_journal,
)

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 7


def formulas(count: int, tag: str):
    return [
        random_ksat(8, 34, seed=SEED * 100 + i, name=f"{tag}-{i}")
        for i in range(count)
    ]


async def act1_supervised_retries() -> None:
    print(f"== act 1: 30% injected worker crashes (seed {SEED}) ==")
    chaos = ChaosPolicy(worker_crash=0.30, seed=SEED)

    def progress(job, event: str) -> None:
        if event == "retrying":
            print(f"    {job.job_id} crashed (attempt {job.attempts}); retrying")

    async with CompilationService(
        shards=2,
        backend="inline",
        chaos=chaos,
        retry=RetryPolicy(base_delay=0.0, seed=SEED),
    ) as service:
        jobs = [
            await service.submit(w, on_progress=progress)
            for w in formulas(10, "retry")
        ]
        results = await service.gather(jobs)
        stats = service.stats()["resilience"]
        done = sum(1 for r in results if r.error is None)
        dead = sum(
            1 for r in results if r.error and r.error.startswith("DeadLetter")
        )
        print(
            f"    {done} done, {dead} dead-lettered; "
            f"{stats['retries']} retried, "
            f"{stats['worker_restarts']} shard restart(s), "
            f"{chaos.injected['worker_crash']} crashes injected"
        )
        for row in service.dead_letters:
            print(f"    dead letter: {row['workload']} — {row['error']}")


async def act2_kill9_recovery(workdir: Path) -> None:
    print("== act 2: kill -9 mid-stream, then journal recovery ==")
    journal_path = workdir / "journal.jsonl"
    store_dir = workdir / "artifacts"
    burst = formulas(12, "crashy")

    service = CompilationService(
        shards=2,
        backend="inline",
        store=ArtifactStore(directory=store_dir),
        journal=JobJournal(journal_path),
    )
    await service.start()
    head = [await service.submit(w) for w in burst[:3]]
    await service.gather(head)  # three jobs finish...
    for w in burst[3:]:
        await service.submit(w)  # ...nine more are accepted, journaled,
    await service.stop()  # and the "process" dies with them queued
    service.journal.close()

    pending = [r for r in replay_journal(journal_path) if not r.terminal]
    print(f"    crashed with {len(pending)} of {len(burst)} jobs incomplete")

    fresh = CompilationService(
        shards=2,
        backend="inline",
        store=ArtifactStore(directory=store_dir),
        journal=JobJournal(journal_path),
    )
    await fresh.start()
    summary = await fresh.recover()
    print(
        f"    recovery: {summary['recovered']} resubmitted, "
        f"{summary['completed']} already done, {summary['dead']} dead"
    )
    while fresh.stats()["jobs_pending"] or fresh._inflight:
        await asyncio.sleep(0.01)
    records = replay_journal(journal_path)
    assert all(r.terminal for r in records)
    print(f"    all {len(records)} recovered jobs reached a terminal state")
    await fresh.stop()
    fresh.journal.close()


async def act3_load_shedding() -> None:
    print("== act 3: queue high-water mark sheds the overflow ==")
    async with CompilationService(
        shards=1, backend="inline", max_pending=4
    ) as service:
        accepted, shed = [], 0
        for w in formulas(8, "flood"):
            try:
                accepted.append(await service.submit(w))
            except ServiceOverloaded as exc:
                shed += 1
                print(
                    f"    shed at depth {exc.depth} "
                    f"(retry_after {exc.retry_after:.2g}s)"
                )
        await service.gather(accepted)
        print(f"    {len(accepted)} accepted+done, {shed} shed")


async def main() -> None:
    await act1_supervised_retries()
    with TemporaryDirectory(prefix="chaos-demo-") as tmp:
        await act2_kill9_recovery(Path(tmp))
    await act3_load_shedding()


if __name__ == "__main__":
    asyncio.run(main())
