"""Figure 10(a)/(b) + Table 2: complexity curves and pulse counts (§8.2/8.3).

10(a) plots the analytic step-count curves of Table 2 with K measured from
real circuits; 10(b) compares the number of pulses in each FPQA compiler's
output.  Expected shape: Weaver's curve is the lowest-order polynomial;
DPQA emits the fewest pulses (at the sizes it finishes), Weaver next,
Atomique and Geyser the most.
"""

from conftest import run_once

from repro.evaluation import (
    fig10a_complexity,
    fig10b_pulses,
    format_table,
    table2_complexity,
)


def test_fig10a_complexity_curves(benchmark):
    rows = run_once(benchmark, fig10a_complexity)
    print()
    print(format_table(rows, title="Figure 10(a): compilation complexity [steps]"))
    for row in rows:
        assert row["weaver"] < row["superconducting"]
        assert row["weaver"] < row["geyser"]
        # DPQA's exponent dwarfs everything (log10 column).
        assert row["dpqa_log10"] > 100


def test_table2(benchmark):
    rows = run_once(benchmark, table2_complexity)
    print()
    print(format_table(rows, title="Table 2: compilation complexity"))
    assert rows[-1] == {"compiler": "weaver", "complexity": "O(N^2)"}


def test_fig10b_pulse_counts(benchmark, store):
    rows = run_once(benchmark, lambda: fig10b_pulses(store))
    print()
    print(format_table(rows, title="Figure 10(b): number of pulses vs size"))
    first = rows[0]  # 20 variables: every FPQA compiler finishes
    assert first["dpqa"] < first["weaver"] < first["atomique"] + first["geyser"]
    # Weaver's pulse counts grow with size but stay defined everywhere.
    assert all(row["weaver"] is not None for row in rows)
