"""Micro-benchmarks of the compiler's hot paths (pytest-benchmark proper).

These run multiple rounds and produce real statistics; they guard the
complexity claims (DSatur O(N^2), Algorithm 2 O(N), QASM parsing O(K))
against regressions.
"""

from repro.circuits import QuantumCircuit, circuit_unitary
from repro.coloring import clause_conflict_graph, dsatur_coloring
from repro.evaluation import load_workload
from repro.fpqa import FPQAHardwareParams
from repro.passes import WeaverFPQACompiler, plan_waves
from repro.qaoa import qaoa_circuit
from repro.qasm import circuit_to_qasm, qasm_to_circuit


def test_bench_dsatur_uf50(benchmark):
    formula = load_workload("uf50-01")
    graph = clause_conflict_graph(formula)
    colors = benchmark(dsatur_coloring, graph)
    assert max(colors) >= 0


def test_bench_conflict_graph_uf250(benchmark):
    formula = load_workload("uf250-01")
    graph = benchmark(clause_conflict_graph, formula)
    assert graph.num_nodes == 1065


def test_bench_wave_planning(benchmark):
    import numpy as np

    rng = np.random.default_rng(0)
    xs = rng.permutation(200) * 10.0
    sources = {a: (float(xs[a]), 0.0) for a in range(200)}
    dests = {a: (a * 10.0, 40.0) for a in range(200)}
    waves = benchmark(plan_waves, sources, dests, 5.0)
    assert sum(len(w) for w in waves) == 200


def test_bench_weaver_compile_uf20(benchmark):
    formula = load_workload("uf20-01")
    compiler = WeaverFPQACompiler()
    result = benchmark.pedantic(
        lambda: compiler.compile(formula), rounds=3, iterations=1
    )
    assert result.program.total_pulses > 0


def test_bench_qasm_roundtrip(benchmark):
    circuit = qaoa_circuit(load_workload("uf20-01"))
    text = circuit_to_qasm(circuit)

    def roundtrip():
        return qasm_to_circuit(text)

    parsed = benchmark(roundtrip)
    assert parsed.num_qubits == 20


def test_bench_unitary_simulation_10q(benchmark):
    circuit = QuantumCircuit(10)
    for q in range(10):
        circuit.h(q)
    for q in range(9):
        circuit.cx(q, q + 1)
    unitary = benchmark.pedantic(
        lambda: circuit_unitary(circuit), rounds=3, iterations=1
    )
    assert unitary.shape == (1024, 1024)


def test_bench_closed_form_euler_beats_so3(benchmark):
    """Closed-form angle extraction must stay well ahead of the legacy
    SU(2)->SO(3) trace path it replaced (measured ~25x; assert 4x)."""
    import time

    import numpy as np

    from repro.circuits.euler import zyx_euler_angles, zyx_euler_angles_so3

    rng = np.random.default_rng(0)
    matrices = [
        np.linalg.qr(rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)))[0]
        for _ in range(500)
    ]

    def closed():
        for matrix in matrices:
            zyx_euler_angles(matrix)

    benchmark.pedantic(closed, rounds=3, iterations=1)
    start = time.perf_counter()
    closed()
    closed_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for matrix in matrices:
        zyx_euler_angles_so3(matrix)
    so3_seconds = time.perf_counter() - start
    assert so3_seconds > 4.0 * closed_seconds, (
        f"closed-form Euler path regressed: {closed_seconds * 1e3:.1f} ms vs "
        f"SO(3) reference {so3_seconds * 1e3:.1f} ms"
    )


def test_bench_incremental_clusters_beat_brute_force(benchmark):
    """Cached + spatial-hash Rydberg resolution vs dense O(n^2) per pulse.

    Models the real pulse pattern (two pulses per stance: the second
    resolution is always a cache hit) on a 400-atom array.  Measured
    ~30x; assert a generous 4x.
    """
    import time

    from repro.fpqa.device import FPQADevice
    from repro.fpqa.instructions import BindAtom, SlmInit

    def loaded_device(**kwargs):
        device = FPQADevice(**kwargs)
        # 10x20 grid of atom *pairs* (400 atoms): partners sit 6 um apart
        # (inside the 8 um radius, so every pair clusters) while pairs
        # stay >8 um from each other — a valid dense pulse geometry.
        positions = tuple(
            (20.0 * col + dx, 10.0 * row)
            for row in range(20)
            for col in range(10)
            for dx in (0.0, 6.0)
        )
        device.apply(SlmInit(positions))
        for qubit in range(len(positions)):
            device.apply(BindAtom(qubit=qubit, slm_index=qubit))
        return device

    fast = loaded_device()
    slow = loaded_device(incremental_clusters=False)
    rounds = 40

    def incremental():
        # Invalidate, then resolve twice (stance pattern: miss + hit).
        fast._geometry_epoch += 1
        fast.resolve_rydberg_clusters()
        fast.resolve_rydberg_clusters()

    benchmark.pedantic(incremental, rounds=3, iterations=1)
    start = time.perf_counter()
    for _ in range(rounds):
        incremental()
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        slow.resolve_rydberg_clusters()
        slow.resolve_rydberg_clusters()
    slow_seconds = time.perf_counter() - start
    assert fast._resolve_spatial_hash() == slow._resolve_brute_force()
    assert slow_seconds > 4.0 * fast_seconds, (
        f"cluster resolution regressed: {fast_seconds * 1e3:.1f} ms vs "
        f"brute force {slow_seconds * 1e3:.1f} ms"
    )


def test_bench_cost_model_repeated_evaluation(benchmark):
    """Fidelity+timing of one program on one device, evaluated repeatedly.

    The device-profile subsystem's precomputed tables (log-fidelity terms
    resolved once per device, not once per instruction per call) should
    keep repeated evaluation — the shape of every figure sweep — well
    under the seed path's cost; see
    ``tests/test_devices.py::TestCostModel::test_precompute_beats_seed_path``
    for the direct seed-vs-table comparison.
    """
    from repro.devices import cost_model_for
    from repro.passes import FPQACompiler

    program = FPQACompiler().compile(load_workload("uf20-01")).program
    hardware = FPQAHardwareParams()

    def evaluate():
        model = cost_model_for(hardware)
        return model.program_eps(program, model.program_duration_us(program))

    eps = benchmark(evaluate)
    assert 0.0 < eps < 1.0
