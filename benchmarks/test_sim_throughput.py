"""Simulator throughput: vectorized engine vs the naive matmul reference.

The acceptance bar for the execution engine (ISSUE 5): the axis-reshape
statevector engine must sustain >= 5x the shots/sec of the naive
reference that builds a full ``2^n x 2^n`` operator per gate.  Measured
on a *compiled* FPQA program replay (the production workload: mostly
``u3`` + ``cz``/``ccz``), not a synthetic circuit.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.sim import (
    NaiveStatevectorEngine,
    StatevectorEngine,
    schedule_from_program,
)

SHOTS = 64


def _shots_per_second(engine, instructions, shots=SHOTS):
    rng = np.random.default_rng(0)
    start = time.perf_counter()
    state = engine.run(instructions)
    probs = np.abs(state) ** 2
    probs /= probs.sum()
    rng.choice(probs.size, size=shots, p=probs)
    elapsed = time.perf_counter() - start
    return shots / elapsed, state


def test_vectorized_engine_at_least_5x_naive(capsys):
    formula = repro.random_ksat(10, 24, seed=7, name="bench-sim")
    result = repro.compile(formula, target="fpqa")
    schedule = schedule_from_program(result.program)
    instructions = schedule.instructions

    fast_engine = StatevectorEngine(schedule.num_qubits)
    naive_engine = NaiveStatevectorEngine(schedule.num_qubits)
    # Warm both paths (matrix caches, allocator) before timing.
    fast_engine.run(instructions)
    naive_engine.run(instructions)

    fast_rate, fast_state = _shots_per_second(fast_engine, instructions)
    naive_rate, naive_state = _shots_per_second(naive_engine, instructions)
    assert np.allclose(fast_state, naive_state, atol=1e-8)

    speedup = fast_rate / naive_rate
    with capsys.disabled():
        print(
            f"\n[sim-throughput] {schedule.num_qubits} qubits, "
            f"{len(instructions)} gates: vectorized {fast_rate:.1f} shots/s, "
            f"naive {naive_rate:.1f} shots/s, speedup {speedup:.1f}x"
        )
    assert speedup >= 5.0, f"vectorized engine only {speedup:.1f}x over naive"


def test_noisy_sampling_throughput_floor(capsys):
    """2000 noisy shots of a 10-qubit compiled program stay interactive."""
    formula = repro.random_ksat(10, 24, seed=7, name="bench-sim")
    result = repro.compile(formula, target="fpqa", device="rubidium-baseline")
    start = time.perf_counter()
    execution = result.simulate(shots=2000, seed=7, formula=formula)
    elapsed = time.perf_counter() - start
    rate = 2000 / elapsed
    with capsys.disabled():
        print(
            f"\n[sim-throughput] noisy 10q: {rate:.0f} shots/s "
            f"({elapsed:.2f} s for 2000 shots, "
            f"{execution.stats['unique_trajectories']} trajectories)"
        )
    assert rate > 200, f"noisy sampling too slow: {rate:.0f} shots/s"
