"""Telemetry overhead guard: tracing must stay <5% on the compile path.

The observability layer's contract is *cheap by default*: every
instrumentation point in the compiler, the simulator, and the service
pays one ``ContextVar`` read when tracing is disabled, and even enabled
recording is append-a-dict cheap.  This gate pins that contract on the
uf100 compile — the same workload the lint and compile benchmarks key
on — by comparing warm end-to-end compile time with tracing disabled
against tracing enabled.

The committed ``BENCH_telemetry.json`` records the absolute numbers
(regenerate with ``python -m repro.telemetry.bench``).
"""

from __future__ import annotations

import time

import repro
from repro.telemetry import configure

#: The acceptance bar: enabled/disabled wall-time ratio on uf100.
MAX_OVERHEAD_RATIO = 1.05

REPEATS = 3


def _best_of(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_tracing_overhead_under_5_percent_on_uf100(capsys):
    formula = repro.satlib_instance("uf100-01")
    repro.compile(formula, target="fpqa")  # warm every cache once

    # A shared CI box can stall either side mid-measurement, so the gate
    # takes the best ratio over a few attempts rather than one sample.
    best = float("inf")
    try:
        for attempt in range(3):
            configure(enabled=False)
            disabled = _best_of(lambda: repro.compile(formula, target="fpqa"))
            tracer = configure(enabled=True)
            enabled = _best_of(lambda: repro.compile(formula, target="fpqa"))
            spans = len(tracer.export())
            configure(enabled=False)
            ratio = enabled / disabled
            best = min(best, ratio)
            with capsys.disabled():
                print(
                    f"\n[telemetry-overhead] attempt {attempt + 1}: "
                    f"disabled {disabled * 1e3:.1f} ms, "
                    f"enabled {enabled * 1e3:.1f} ms "
                    f"(ratio {ratio:.3f}, {spans} spans/compile)"
                )
            if best <= MAX_OVERHEAD_RATIO:
                break
    finally:
        configure(enabled=False)

    assert best <= MAX_OVERHEAD_RATIO, (
        f"tracing overhead ratio {best:.3f} exceeds {MAX_OVERHEAD_RATIO} "
        "on the uf100 compile"
    )
