"""Service throughput: async sharded submission vs a serial compile loop.

The acceptance bar for the service layer (ISSUE 4): submitting >= 16
mixed-target jobs through the async service must complete >= 2x faster
than the same traffic pushed through a serial ``repro.compile`` loop,
and a warm :class:`~repro.service.ArtifactStore` resubmission must
return byte-identical results with >= 90% cache hits.

The traffic models production reality: clients resubmit the same
problems (parameter scans, retries, shared workloads), so the job mix
repeats each unique (workload, target) cell ``REPEATS`` times.  The
serial loop recompiles every repeat; the service's single-flight dedup
and content-addressed store compile each cell once — that, not process
parallelism, is what carries the speedup on single-core runners too.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.sat import satlib_instance
from repro.service import CompilationService
from repro.targets.api import compile as compile_workload

INSTANCES = ("uf20-01", "uf20-02", "uf20-03")
TARGETS = ("fpqa", "superconducting")
REPEATS = 3  # each unique cell appears three times in the traffic


@pytest.fixture(scope="module")
def traffic():
    """(workload, target) jobs: 3 instances x 2 targets x 3 repeats = 18."""
    workloads = [satlib_instance(name) for name in INSTANCES]
    jobs = [
        (workload, target)
        for _ in range(REPEATS)
        for workload in workloads
        for target in TARGETS
    ]
    assert len(jobs) >= 16
    return jobs


def test_async_sharded_submission_beats_serial(traffic, capsys):
    # Serial baseline: every job through the one-shot entrypoint.
    start = time.perf_counter()
    serial = [compile_workload(w, target=t) for w, t in traffic]
    serial_s = time.perf_counter() - start
    assert all(r.succeeded for r in serial)

    async def run_service():
        async with CompilationService(shards=2, backend="thread") as service:
            jobs = [
                await service.submit(w, target=t, client=f"client-{i % 4}")
                for i, (w, t) in enumerate(traffic)
            ]
            results = await service.gather(jobs)
            return jobs, results, service.stats()

    start = time.perf_counter()
    jobs, results, stats = asyncio.run(run_service())
    service_s = time.perf_counter() - start

    # Correctness first: same programs as the serial loop, in order.
    assert all(r.succeeded for r in results)
    assert [r.num_pulses for r in results] == [r.num_pulses for r in serial]

    speedup = serial_s / service_s if service_s > 0 else float("inf")
    unique = len({j.key for j in jobs})
    with capsys.disabled():
        print(
            f"\n[service-throughput] {len(traffic)} jobs ({unique} unique cells): "
            f"serial {serial_s:.2f}s, async sharded {service_s:.2f}s, "
            f"speedup {speedup:.2f}x"
        )

    assert speedup >= 2.0, (
        f"async sharded submission ({service_s:.2f}s) is not >= 2x faster than "
        f"the serial loop ({serial_s:.2f}s) for {len(traffic)} jobs"
    )


def test_warm_store_resubmission_hit_rate_and_bytes(traffic, capsys):
    async def run():
        async with CompilationService(shards=2, backend="thread") as service:
            first = [await service.submit(w, target=t) for w, t in traffic]
            await service.gather(first)
            first_bytes = {
                job.key: service.store.get_bytes(job.key) for job in first
            }
            hits_before = service.store.stats()["hits"]
            misses_before = service.store.stats()["misses"]

            start = time.perf_counter()
            again = [await service.submit(w, target=t) for w, t in traffic]
            await service.gather(again)
            warm_s = time.perf_counter() - start

            hits = service.store.stats()["hits"] - hits_before
            misses = service.store.stats()["misses"] - misses_before
            again_bytes = {
                job.key: service.store.get_bytes(job.key) for job in again
            }
            return first, again, first_bytes, again_bytes, hits, misses, warm_s

    first, again, first_bytes, again_bytes, hits, misses, warm_s = asyncio.run(run())

    hit_rate = hits / (hits + misses) if (hits + misses) else 0.0
    with capsys.disabled():
        print(
            f"\n[service-throughput] warm resubmission of {len(again)} jobs: "
            f"{warm_s * 1e3:.0f} ms, hit rate {hit_rate:.0%}"
        )

    assert all(job.from_cache for job in again)
    assert hit_rate >= 0.9
    # Content addressing: the warm pass resolves to the exact artifact
    # bytes the cold pass stored.
    assert set(first_bytes) == set(again_bytes)
    for key, entry in first_bytes.items():
        assert entry is not None
        assert again_bytes[key] == entry
    # Warm service traffic never touches a compiler: this is near-instant.
    assert warm_s < 2.0
