"""Batched-session throughput: compile_many(parallel=4) vs a sequential loop.

The acceptance bar for the session API: fanning ≥ 8 workloads across a
4-worker process pool must beat the plain sequential loop wherever real
parallel hardware exists.  Both timings are printed (and attached to the
pytest report) so the speedup is recorded with every benchmark run.

On single-core runners (CI containers, constrained sandboxes) a process
pool cannot beat a sequential loop — the strict speedup assertion is
gated on available CPUs, but the batch itself must still complete
correctly and in input order everywhere.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sat import satlib_instance
from repro.targets import CompilerSession
from repro.targets.api import compile as compile_workload

WORKLOAD_NAMES = tuple(f"uf20-{i:02d}" for i in range(1, 9))  # 8 workloads


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def workloads():
    return [satlib_instance(name) for name in WORKLOAD_NAMES]


def test_compile_many_parallel_4_throughput(workloads, capsys):
    # Baseline: the plain sequential loop over the one-shot entrypoint.
    start = time.perf_counter()
    sequential = [compile_workload(w, target="fpqa") for w in workloads]
    sequential_s = time.perf_counter() - start

    # Batched: a fresh session (no warm cache) with a 4-worker pool.
    session = CompilerSession()
    start = time.perf_counter()
    batched = session.compile_many(workloads, targets="fpqa", parallel=4)
    parallel_s = time.perf_counter() - start

    # Correctness everywhere: order, success, and identical programs.
    assert [r.workload for r in batched] == [w.name for w in workloads]
    assert all(r.succeeded for r in batched)
    assert [r.num_pulses for r in batched] == [r.num_pulses for r in sequential]

    speedup = sequential_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = _available_cpus()
    with capsys.disabled():
        print(
            f"\n[session-throughput] {len(workloads)} workloads: "
            f"sequential {sequential_s:.2f}s, parallel=4 {parallel_s:.2f}s, "
            f"speedup {speedup:.2f}x on {cpus} cpu(s)"
        )

    if cpus >= 2:
        # The acceptance criterion proper: measurably faster than the
        # sequential loop when parallel hardware exists.
        assert parallel_s < sequential_s, (
            f"parallel=4 ({parallel_s:.2f}s) not faster than sequential "
            f"({sequential_s:.2f}s) on {cpus} cpus"
        )
    else:
        # One CPU: no parallel speedup is physically possible; bound the
        # pool's overhead instead so the batched path stays usable.
        assert parallel_s < 5.0 * sequential_s + 5.0


def test_compile_many_serves_repeats_from_cache(workloads):
    session = CompilerSession()
    first = session.compile_many(workloads, targets="fpqa")
    start = time.perf_counter()
    second = session.compile_many(workloads, targets="fpqa", parallel=4)
    cached_s = time.perf_counter() - start
    assert all(r.cached for r in second)
    assert [r.num_pulses for r in second] == [r.num_pulses for r in first]
    # Cache hits never touch the pool: this must be near-instant.
    assert cached_s < 1.0
