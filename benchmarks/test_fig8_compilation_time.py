"""Figure 8: compilation time (paper §8.2, RQ1).

Regenerates both panels: (a) the ten fixed-size uf20 instances per
compiler, and (b) the scaling sweep 20-250 variables.  Expected shape:
Weaver ~ Atomique ~ Superconducting (seconds), Geyser and DPQA orders of
magnitude slower and timing out ("X") above 20 variables; Superconducting
stops at 100 variables (127-qubit backend).
"""

from conftest import run_once

from repro.evaluation import (
    fig8a_compilation_fixed,
    fig8b_compilation_scaling,
    format_table,
)


def test_fig8a_fixed_size(benchmark, store):
    rows = run_once(benchmark, lambda: fig8a_compilation_fixed(store))
    print()
    print(format_table(rows, title="Figure 8(a): compilation time [s], uf20 suite"))
    mean = rows[-1]
    assert mean["weaver"] is not None and mean["weaver"] < 30.0
    # The solver/composer pair is the slow end of the spectrum at 20 vars.
    slow = max(mean["geyser"] or 0.0, mean["dpqa"] or 0.0)
    assert slow > mean["weaver"]


def test_fig8b_scaling(benchmark, store):
    rows = run_once(benchmark, lambda: fig8b_compilation_scaling(store))
    print()
    print(format_table(rows, title="Figure 8(b): compilation time [s] vs size"))
    by_size = {row["num_vars"]: row for row in rows}
    # Geyser and DPQA time out above 20 variables (X marks in the paper).
    assert by_size[50]["geyser"] is None
    assert by_size[50]["dpqa"] is None
    assert by_size[250]["geyser"] is None
    # Superconducting is capped by the 127-qubit backend.
    assert by_size[150]["superconducting"] is None
    # Weaver compiles every size.
    assert all(by_size[n]["weaver"] is not None for n in by_size)
