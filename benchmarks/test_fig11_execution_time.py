"""Figure 11: execution time (paper §8.3, RQ2).

Expected shape: superconducting executes fastest (fast gates), Geyser next
(no movement), then Weaver, with Atomique and DPQA slowest among the
finishers; at larger sizes Weaver's advantage over Atomique grows (global
pulses amortize, SABRE movement does not).
"""

from conftest import run_once

from repro.evaluation import (
    fig11a_execution_fixed,
    fig11b_execution_scaling,
    format_table,
)


def test_fig11a_fixed_size(benchmark, store):
    rows = run_once(benchmark, lambda: fig11a_execution_fixed(store))
    print()
    print(format_table(rows, title="Figure 11(a): execution time [s], uf20 suite"))
    mean = rows[-1]
    assert mean["superconducting"] < mean["weaver"]
    assert mean["geyser"] < mean["weaver"]
    assert mean["weaver"] < mean["atomique"] * 2.5  # same order at 20 vars


def test_fig11b_scaling(benchmark, store):
    rows = run_once(benchmark, lambda: fig11b_execution_scaling(store))
    print()
    print(format_table(rows, title="Figure 11(b): execution time [s] vs size"))
    by_size = {row["num_vars"]: row for row in rows}
    # Weaver beats Atomique decisively at scale (Fig. 11(b) shape).
    assert by_size[100]["weaver"] < by_size[100]["atomique"]
    assert by_size[250]["weaver"] < by_size[250]["atomique"]
    # Execution time grows with size for Weaver.
    weaver_series = [row["weaver"] for row in rows]
    assert weaver_series[0] < weaver_series[-1]
