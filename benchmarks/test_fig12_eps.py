"""Figure 12: fidelity as EPS (paper §8.4, RQ3).

Expected shape: at 20 variables DPQA (the exhaustive solver) is best and
Weaver beats Atomique; superconducting EPS is negligible.  With growing
size Weaver's advantage over Atomique compounds by orders of magnitude
(the paper reports ~1e8x at 150 variables); Geyser is excluded (§8.4).
"""

from conftest import run_once

from repro.evaluation import fig12a_eps_fixed, fig12b_eps_scaling, format_table


def test_fig12a_fixed_size(benchmark, store):
    rows = run_once(benchmark, lambda: fig12a_eps_fixed(store))
    print()
    print(format_table(rows, title="Figure 12(a): EPS, uf20 suite"))
    mean = rows[-1]
    assert mean["weaver"] > mean["atomique"]  # the paper's ~10% claim
    assert mean["dpqa"] > mean["weaver"]  # DPQA wins at 20 variables
    assert mean["superconducting"] < 1e-10


def test_fig12b_scaling(benchmark, store):
    rows = run_once(benchmark, lambda: fig12b_eps_scaling(store))
    print()
    print(format_table(rows, title="Figure 12(b): EPS vs size"))
    by_size = {row["num_vars"]: row for row in rows}
    # The Weaver/Atomique gap explodes with size (Fig. 12(b) shape).
    ratio_20 = by_size[20]["weaver"] / by_size[20]["atomique"]
    ratio_100 = by_size[100]["weaver"] / by_size[100]["atomique"]
    assert ratio_100 > ratio_20 * 100
    # DPQA/Geyser are X above 20 variables.
    assert by_size[50]["dpqa"] is None
