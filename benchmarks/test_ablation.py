"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but evidence for its design decisions:
(1) 3-qubit gate compression on/off, (2) DSatur vs first-fit coloring,
(3) Algorithm 2's parallel wave merging vs naive one-atom-per-wave moves.
"""

from conftest import run_once

from repro.evaluation import format_table, load_workload
from repro.fpqa import FPQAHardwareParams, zone_layout
from repro.metrics import program_duration_us, program_eps
from repro.passes import WeaverFPQACompiler
from repro.passes.clause_coloring import ClauseColoringPass
from repro.passes.color_shuttling import plan_zone_moves


def test_ablation_gate_compression(benchmark):
    """§5.4: compression halves entangling pulses and lifts EPS."""

    def run():
        rows = []
        for name in ("uf20-01", "uf20-02", "uf20-03"):
            formula = load_workload(name)
            on = WeaverFPQACompiler(compression=True).compile(formula)
            off = WeaverFPQACompiler(compression=False).compile(formula)
            rows.append(
                {
                    "workload": name,
                    "rydberg_on": on.program.pulse_counts()["rydberg"],
                    "rydberg_off": off.program.pulse_counts()["rydberg"],
                    "eps_on": program_eps(on.program),
                    "eps_off": program_eps(off.program),
                    "exec_on_s": program_duration_us(on.program) * 1e-6,
                    "exec_off_s": program_duration_us(off.program) * 1e-6,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: 3-qubit gate compression"))
    for row in rows:
        assert row["rydberg_on"] < row["rydberg_off"]
        assert row["eps_on"] > row["eps_off"]


def test_ablation_coloring_algorithm(benchmark):
    """DSatur vs greedy first-fit: fewer colors, fewer zones, better EPS."""

    def run():
        rows = []
        for name in ("uf20-01", "uf20-02", "uf20-03", "uf50-01"):
            formula = load_workload(name)
            dsatur = WeaverFPQACompiler(coloring_algorithm="dsatur").compile(formula)
            greedy = WeaverFPQACompiler(coloring_algorithm="greedy").compile(formula)
            rows.append(
                {
                    "workload": name,
                    "colors_dsatur": dsatur.stats["clause-coloring"]["num_colors"],
                    "colors_greedy": greedy.stats["clause-coloring"]["num_colors"],
                    "eps_dsatur": program_eps(dsatur.program),
                    "eps_greedy": program_eps(greedy.program),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: DSatur vs greedy coloring"))
    assert sum(r["colors_dsatur"] for r in rows) <= sum(
        r["colors_greedy"] for r in rows
    )


def test_ablation_parallel_wave_merging(benchmark):
    """Algorithm 2's order-preserving merging vs one atom per wave."""

    def run():
        rows = []
        for name in ("uf20-01", "uf50-01"):
            formula = load_workload(name)
            context_pass = ClauseColoringPass()
            from repro.passes.base import CompilationContext
            from repro.qaoa import QaoaParameters

            hardware = FPQAHardwareParams()
            context = CompilationContext(
                formula=formula,
                parameters=QaoaParameters(),
                hardware=hardware,
                geometry=zone_layout(hardware),
            )
            context_pass.run(context)
            coloring = context.properties["coloring"]
            geometry = context.geometry
            home = {
                v: geometry.home_position(v, formula.num_vars)
                for v in range(formula.num_vars)
            }
            plans, _ = plan_zone_moves(
                coloring, geometry, home, hardware.min_trap_spacing_um
            )
            merged_waves = sum(len(p.waves) for p in plans)
            total_atoms = sum(p.num_moved_atoms for p in plans)
            rows.append(
                {
                    "workload": name,
                    "merged_waves": merged_waves,
                    "naive_waves": total_atoms,  # one atom per wave
                    "saving": 1.0 - merged_waves / max(total_atoms, 1),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: Algorithm 2 wave merging"))
    for row in rows:
        assert row["merged_waves"] < row["naive_waves"]
