"""Figure 10(c): CCZ fidelity threshold (paper §8.4 analysis).

Sweeps the CCZ gate fidelity and recompiles the uf20 suite with Weaver at
each point; baselines are flat lines (they avoid 3-qubit gates).  The
paper reports a 0.9916 threshold where Weaver's EPS overtakes every
baseline; the reproduced threshold should fall inside the swept band.
"""

from conftest import run_once

from repro.evaluation import fig10c_ccz_threshold, format_table


def test_fig10c_threshold(benchmark, store):
    data = run_once(benchmark, lambda: fig10c_ccz_threshold(store))
    print()
    print(format_table(data["sweep"], title="Figure 10(c): Weaver EPS vs CCZ fidelity"))
    print("baseline EPS:", {k: v for k, v in data["baselines"].items()})
    print("best baseline:", data["best_baseline_eps"])
    print("threshold:", data["threshold"])
    sweep = data["sweep"]
    # EPS must be monotonically increasing in the CCZ fidelity.
    values = [point["weaver_eps"] for point in sweep]
    assert values == sorted(values)
    # Weaver overtakes the best baseline somewhere in (or below) the band.
    assert data["threshold"] is not None
