"""wLint throughput: static analysis vs dynamic wChecker (ISSUE 6).

The acceptance bar for the static verification layer: ``weaver lint``
must be at least **10x** faster than the wChecker on the uf100 workload
(the largest instance the checker verifies routinely).  Both sides are
measured warm — caches populated by one untimed run — with the best of
several repeats, on the same compiled artifact in the same process, so
the pinned ratio is immune to host speed.

The committed ``BENCH_lint.json`` records the absolute numbers from the
PR that introduced the analyzer (regenerate with
``python -m repro.analysis.bench``).
"""

from __future__ import annotations

import time

import repro
from repro.analysis import analyze_result
from repro.checker import check_program

#: The acceptance bar.  Measured margin on the introduction host was
#: ~12x warm (~20x against a cold checker); see BENCH_lint.json.
MIN_SPEEDUP = 10.0

REPEATS = 3


def _best_of(func, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_lint_at_least_10x_faster_than_checker_on_uf100(capsys):
    formula = repro.satlib_instance("uf100-01")
    result = repro.compile(formula, target="fpqa")
    program = result.program

    # Warm both tiers: the analyzer's Raman/cluster memos and the
    # checker's reconstruction caches all populate on the first pass.
    clean = analyze_result(result)
    assert clean.ok, clean.summary()
    warm = check_program(program)
    assert warm.ok

    # A shared CI box can stall either side mid-measurement, so the gate
    # takes the best ratio over a few attempts rather than one sample.
    best = 0.0
    for attempt in range(3):
        lint_seconds = _best_of(lambda: analyze_result(result))
        checker_seconds = _best_of(lambda: check_program(program))
        speedup = checker_seconds / lint_seconds
        best = max(best, speedup)
        with capsys.disabled():
            print(
                f"\n[lint-throughput] uf100 ({program.total_pulses} pulses) "
                f"attempt {attempt + 1}: lint {lint_seconds * 1e3:.1f} ms, "
                f"wChecker {checker_seconds * 1e3:.1f} ms, "
                f"speedup {speedup:.1f}x"
            )
        if best >= MIN_SPEEDUP:
            break
    assert best >= MIN_SPEEDUP, (
        f"wLint only {best:.1f}x faster than the wChecker on uf100 "
        f"(best of 3 attempts; last lint {lint_seconds:.3f}s "
        f"vs checker {checker_seconds:.3f}s)"
    )


def test_lint_verdict_matches_checker_on_uf100():
    """Same artifact, same verdict: the speedup must not cost agreement."""
    formula = repro.satlib_instance("uf100-01")
    result = repro.compile(formula, target="fpqa")
    static = analyze_result(result)
    dynamic = check_program(result.program)
    assert static.ok and dynamic.ok
    assert static.stats["total_pulses"] == result.num_pulses
