"""Resilience overhead guard: the job journal must stay <10% on the
service path.

The fault-tolerance layer's contract is *durability without a tax*:
every accepted job writes a couple of small JSON lines to the
write-ahead journal (batched fsync), which must not meaningfully slow
the submit->done pipeline.  This gate pins that contract live by
running the same mixed compile+sim stream with and without a journal,
and also checks the committed trajectory in ``BENCH_service.json``
(regenerate with ``python -m repro.service.bench``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.service.bench import run_service_bench

#: The acceptance bar: journal/baseline wall-time ratio on the stream.
MAX_JOURNAL_OVERHEAD = 1.10

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def test_journal_overhead_stays_under_bar(capsys):
    run = run_service_bench(jobs=24, seed=7, repeats=2)
    ratio = run["journal_overhead_ratio"]
    with capsys.disabled():
        print(f"\n[resilience-overhead] journal x{ratio:.3f} (bar {MAX_JOURNAL_OVERHEAD})")
    assert ratio < MAX_JOURNAL_OVERHEAD, (
        f"journal overhead x{ratio:.3f} exceeds the {MAX_JOURNAL_OVERHEAD} bar"
    )
    # Chaos retries must have actually exercised the supervision path.
    chaos_cell = next(c for c in run["cells"] if c["scenario"] == "chaos")
    assert chaos_cell["faults_injected"] >= 1


def test_committed_bench_file_is_valid():
    payload = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
    assert payload["schema"] == 1
    assert payload["runs"], "BENCH_service.json has no runs"
    latest = payload["runs"][-1]
    assert latest["journal_overhead_ratio"] < MAX_JOURNAL_OVERHEAD
    scenarios = {cell["scenario"] for cell in latest["cells"]}
    assert scenarios == {"baseline", "journal", "chaos"}
