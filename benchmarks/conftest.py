"""Shared state for the figure-regeneration benchmarks.

One :class:`ResultStore` is shared by every benchmark module, so each
(compiler, workload) cell compiles exactly once per session no matter how
many figures consume it — mirroring the paper's artifact, which compiles
the suite once and then plots four figures (§A.4.1).

Environment knobs:

``REPRO_BENCH_INSTANCES``  instances per scaling size (default 2)
``REPRO_BENCH_BUDGET``     Geyser/DPQA compile budget in seconds (default 60)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.evaluation import EvaluationConfig, ResultStore  # noqa: E402
from repro.evaluation.runner import DEFAULT_BUDGETS  # noqa: E402


def _config() -> EvaluationConfig:
    instances = int(os.environ.get("REPRO_BENCH_INSTANCES", "2"))
    budget = float(os.environ.get("REPRO_BENCH_BUDGET", "60"))
    budgets = dict(DEFAULT_BUDGETS)
    budgets["geyser"] = budget
    budgets["dpqa"] = budget
    return EvaluationConfig(instances_per_size=instances, budgets=budgets)


def pytest_collection_modifyitems(items):
    """Everything under ``benchmarks/`` is the slow lane.

    The figure-regeneration suite dominates tier-1 wall clock (~10 min on
    one CPU); marking it ``slow`` lets CI run ``-m "not slow"`` for
    minutes-scale signal while the full run stays the default.
    """
    here = Path(__file__).resolve().parent
    for item in items:
        if here in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def store() -> ResultStore:
    return ResultStore(_config())


def run_once(benchmark, func):
    """Benchmark a figure collection exactly once (compiles are heavy)."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
