"""End-to-end compile-speed regression guard (ISSUE 3 acceptance).

Compares the optimized pipeline against the legacy reference pipeline
(:meth:`repro.perf.OptimizationFlags.reference` — dense cluster
resolution, SO(3) Euler extraction, no memoization, history on) *on the
same machine in the same process*, so the asserted speedup is immune to
host differences.  The committed ``BENCH_compile.json`` records the
absolute before/after numbers from the PR that introduced the fast paths.

Auto-marked ``slow`` by the benchmarks conftest.
"""

from __future__ import annotations

import pytest

import repro
from repro.perf import OptimizationFlags
from repro.perf.bench import _time_compile
from repro.sat.generator import random_ksat

#: The acceptance bar: >= 3x end-to-end at 150 and 250 variables.  The
#: measured margin is ~4x (see BENCH_compile.json); the ratio is wall
#: clock of two in-process runs, so host speed cancels out.
MIN_SPEEDUP = 3.0


@pytest.mark.parametrize("num_vars", [150, 250])
def test_end_to_end_speedup_over_reference_pipeline(num_vars):
    formula = random_ksat(num_vars, round(num_vars * 4.26), seed=7)
    # Warm both pipelines once (imports, lru caches shared state aside:
    # the cross-compile clause-matrix cache is part of the fast path).
    repro.compile(formula, target="fpqa")
    optimized = _time_compile(
        lambda: repro.compile(formula, target="fpqa"), repeats=3
    )
    reference = _time_compile(
        lambda: repro.compile(
            formula,
            target="fpqa",
            target_options={"optimize": OptimizationFlags.reference()},
        ),
        repeats=2,
    )
    speedup = reference / optimized
    assert speedup >= MIN_SPEEDUP, (
        f"{num_vars}-var compile speedup regressed: {speedup:.2f}x "
        f"(optimized {optimized:.3f}s vs reference {reference:.3f}s)"
    )


def test_optimized_and_reference_agree_at_scale():
    """The two pipelines emit checker-equivalent programs at 150 vars."""
    formula = random_ksat(150, 639, seed=7)
    optimized = repro.compile(formula, target="fpqa")
    uncached = repro.compile(
        formula,
        target="fpqa",
        target_options={
            "optimize": OptimizationFlags.reference().but(closed_form_euler=True)
        },
    )
    assert optimized.program.to_wqasm() == uncached.program.to_wqasm()
