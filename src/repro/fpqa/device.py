"""FPQA device state machine.

Tracks trap layers, atom positions, and qubit bindings while validating
every instruction against the pre-conditions of paper Table 1.  The same
machine serves two roles:

* the wOptimizer drives it while lowering a circuit, guaranteeing emitted
  programs are physically executable; and
* the wChecker replays a wQasm annotation stream through it to learn atom
  positions before each Rydberg pulse (§6, Figure 9).

Hot-path notes: instruction dispatch is a ``type -> handler`` dict (not an
isinstance chain), Rydberg cluster resolution uses the same spatial-hash
neighbor query as the trap spacing check plus dirty tracking (consecutive
pulses with no movement in between reuse the previous cluster set), and
history recording is optional so the compiler-internal device does not
accumulate an unbounded copy of the program it is emitting.  The dense
O(n^2) resolver is kept as :meth:`_resolve_brute_force` — the reference
implementation the equivalence tests and the unoptimized benchmark
pipeline run against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import FPQAConstraintError
from .geometry import position_key
from .hardware import FPQAHardwareParams
from .instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)

Location = tuple  # ("slm", index) | ("aod", col, row)


@dataclass(frozen=True)
class RydbergCluster:
    """A maximal group of mutually interacting atoms during a pulse."""

    qubits: tuple[int, ...]
    positions: tuple[tuple[float, float], ...]

    @property
    def size(self) -> int:
        return len(self.qubits)


class FPQADevice:
    """Mutable FPQA state: trap layers, atoms, and an instruction log.

    ``record_history`` keeps the applied-instruction log (the default;
    the code generator opts out because it already records the program
    stream itself).  ``incremental_clusters`` selects the spatial-hash +
    dirty-tracked Rydberg resolver; ``False`` falls back to the dense
    brute-force reference on every pulse.
    """

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        record_history: bool = True,
        incremental_clusters: bool = True,
    ):
        self.hardware = hardware or FPQAHardwareParams()
        self.record_history = record_history
        self.incremental_clusters = incremental_clusters
        self.slm_positions: list[tuple[float, float]] = []
        self.slm_atoms: list[int | None] = []
        self.aod_col_x: list[float] = []
        self.aod_row_y: list[float] = []
        self.aod_atoms: dict[tuple[int, int], int] = {}
        self.qubit_location: dict[int, Location] = {}
        self.history: list[FPQAInstruction] = []
        #: position_key -> SLM trap index; the O(1) backing of
        #: :meth:`slm_index_at`, kept in lockstep with ``slm_positions``.
        self._slm_key_index: dict[tuple[float, float], int] = {}
        #: Bumped on every mutation that can move an atom; the cluster
        #: cache is valid while the epoch it was computed at still holds.
        self._geometry_epoch = 0
        self._cluster_cache_epoch = -1
        self._cluster_cache: list[RydbergCluster] = []
        #: Cluster-resolution statistics (surfaced in compile profiles).
        self.cluster_cache_hits = 0
        self.cluster_resolutions = 0
        self._handlers = {
            SlmInit: self._init_slm,
            AodInit: self._init_aod,
            BindAtom: self._bind,
            Transfer: self._transfer,
            Shuttle: self._apply_shuttle,
            ParallelShuttle: self._apply_parallel_shuttle,
            RamanLocal: self._apply_raman_local,
            RamanGlobal: self._apply_raman_global,
            RydbergPulse: self._apply_rydberg,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return len(self.qubit_location)

    def qubit_position(self, qubit: int) -> tuple[float, float]:
        """Current (x, y) of the atom bound to ``qubit``."""
        loc = self.qubit_location.get(qubit)
        if loc is None:
            raise FPQAConstraintError(f"qubit {qubit} is not bound to any atom")
        if loc[0] == "slm":
            return self.slm_positions[loc[1]]
        _, col, row = loc
        return (self.aod_col_x[col], self.aod_row_y[row])

    def atom_positions(self) -> dict[int, tuple[float, float]]:
        """Positions of all bound atoms, keyed by qubit id."""
        return {q: self.qubit_position(q) for q in self.qubit_location}

    def slm_index_at(self, x: float, y: float) -> int | None:
        """Index of the SLM trap at (x, y), if any.

        O(1): both this lookup and the compiler's trap index are backed by
        the same :func:`~repro.fpqa.geometry.position_key` rounding (6
        decimal places), so the two can never disagree about which trap
        sits at a coordinate.  (Historically this was a linear scan with
        its own ``1e-6`` tolerance, which could mismatch the key index.)
        """
        return self._slm_key_index.get(position_key((x, y)))

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def lose_atom(self, qubit: int) -> None:
        """Simulate atom loss: the trap empties, the qubit vanishes.

        Atom loss is the dominant hardware failure in neutral-atom arrays
        (imperfect transfers, background-gas collisions).  Injected losses
        let tests confirm that downstream operations fail loudly — a lost
        atom turns later transfers, Raman pulses, and Rydberg clusters on
        that qubit into detectable constraint violations.
        """
        location = self.qubit_location.pop(qubit, None)
        if location is None:
            raise FPQAConstraintError(f"qubit {qubit} holds no atom to lose")
        if location[0] == "slm":
            self.slm_atoms[location[1]] = None
        else:
            del self.aod_atoms[(location[1], location[2])]
        self._geometry_epoch += 1

    # ------------------------------------------------------------------
    # Instruction dispatch
    # ------------------------------------------------------------------
    def apply(self, instruction: FPQAInstruction) -> list[RydbergCluster] | None:
        """Validate and execute ``instruction``; Rydberg returns clusters."""
        handler = self._handlers.get(type(instruction))
        if handler is None:
            raise FPQAConstraintError(f"unknown instruction {instruction!r}")
        result = handler(instruction)
        if self.record_history:
            self.history.append(instruction)
        return result

    def run(self, instructions: list[FPQAInstruction]) -> None:
        for instruction in instructions:
            self.apply(instruction)

    def _apply_raman_local(self, instruction: RamanLocal) -> None:
        if instruction.qubit not in self.qubit_location:
            raise FPQAConstraintError(
                f"@raman local targets unbound qubit {instruction.qubit}"
            )

    def _apply_raman_global(self, instruction: RamanGlobal) -> None:
        pass  # no pre-condition (Table 1)

    def _apply_rydberg(self, instruction: RydbergPulse) -> list[RydbergCluster]:
        return self.resolve_rydberg_clusters()

    def _apply_shuttle(self, instruction: Shuttle) -> None:
        self._shuttle([instruction.move])

    def _apply_parallel_shuttle(self, instruction: ParallelShuttle) -> None:
        self._shuttle(list(instruction.moves))

    # ------------------------------------------------------------------
    # Layer initialization
    # ------------------------------------------------------------------
    def _init_slm(self, instruction: SlmInit) -> None:
        if self.slm_positions:
            raise FPQAConstraintError("SLM layer is already initialized")
        positions = list(instruction.positions)
        self._check_spacing(positions, self.hardware.min_trap_spacing_um, "@slm")
        self.slm_positions = positions
        self.slm_atoms = [None] * len(positions)
        self._slm_key_index = {
            position_key(position): index
            for index, position in enumerate(positions)
        }
        self._geometry_epoch += 1

    def _init_aod(self, instruction: AodInit) -> None:
        if self.aod_col_x or self.aod_row_y:
            raise FPQAConstraintError("AOD layer is already initialized")
        for name, coords in (("column x", instruction.xs), ("row y", instruction.ys)):
            for a, b in zip(coords, coords[1:]):
                if b <= a:
                    raise FPQAConstraintError(
                        f"@aod {name} coordinates must be strictly increasing"
                    )
                if b - a < self.hardware.min_trap_spacing_um:
                    raise FPQAConstraintError(
                        f"@aod adjacent {name} coordinates closer than the "
                        f"minimum spacing ({b - a:.2f} um)"
                    )
        self.aod_col_x = list(instruction.xs)
        self.aod_row_y = list(instruction.ys)
        self._geometry_epoch += 1

    def _check_spacing(
        self, positions: list[tuple[float, float]], spacing: float, what: str
    ) -> None:
        """Pairwise minimum-distance check via a spatial hash (O(n))."""
        cells: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for x, y in positions:
            cell = (math.floor(x / spacing), math.floor(y / spacing))
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for ox, oy in cells.get((cell[0] + dx, cell[1] + dy), ()):
                        if (x - ox) ** 2 + (y - oy) ** 2 < spacing**2 - 1e-9:
                            raise FPQAConstraintError(
                                f"{what} traps at ({ox:.2f}, {oy:.2f}) and "
                                f"({x:.2f}, {y:.2f}) violate the minimum "
                                f"spacing of {spacing} um"
                            )
            cells.setdefault(cell, []).append((x, y))

    # ------------------------------------------------------------------
    # Atoms
    # ------------------------------------------------------------------
    def _bind(self, instruction: BindAtom) -> None:
        qubit = instruction.qubit
        if qubit in self.qubit_location:
            raise FPQAConstraintError(f"qubit {qubit} is already bound")
        if instruction.slm_index is not None:
            idx = instruction.slm_index
            if not 0 <= idx < len(self.slm_positions):
                raise FPQAConstraintError(f"@bind slm index {idx} out of range")
            if self.slm_atoms[idx] is not None:
                raise FPQAConstraintError(f"SLM trap {idx} already holds an atom")
            self.slm_atoms[idx] = qubit
            self.qubit_location[qubit] = ("slm", idx)
            self._geometry_epoch += 1
            return
        col, row = instruction.aod_col, instruction.aod_row
        if not (0 <= col < len(self.aod_col_x) and 0 <= row < len(self.aod_row_y)):
            raise FPQAConstraintError(f"@bind aod crossing ({col}, {row}) out of range")
        if (col, row) in self.aod_atoms:
            raise FPQAConstraintError(f"AOD crossing ({col}, {row}) already holds an atom")
        self.aod_atoms[(col, row)] = qubit
        self.qubit_location[qubit] = ("aod", col, row)
        self._geometry_epoch += 1

    def _transfer(self, instruction: Transfer) -> None:
        idx, col, row = instruction.slm_index, instruction.aod_col, instruction.aod_row
        if not 0 <= idx < len(self.slm_positions):
            raise FPQAConstraintError(f"@transfer slm index {idx} out of range")
        if not (0 <= col < len(self.aod_col_x) and 0 <= row < len(self.aod_row_y)):
            raise FPQAConstraintError(f"@transfer aod crossing ({col}, {row}) out of range")
        slm_pos = self.slm_positions[idx]
        aod_pos = (self.aod_col_x[col], self.aod_row_y[row])
        distance = math.dist(slm_pos, aod_pos)
        if distance > self.hardware.transfer_max_distance_um:
            raise FPQAConstraintError(
                f"@transfer between traps {distance:.2f} um apart exceeds the "
                f"maximum of {self.hardware.transfer_max_distance_um} um"
            )
        slm_atom = self.slm_atoms[idx]
        aod_atom = self.aod_atoms.get((col, row))
        if slm_atom is not None and aod_atom is None:
            self.slm_atoms[idx] = None
            self.aod_atoms[(col, row)] = slm_atom
            self.qubit_location[slm_atom] = ("aod", col, row)
        elif slm_atom is None and aod_atom is not None:
            del self.aod_atoms[(col, row)]
            self.slm_atoms[idx] = aod_atom
            self.qubit_location[aod_atom] = ("slm", idx)
        else:
            raise FPQAConstraintError(
                "@transfer requires exactly one occupied and one empty trap "
                f"(slm {idx} holds {slm_atom}, aod ({col}, {row}) holds {aod_atom})"
            )
        self._geometry_epoch += 1

    # ------------------------------------------------------------------
    # Shuttling
    # ------------------------------------------------------------------
    def _shuttle(self, moves: list[ShuttleMove]) -> None:
        new_cols = list(self.aod_col_x)
        new_rows = list(self.aod_row_y)
        for move in moves:
            coords = new_cols if move.axis == "column" else new_rows
            if not 0 <= move.index < len(coords):
                raise FPQAConstraintError(
                    f"@shuttle {move.axis} {move.index} out of range"
                )
            coords[move.index] += move.offset
        spacing = self.hardware.min_trap_spacing_um
        for name, coords in (("column", new_cols), ("row", new_rows)):
            for i, (a, b) in enumerate(zip(coords, coords[1:])):
                if b - a < spacing - 1e-9:
                    raise FPQAConstraintError(
                        f"@shuttle would bring adjacent {name}s {i} and {i + 1} "
                        f"within {b - a:.2f} um (minimum {spacing} um); "
                        "rows/columns may not cross or crowd (Table 1)"
                    )
        self.aod_col_x = new_cols
        self.aod_row_y = new_rows
        self._geometry_epoch += 1

    # ------------------------------------------------------------------
    # Rydberg resolution
    # ------------------------------------------------------------------
    def resolve_rydberg_clusters(self) -> list[RydbergCluster]:
        """Maximal interacting clusters under the current geometry.

        Two atoms interact when closer than the Rydberg radius; clusters
        are the connected components of the interaction graph.  A cluster
        of three or more atoms must be (approximately) equidistant for the
        digital CZ/CCZ semantics to hold (§7); otherwise the pulse is
        rejected.  Singleton clusters are unaffected by the pulse.

        With ``incremental_clusters`` the interaction graph is built from
        a spatial hash (radius-sized cells, 3x3 neighborhood probes) and
        the result is cached until the next atom movement: back-to-back
        pulses in the same stance — every mid-fragment pulse pair in the
        ladder/compressed schedules, and the wChecker's replay of them —
        skip resolution entirely.
        """
        if (
            self.incremental_clusters
            and self._cluster_cache_epoch == self._geometry_epoch
        ):
            self.cluster_cache_hits += 1
            return list(self._cluster_cache)
        self.cluster_resolutions += 1
        if self.incremental_clusters:
            clusters = self._resolve_spatial_hash()
            self._cluster_cache = clusters
            self._cluster_cache_epoch = self._geometry_epoch
            return list(clusters)
        return self._resolve_brute_force()

    def _resolve_spatial_hash(self) -> list[RydbergCluster]:
        """Connected components via radius-cell hashing (near-linear)."""
        qubits = sorted(self.qubit_location)
        n = len(qubits)
        if n == 0:
            return []
        positions = [self.qubit_position(q) for q in qubits]
        radius = self.hardware.rydberg_radius_um
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        cells: dict[tuple[int, int], list[int]] = {}
        cells_get = cells.get
        floor = math.floor
        sqrt = math.sqrt
        for i, (x, y) in enumerate(positions):
            cell_x, cell_y = floor(x / radius), floor(y / radius)
            for dx in (-1, 0, 1):
                column = cell_x + dx
                for dy in (-1, 0, 1):
                    neighbors = cells_get((column, cell_y + dy))
                    if not neighbors:
                        continue
                    for j in neighbors:
                        ox, oy = positions[j]
                        # Same arithmetic as the dense reference resolver
                        # (sqrt of the coordinate-square sum), so the two
                        # paths agree bit-for-bit at the radius boundary.
                        if sqrt((x - ox) ** 2 + (y - oy) ** 2) <= radius:
                            ri, rj = find(i), find(j)
                            if ri != rj:
                                parent[ri] = rj
            cell = (cell_x, cell_y)
            members = cells_get(cell)
            if members is None:
                cells[cell] = [i]
            else:
                members.append(i)
        groups: dict[int, list[int]] = {}
        for i in range(n):
            groups.setdefault(find(i), []).append(i)
        clusters = []
        tol = self.hardware.equidistance_tolerance_um
        for members in groups.values():
            if len(members) < 2:
                continue
            member_qubits = tuple(qubits[i] for i in members)
            member_positions = tuple(positions[i] for i in members)
            if len(members) >= 3:
                dists = [
                    math.sqrt(
                        (positions[a][0] - positions[b][0]) ** 2
                        + (positions[a][1] - positions[b][1]) ** 2
                    )
                    for ai, a in enumerate(members)
                    for b in members[ai + 1 :]
                ]
                if max(dists) - min(dists) > tol:
                    raise FPQAConstraintError(
                        f"Rydberg cluster {member_qubits} is not equidistant "
                        f"(pairwise distances {min(dists):.2f}..{max(dists):.2f} um); "
                        "the digital C^nZ semantics does not apply (§7)"
                    )
            clusters.append(RydbergCluster(member_qubits, member_positions))
        clusters.sort(key=lambda c: c.qubits)
        return clusters

    def _resolve_brute_force(self) -> list[RydbergCluster]:
        """Dense O(n^2) reference resolver (the original implementation).

        Kept verbatim as the ground truth the randomized equivalence tests
        compare :meth:`_resolve_spatial_hash` against, and as the cluster
        path of the unoptimized benchmark pipeline.
        """
        qubits = sorted(self.qubit_location)
        if not qubits:
            return []
        pos = np.array([self.qubit_position(q) for q in qubits])
        deltas = pos[:, None, :] - pos[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=2))
        radius = self.hardware.rydberg_radius_um
        n = len(qubits)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        interacting = np.argwhere(
            (distances <= radius) & (np.triu(np.ones((n, n), dtype=bool), k=1))
        )
        for i, j in interacting:
            ri, rj = find(int(i)), find(int(j))
            if ri != rj:
                parent[ri] = rj
        groups: dict[int, list[int]] = {}
        for i in range(n):
            groups.setdefault(find(i), []).append(i)
        clusters = []
        tol = self.hardware.equidistance_tolerance_um
        for members in groups.values():
            if len(members) < 2:
                continue
            member_qubits = tuple(qubits[i] for i in members)
            member_positions = tuple((float(pos[i][0]), float(pos[i][1])) for i in members)
            if len(members) >= 3:
                dists = [
                    distances[a][b]
                    for ai, a in enumerate(members)
                    for b in members[ai + 1 :]
                ]
                if max(dists) - min(dists) > tol:
                    raise FPQAConstraintError(
                        f"Rydberg cluster {member_qubits} is not equidistant "
                        f"(pairwise distances {min(dists):.2f}..{max(dists):.2f} um); "
                        "the digital C^nZ semantics does not apply (§7)"
                    )
            clusters.append(RydbergCluster(member_qubits, member_positions))
        clusters.sort(key=lambda c: c.qubits)
        return clusters
