"""FPQA device state machine.

Tracks trap layers, atom positions, and qubit bindings while validating
every instruction against the pre-conditions of paper Table 1.  The same
machine serves two roles:

* the wOptimizer drives it while lowering a circuit, guaranteeing emitted
  programs are physically executable; and
* the wChecker replays a wQasm annotation stream through it to learn atom
  positions before each Rydberg pulse (§6, Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import FPQAConstraintError
from .hardware import FPQAHardwareParams
from .instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)

Location = tuple  # ("slm", index) | ("aod", col, row)


@dataclass(frozen=True)
class RydbergCluster:
    """A maximal group of mutually interacting atoms during a pulse."""

    qubits: tuple[int, ...]
    positions: tuple[tuple[float, float], ...]

    @property
    def size(self) -> int:
        return len(self.qubits)


class FPQADevice:
    """Mutable FPQA state: trap layers, atoms, and an instruction log."""

    def __init__(self, hardware: FPQAHardwareParams | None = None):
        self.hardware = hardware or FPQAHardwareParams()
        self.slm_positions: list[tuple[float, float]] = []
        self.slm_atoms: list[int | None] = []
        self.aod_col_x: list[float] = []
        self.aod_row_y: list[float] = []
        self.aod_atoms: dict[tuple[int, int], int] = {}
        self.qubit_location: dict[int, Location] = {}
        self.history: list[FPQAInstruction] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return len(self.qubit_location)

    def qubit_position(self, qubit: int) -> tuple[float, float]:
        """Current (x, y) of the atom bound to ``qubit``."""
        loc = self.qubit_location.get(qubit)
        if loc is None:
            raise FPQAConstraintError(f"qubit {qubit} is not bound to any atom")
        if loc[0] == "slm":
            return self.slm_positions[loc[1]]
        _, col, row = loc
        return (self.aod_col_x[col], self.aod_row_y[row])

    def atom_positions(self) -> dict[int, tuple[float, float]]:
        """Positions of all bound atoms, keyed by qubit id."""
        return {q: self.qubit_position(q) for q in self.qubit_location}

    def slm_index_at(self, x: float, y: float, tol: float = 1e-6) -> int | None:
        """Index of the SLM trap at (x, y), if any."""
        for idx, (px, py) in enumerate(self.slm_positions):
            if abs(px - x) <= tol and abs(py - y) <= tol:
                return idx
        return None

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def lose_atom(self, qubit: int) -> None:
        """Simulate atom loss: the trap empties, the qubit vanishes.

        Atom loss is the dominant hardware failure in neutral-atom arrays
        (imperfect transfers, background-gas collisions).  Injected losses
        let tests confirm that downstream operations fail loudly — a lost
        atom turns later transfers, Raman pulses, and Rydberg clusters on
        that qubit into detectable constraint violations.
        """
        location = self.qubit_location.pop(qubit, None)
        if location is None:
            raise FPQAConstraintError(f"qubit {qubit} holds no atom to lose")
        if location[0] == "slm":
            self.slm_atoms[location[1]] = None
        else:
            del self.aod_atoms[(location[1], location[2])]

    # ------------------------------------------------------------------
    # Instruction dispatch
    # ------------------------------------------------------------------
    def apply(self, instruction: FPQAInstruction) -> list[RydbergCluster] | None:
        """Validate and execute ``instruction``; Rydberg returns clusters."""
        result: list[RydbergCluster] | None = None
        if isinstance(instruction, SlmInit):
            self._init_slm(instruction)
        elif isinstance(instruction, AodInit):
            self._init_aod(instruction)
        elif isinstance(instruction, BindAtom):
            self._bind(instruction)
        elif isinstance(instruction, Transfer):
            self._transfer(instruction)
        elif isinstance(instruction, Shuttle):
            self._shuttle([instruction.move])
        elif isinstance(instruction, ParallelShuttle):
            self._shuttle(list(instruction.moves))
        elif isinstance(instruction, RamanLocal):
            if instruction.qubit not in self.qubit_location:
                raise FPQAConstraintError(
                    f"@raman local targets unbound qubit {instruction.qubit}"
                )
        elif isinstance(instruction, RamanGlobal):
            pass  # no pre-condition (Table 1)
        elif isinstance(instruction, RydbergPulse):
            result = self.resolve_rydberg_clusters()
        else:
            raise FPQAConstraintError(f"unknown instruction {instruction!r}")
        self.history.append(instruction)
        return result

    def run(self, instructions: list[FPQAInstruction]) -> None:
        for instruction in instructions:
            self.apply(instruction)

    # ------------------------------------------------------------------
    # Layer initialization
    # ------------------------------------------------------------------
    def _init_slm(self, instruction: SlmInit) -> None:
        if self.slm_positions:
            raise FPQAConstraintError("SLM layer is already initialized")
        positions = list(instruction.positions)
        self._check_spacing(positions, self.hardware.min_trap_spacing_um, "@slm")
        self.slm_positions = positions
        self.slm_atoms = [None] * len(positions)

    def _init_aod(self, instruction: AodInit) -> None:
        if self.aod_col_x or self.aod_row_y:
            raise FPQAConstraintError("AOD layer is already initialized")
        for name, coords in (("column x", instruction.xs), ("row y", instruction.ys)):
            for a, b in zip(coords, coords[1:]):
                if b <= a:
                    raise FPQAConstraintError(
                        f"@aod {name} coordinates must be strictly increasing"
                    )
                if b - a < self.hardware.min_trap_spacing_um:
                    raise FPQAConstraintError(
                        f"@aod adjacent {name} coordinates closer than the "
                        f"minimum spacing ({b - a:.2f} um)"
                    )
        self.aod_col_x = list(instruction.xs)
        self.aod_row_y = list(instruction.ys)

    def _check_spacing(
        self, positions: list[tuple[float, float]], spacing: float, what: str
    ) -> None:
        """Pairwise minimum-distance check via a spatial hash (O(n))."""
        cells: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for x, y in positions:
            cell = (math.floor(x / spacing), math.floor(y / spacing))
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for ox, oy in cells.get((cell[0] + dx, cell[1] + dy), ()):
                        if (x - ox) ** 2 + (y - oy) ** 2 < spacing**2 - 1e-9:
                            raise FPQAConstraintError(
                                f"{what} traps at ({ox:.2f}, {oy:.2f}) and "
                                f"({x:.2f}, {y:.2f}) violate the minimum "
                                f"spacing of {spacing} um"
                            )
            cells.setdefault(cell, []).append((x, y))

    # ------------------------------------------------------------------
    # Atoms
    # ------------------------------------------------------------------
    def _bind(self, instruction: BindAtom) -> None:
        qubit = instruction.qubit
        if qubit in self.qubit_location:
            raise FPQAConstraintError(f"qubit {qubit} is already bound")
        if instruction.slm_index is not None:
            idx = instruction.slm_index
            if not 0 <= idx < len(self.slm_positions):
                raise FPQAConstraintError(f"@bind slm index {idx} out of range")
            if self.slm_atoms[idx] is not None:
                raise FPQAConstraintError(f"SLM trap {idx} already holds an atom")
            self.slm_atoms[idx] = qubit
            self.qubit_location[qubit] = ("slm", idx)
            return
        col, row = instruction.aod_col, instruction.aod_row
        if not (0 <= col < len(self.aod_col_x) and 0 <= row < len(self.aod_row_y)):
            raise FPQAConstraintError(f"@bind aod crossing ({col}, {row}) out of range")
        if (col, row) in self.aod_atoms:
            raise FPQAConstraintError(f"AOD crossing ({col}, {row}) already holds an atom")
        self.aod_atoms[(col, row)] = qubit
        self.qubit_location[qubit] = ("aod", col, row)

    def _transfer(self, instruction: Transfer) -> None:
        idx, col, row = instruction.slm_index, instruction.aod_col, instruction.aod_row
        if not 0 <= idx < len(self.slm_positions):
            raise FPQAConstraintError(f"@transfer slm index {idx} out of range")
        if not (0 <= col < len(self.aod_col_x) and 0 <= row < len(self.aod_row_y)):
            raise FPQAConstraintError(f"@transfer aod crossing ({col}, {row}) out of range")
        slm_pos = self.slm_positions[idx]
        aod_pos = (self.aod_col_x[col], self.aod_row_y[row])
        distance = math.dist(slm_pos, aod_pos)
        if distance > self.hardware.transfer_max_distance_um:
            raise FPQAConstraintError(
                f"@transfer between traps {distance:.2f} um apart exceeds the "
                f"maximum of {self.hardware.transfer_max_distance_um} um"
            )
        slm_atom = self.slm_atoms[idx]
        aod_atom = self.aod_atoms.get((col, row))
        if slm_atom is not None and aod_atom is None:
            self.slm_atoms[idx] = None
            self.aod_atoms[(col, row)] = slm_atom
            self.qubit_location[slm_atom] = ("aod", col, row)
        elif slm_atom is None and aod_atom is not None:
            del self.aod_atoms[(col, row)]
            self.slm_atoms[idx] = aod_atom
            self.qubit_location[aod_atom] = ("slm", idx)
        else:
            raise FPQAConstraintError(
                "@transfer requires exactly one occupied and one empty trap "
                f"(slm {idx} holds {slm_atom}, aod ({col}, {row}) holds {aod_atom})"
            )

    # ------------------------------------------------------------------
    # Shuttling
    # ------------------------------------------------------------------
    def _shuttle(self, moves: list[ShuttleMove]) -> None:
        new_cols = list(self.aod_col_x)
        new_rows = list(self.aod_row_y)
        for move in moves:
            coords = new_cols if move.axis == "column" else new_rows
            if not 0 <= move.index < len(coords):
                raise FPQAConstraintError(
                    f"@shuttle {move.axis} {move.index} out of range"
                )
            coords[move.index] += move.offset
        spacing = self.hardware.min_trap_spacing_um
        for name, coords in (("column", new_cols), ("row", new_rows)):
            for i, (a, b) in enumerate(zip(coords, coords[1:])):
                if b - a < spacing - 1e-9:
                    raise FPQAConstraintError(
                        f"@shuttle would bring adjacent {name}s {i} and {i + 1} "
                        f"within {b - a:.2f} um (minimum {spacing} um); "
                        "rows/columns may not cross or crowd (Table 1)"
                    )
        self.aod_col_x = new_cols
        self.aod_row_y = new_rows

    # ------------------------------------------------------------------
    # Rydberg resolution
    # ------------------------------------------------------------------
    def resolve_rydberg_clusters(self) -> list[RydbergCluster]:
        """Maximal interacting clusters under the current geometry.

        Two atoms interact when closer than the Rydberg radius; clusters
        are the connected components of the interaction graph.  A cluster
        of three or more atoms must be (approximately) equidistant for the
        digital CZ/CCZ semantics to hold (§7); otherwise the pulse is
        rejected.  Singleton clusters are unaffected by the pulse.
        """
        qubits = sorted(self.qubit_location)
        if not qubits:
            return []
        pos = np.array([self.qubit_position(q) for q in qubits])
        deltas = pos[:, None, :] - pos[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=2))
        radius = self.hardware.rydberg_radius_um
        n = len(qubits)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        interacting = np.argwhere(
            (distances <= radius) & (np.triu(np.ones((n, n), dtype=bool), k=1))
        )
        for i, j in interacting:
            ri, rj = find(int(i)), find(int(j))
            if ri != rj:
                parent[ri] = rj
        groups: dict[int, list[int]] = {}
        for i in range(n):
            groups.setdefault(find(i), []).append(i)
        clusters = []
        tol = self.hardware.equidistance_tolerance_um
        for members in groups.values():
            if len(members) < 2:
                continue
            member_qubits = tuple(qubits[i] for i in members)
            member_positions = tuple((float(pos[i][0]), float(pos[i][1])) for i in members)
            if len(members) >= 3:
                dists = [
                    distances[a][b]
                    for ai, a in enumerate(members)
                    for b in members[ai + 1 :]
                ]
                if max(dists) - min(dists) > tol:
                    raise FPQAConstraintError(
                        f"Rydberg cluster {member_qubits} is not equidistant "
                        f"(pairwise distances {min(dists):.2f}..{max(dists):.2f} um); "
                        "the digital C^nZ semantics does not apply (§7)"
                    )
            clusters.append(RydbergCluster(member_qubits, member_positions))
        clusters.sort(key=lambda c: c.qubits)
        return clusters
