"""The FPQA low-level instruction set (the payload of wQasm annotations).

Each dataclass mirrors one annotation of paper Table 1:

========== =====================
wQasm      instruction class
========== =====================
``@slm``        :class:`SlmInit`
``@aod``        :class:`AodInit`
``@bind``       :class:`BindAtom`
``@transfer``   :class:`Transfer`
``@shuttle``    :class:`Shuttle` (grouped: :class:`ParallelShuttle`)
``@raman``      :class:`RamanLocal` / :class:`RamanGlobal`
``@rydberg``    :class:`RydbergPulse`
========== =====================

:class:`ParallelShuttle` groups order-preserving moves that execute
simultaneously (the output of Algorithm 2's ``create_shuttle``); it prints
as one ``@shuttle`` annotation with ``;``-joined moves in wQasm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..exceptions import FPQAConstraintError
from .hardware import FPQAHardwareParams


@dataclass(frozen=True)
class SlmInit:
    """``@slm``: initialize the fixed trap layer at given coordinates."""

    positions: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class AodInit:
    """``@aod``: initialize the reconfigurable grid (column xs, row ys)."""

    xs: tuple[float, ...]
    ys: tuple[float, ...]


@dataclass(frozen=True)
class BindAtom:
    """``@bind``: create an atom carrying ``qubit`` in a trap.

    ``slm_index`` addresses an SLM trap; otherwise ``aod_col``/``aod_row``
    address an AOD crossing.
    """

    qubit: int
    slm_index: int | None = None
    aod_col: int | None = None
    aod_row: int | None = None

    def __post_init__(self) -> None:
        slm = self.slm_index is not None
        aod = self.aod_col is not None and self.aod_row is not None
        if slm == aod:
            raise FPQAConstraintError(
                "@bind must address exactly one of an SLM trap or an AOD crossing"
            )


@dataclass(frozen=True)
class Transfer:
    """``@transfer``: move an atom between SLM trap and AOD crossing.

    The direction is inferred from occupancy: exactly one side must hold an
    atom and the other must be empty (Table 1 pre-condition).
    """

    slm_index: int
    aod_col: int
    aod_row: int


@dataclass(frozen=True)
class ShuttleMove:
    """A single row/column displacement (one ``@shuttle`` annotation).

    ``loaded`` records whether the moved row/column carried atoms at
    emission time; it only affects the timing model (empty moves are fast).
    It serializes as a trailing ``empty`` marker in the ``@shuttle``
    payload so re-parsed programs derive the same duration and EPS.
    """

    axis: str  # "row" | "column"
    index: int
    offset: float
    loaded: bool = True

    def __post_init__(self) -> None:
        if self.axis not in ("row", "column"):
            raise FPQAConstraintError(f"shuttle axis must be row/column, got {self.axis!r}")


@dataclass(frozen=True)
class Shuttle:
    """``@shuttle``: displace one AOD row or column by an offset."""

    move: ShuttleMove


@dataclass(frozen=True)
class ParallelShuttle:
    """A set of simultaneous, non-conflicting shuttle moves (Algorithm 2)."""

    moves: tuple[ShuttleMove, ...]

    def __post_init__(self) -> None:
        seen = set()
        for move in self.moves:
            key = (move.axis, move.index)
            if key in seen:
                raise FPQAConstraintError(
                    f"parallel shuttle moves the same {move.axis} {move.index} twice"
                )
            seen.add(key)


@dataclass(frozen=True)
class RamanLocal:
    """``@raman local``: rotate one qubit by Euler angles (x, y, z).

    The applied unitary is ``Rz(z) @ Ry(y) @ Rx(x)`` (see
    :mod:`repro.circuits.gates`); any single-qubit gate fits in one pulse.
    """

    qubit: int
    x: float
    y: float
    z: float


@dataclass(frozen=True)
class RamanGlobal:
    """``@raman global``: rotate every initialized atom by (x, y, z)."""

    x: float
    y: float
    z: float


@dataclass(frozen=True)
class RydbergPulse:
    """``@rydberg``: global pulse entangling every interacting cluster."""


FPQAInstruction = Union[
    SlmInit,
    AodInit,
    BindAtom,
    Transfer,
    Shuttle,
    ParallelShuttle,
    RamanLocal,
    RamanGlobal,
    RydbergPulse,
]


def instruction_duration_us(
    instruction: FPQAInstruction, hardware: FPQAHardwareParams
) -> float:
    """Wall-clock duration of one instruction on ``hardware``.

    Setup instructions (trap init, binding) happen before the circuit
    clock starts and cost zero; a parallel shuttle costs its longest move.
    """
    if isinstance(instruction, (SlmInit, AodInit, BindAtom)):
        return 0.0
    if isinstance(instruction, Transfer):
        return hardware.transfer_duration_us
    if isinstance(instruction, Shuttle):
        move = instruction.move
        return hardware.shuttle_duration_us(move.offset, loaded=move.loaded)
    if isinstance(instruction, ParallelShuttle):
        if not instruction.moves:
            return 0.0
        return max(
            hardware.shuttle_duration_us(move.offset, loaded=move.loaded)
            for move in instruction.moves
        )
    if isinstance(instruction, RamanLocal):
        return hardware.raman_local_duration_us
    if isinstance(instruction, RamanGlobal):
        return hardware.raman_global_duration_us
    if isinstance(instruction, RydbergPulse):
        return hardware.rydberg_pulse_duration_us
    raise FPQAConstraintError(f"unknown instruction {instruction!r}")
