"""FPQA hardware parameters.

The paper keeps Weaver hardware-agnostic by representing "the FPQA device
as a class with adjustable hardware parameters" (§7) and takes default
numbers for Rubidium atoms from Schmid et al. 2024 [83] and Evered et al.
2023 [26].  The defaults below follow those sources: ~0.5 µs single-qubit
Raman gates at 99.9% fidelity, ~0.27 µs Rydberg CZ at 99.5%, CCZ at 98%
(the "currently used CCZ error of 0.98" in §8.4), 5–10 µm minimum trap
spacing, and second-scale coherence times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import FPQAConstraintError


@dataclass(frozen=True)
class FPQAHardwareParams:
    """All tunable hardware constants of the FPQA model.

    Distances are micrometers, times microseconds, fidelities are success
    probabilities in ``[0, 1]``.
    """

    # Geometry -----------------------------------------------------------
    min_trap_spacing_um: float = 5.0
    rydberg_radius_um: float = 8.0
    #: Atoms closer than this but farther than the Rydberg radius still
    #: crosstalk; zones are separated by at least this distance
    #: (1.5x the Rydberg radius by default).
    safe_spacing_um: float = 12.0
    #: Maximum SLM<->AOD distance for an atom transfer (Table 1 @transfer).
    transfer_max_distance_um: float = 2.0
    #: Tolerance when checking the equidistance pre-condition of a CCZ
    #: cluster (§7: digital computation assumes equidistant atoms).
    equidistance_tolerance_um: float = 0.5

    # Timing --------------------------------------------------------------
    raman_local_duration_us: float = 0.5
    raman_global_duration_us: float = 0.5
    rydberg_pulse_duration_us: float = 0.27
    transfer_duration_us: float = 15.0
    #: AOD movement speed cap; kept for reference and validation.
    aod_speed_um_per_us: float = 0.55
    #: Acceleration limit for loaded moves.  Loaded shuttle time follows
    #: the constant-acceleration model used by Atomique [102]:
    #: ``t = 2 * sqrt(d / a)`` for distance ``d``.
    aod_acceleration_um_per_us2: float = 2.75e-3
    #: Speed for *empty* trap moves: repositioning an unloaded AOD row or
    #: column is only limited by the deflector drive, not by keeping an
    #: atom trapped, so it is orders of magnitude faster.
    aod_empty_speed_um_per_us: float = 55.0
    #: Fixed settle overhead per (parallel) shuttle operation.
    shuttle_settle_us: float = 5.0
    measurement_duration_us: float = 5000.0

    # Fidelities -----------------------------------------------------------
    fidelity_raman_local: float = 0.9997
    fidelity_raman_global: float = 0.99995
    fidelity_cz: float = 0.995
    fidelity_ccz: float = 0.98
    fidelity_transfer: float = 0.9995
    fidelity_measurement: float = 0.998

    # Coherence -------------------------------------------------------------
    t1_us: float = 4_000_000.0  # 4 s
    t2_us: float = 1_500_000.0  # 1.5 s

    def __post_init__(self) -> None:
        if self.min_trap_spacing_um <= 0:
            raise FPQAConstraintError("minimum trap spacing must be positive")
        if self.rydberg_radius_um < self.min_trap_spacing_um:
            raise FPQAConstraintError(
                "Rydberg radius below the minimum trap spacing leaves no "
                "usable interaction geometry"
            )
        if self.aod_speed_um_per_us <= 0:
            raise FPQAConstraintError("AOD speed must be positive")
        for name in (
            "fidelity_raman_local",
            "fidelity_raman_global",
            "fidelity_cz",
            "fidelity_ccz",
            "fidelity_transfer",
            "fidelity_measurement",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise FPQAConstraintError(f"{name} must be in (0, 1], got {value}")

    def with_overrides(self, **kwargs: float) -> "FPQAHardwareParams":
        """Copy with selected fields replaced (e.g. CCZ fidelity sweeps)."""
        return replace(self, **kwargs)

    def shuttle_duration_us(self, distance_um: float, loaded: bool = True) -> float:
        """Travel time for a shuttle move of ``distance_um``.

        Loaded moves follow the constant-acceleration model of [102]
        (``t = 2 sqrt(d/a)``): keeping the atom trapped limits
        acceleration, not velocity.  Unloaded moves use the fast
        empty-trap speed.
        """
        import math

        if loaded:
            travel = 2.0 * math.sqrt(abs(distance_um) / self.aod_acceleration_um_per_us2)
        else:
            travel = abs(distance_um) / self.aod_empty_speed_um_per_us
        return travel + self.shuttle_settle_us

    def cluster_fidelity(self, size: int) -> float:
        """Fidelity of one Rydberg-pulse gate on a cluster of ``size`` atoms."""
        if size == 2:
            return self.fidelity_cz
        if size == 3:
            return self.fidelity_ccz
        # Larger native gates degrade multiplicatively per extra atom.
        return self.fidelity_ccz ** (size - 2)
