"""Execution traces: time-resolved atom positions for FPQA programs.

Debugging aid for compiled wQasm programs: replays the instruction stream
through the device model and records, for every instruction, the wall
clock, the instruction kind, and each atom's position.  Traces export to
JSON for external plotting, and :func:`render_frame` draws an ASCII map of
a moment in the program — handy for eyeballing zone choreography.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..exceptions import VerificationError
from .device import FPQADevice
from .hardware import FPQAHardwareParams
from .instructions import (
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    Transfer,
    instruction_duration_us,
)


@dataclass(frozen=True)
class TraceEvent:
    """One instruction's footprint in the trace."""

    index: int
    kind: str
    time_us: float
    duration_us: float
    positions: dict[int, tuple[float, float]]
    detail: str = ""


@dataclass
class ExecutionTrace:
    """The full position-over-time record of one program."""

    events: list[TraceEvent] = field(default_factory=list)

    @property
    def total_duration_us(self) -> float:
        if not self.events:
            return 0.0
        last = self.events[-1]
        return last.time_us + last.duration_us

    def atom_path(self, qubit: int) -> list[tuple[float, float, float]]:
        """(time, x, y) samples of one atom across the program."""
        path = []
        for event in self.events:
            if qubit in event.positions:
                x, y = event.positions[qubit]
                path.append((event.time_us, x, y))
        return path

    def total_travel_um(self, qubit: int) -> float:
        """Total distance the atom moved over the program."""
        path = self.atom_path(qubit)
        travel = 0.0
        for (_, x1, y1), (_, x2, y2) in zip(path, path[1:]):
            travel += ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        return travel

    def to_json(self) -> str:
        payload = [
            {
                "index": e.index,
                "kind": e.kind,
                "time_us": e.time_us,
                "duration_us": e.duration_us,
                "detail": e.detail,
                "positions": {str(q): list(p) for q, p in e.positions.items()},
            }
            for e in self.events
        ]
        return json.dumps(payload, indent=2)


def _kind(instruction: FPQAInstruction) -> str:
    if isinstance(instruction, RamanLocal):
        return "raman_local"
    if isinstance(instruction, RamanGlobal):
        return "raman_global"
    if isinstance(instruction, RydbergPulse):
        return "rydberg"
    if isinstance(instruction, (Shuttle, ParallelShuttle)):
        return "shuttle"
    if isinstance(instruction, Transfer):
        return "transfer"
    return "setup"


def trace_program(program, hardware: FPQAHardwareParams | None = None) -> ExecutionTrace:
    """Replay ``program`` and record an :class:`ExecutionTrace`.

    Accepts a :class:`repro.wqasm.WQasmProgram`; raises if its instruction
    stream violates a device constraint (the trace doubles as a replayer).
    """
    hardware = hardware or FPQAHardwareParams()
    device = FPQADevice(hardware)
    trace = ExecutionTrace()
    clock = 0.0
    for index, instruction in enumerate(program.fpqa_instructions()):
        result = device.apply(instruction)
        duration = instruction_duration_us(instruction, hardware)
        detail = ""
        if isinstance(instruction, RydbergPulse) and result is not None:
            detail = "clusters: " + "; ".join(
                ",".join(f"q{q}" for q in cluster.qubits) for cluster in result
            )
        trace.events.append(
            TraceEvent(
                index=index,
                kind=_kind(instruction),
                time_us=clock,
                duration_us=duration,
                positions=device.atom_positions(),
                detail=detail,
            )
        )
        clock += duration
    return trace


def render_frame(event: TraceEvent, width: int = 72, height: int = 20) -> str:
    """ASCII map of atom positions at one trace event.

    Atoms print as their qubit index modulo 10; collisions print ``*``.
    """
    if not event.positions:
        raise VerificationError("event has no atoms to render")
    xs = [p[0] for p in event.positions.values()]
    ys = [p[1] for p in event.positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for qubit, (x, y) in sorted(event.positions.items()):
        col = int((x - min_x) / span_x * (width - 1))
        row = int((max_y - y) / span_y * (height - 1))
        cell = grid[row][col]
        grid[row][col] = "*" if cell != " " else str(qubit % 10)
    header = (
        f"t={event.time_us:.1f}us  {event.kind}"
        + (f"  [{event.detail}]" if event.detail else "")
    )
    return header + "\n" + "\n".join("".join(line) for line in grid)
