"""FPQA (Field-Programmable Qubit Array) device substrate.

Models the neutral-atom hardware of paper §2.3: a fixed SLM trap layer, a
reconfigurable AOD row/column grid, atom transfer between layers, row and
column shuttling, and the two control pulses (Raman and Rydberg).  The
:class:`FPQADevice` state machine validates every operation against the
pre-conditions of Table 1 and resolves which gates a global Rydberg pulse
applies, which is exactly the simulation the wChecker performs (§6).
"""

from .hardware import FPQAHardwareParams
from .instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
    instruction_duration_us,
)
from .device import FPQADevice, RydbergCluster
from .geometry import ZoneGeometry, zone_layout

__all__ = [
    "AodInit",
    "BindAtom",
    "FPQADevice",
    "FPQAHardwareParams",
    "FPQAInstruction",
    "ParallelShuttle",
    "RamanGlobal",
    "RamanLocal",
    "RydbergCluster",
    "RydbergPulse",
    "Shuttle",
    "ShuttleMove",
    "SlmInit",
    "Transfer",
    "ZoneGeometry",
    "instruction_duration_us",
    "zone_layout",
]
