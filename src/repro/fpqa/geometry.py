"""Zone geometry for color-group execution (paper Figure 5).

Weaver arranges each color group in its own spatial zone, placed on a
diagonal so consecutive zones never share AOD rows or columns.  Within a
zone, every clause gets a *slot*: an equilateral triangle of atom sites
(two controls on top, the target below) whose side fits inside the Rydberg
radius, with slots spaced far enough apart that neighboring clauses never
interact.  Above each slot sits a pair of *stage* positions where control
atoms rest between pulses — far enough from the target that a Rydberg
pulse there applies only the control-control CZ.

All distance invariants are asserted at construction time so that any
parameter combination that could produce unintended interactions fails
fast instead of miscompiling.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

from ..exceptions import FPQAConstraintError
from .hardware import FPQAHardwareParams


def position_key(position: tuple[float, float]) -> tuple[float, float]:
    """Canonical dict key for a trap coordinate (micrometer grid, 6 dp).

    The single rounding rule shared by every position-indexed lookup in
    the FPQA stack (the code generator's trap index and the device's SLM
    index), so two lookups of the same physical site can never disagree.
    """
    return (round(position[0], 6), round(position[1], 6))


@dataclass(frozen=True)
class ZoneGeometry:
    """Derived placement constants for a given hardware configuration."""

    hardware: FPQAHardwareParams
    #: Side of the clause triangle; all three atoms pairwise this far apart.
    triangle_side_um: float = field(default=0.0)
    #: Vertical rise of the control row above the target row.
    control_height_um: float = field(default=0.0)
    #: Extra rise separating controls from targets during the CZ stage.
    separation_offset_um: float = field(default=0.0)
    #: Horizontal gap between the two parked (stage-trap) controls; wider
    #: than the Rydberg radius so parked atoms never form spurious clusters
    #: while later zones execute.
    stage_gap_um: float = field(default=0.0)
    #: Horizontal distance between adjacent clause slots in a zone.
    slot_pitch_um: float = field(default=0.0)
    #: Vertical distance between consecutive zones.
    zone_pitch_um: float = field(default=0.0)
    #: Horizontal offset added per zone row (the paper's diagonal layout).
    diagonal_step_um: float = field(default=0.0)
    #: Spacing of the home-row traps where atoms start and idle.
    home_pitch_um: float = field(default=0.0)
    #: Zones per grid row (0 = single diagonal column of zones).  Packing
    #: zones into a near-square grid keeps shuttle travel short.
    zones_per_row: int = 0
    #: Clause slots reserved per zone cell when gridding (must cover the
    #: largest color group).
    slots_per_zone: int = 1

    def __post_init__(self) -> None:
        hw = self.hardware
        side = self.triangle_side_um or _default_side(hw)
        object.__setattr__(self, "triangle_side_um", side)
        object.__setattr__(self, "control_height_um", side * math.sqrt(3.0) / 2.0)
        sep = self.separation_offset_um or 2.0 * hw.rydberg_radius_um
        object.__setattr__(self, "separation_offset_um", sep)
        gap = self.stage_gap_um or 1.5 * hw.rydberg_radius_um
        object.__setattr__(self, "stage_gap_um", gap)
        pitch = self.slot_pitch_um or (gap + hw.safe_spacing_um)
        object.__setattr__(self, "slot_pitch_um", pitch)
        zone_height = self.control_height_um + sep
        zpitch = self.zone_pitch_um or (zone_height + hw.safe_spacing_um)
        object.__setattr__(self, "zone_pitch_um", zpitch)
        object.__setattr__(
            self, "diagonal_step_um", self.diagonal_step_um or hw.min_trap_spacing_um
        )
        default_home = max(
            hw.min_trap_spacing_um, 1.25 * hw.rydberg_radius_um
        )
        object.__setattr__(
            self, "home_pitch_um", self.home_pitch_um or default_home
        )
        self._validate()

    def _validate(self) -> None:
        hw = self.hardware
        side = self.triangle_side_um
        if side < hw.min_trap_spacing_um:
            raise FPQAConstraintError(
                f"triangle side {side} um below minimum trap spacing"
            )
        if side > hw.rydberg_radius_um:
            raise FPQAConstraintError(
                f"triangle side {side} um exceeds the Rydberg radius; the "
                "clause atoms would not interact"
            )
        if self.stage_gap_um <= hw.rydberg_radius_um:
            raise FPQAConstraintError(
                "stage gap within the Rydberg radius: parked controls would "
                "form spurious clusters during later pulses"
            )
        # In the b-target hover stage, atom `a` waits one stage gap away from
        # the hovering `b` and must be out of range of the target too.
        if math.hypot(self.stage_gap_um, side) <= hw.rydberg_radius_um:
            raise FPQAConstraintError("hover stage: waiting atom within target range")
        # Neighboring slots must never interact, even at the widest stance.
        clearance = self.slot_pitch_um - self.stage_gap_um
        if clearance <= hw.rydberg_radius_um:
            raise FPQAConstraintError(
                f"slot pitch {self.slot_pitch_um} um leaves a {clearance:.2f} um "
                "gap between neighboring clauses, inside the Rydberg radius"
            )
        # During the CZ stage the controls must be out of the target's range.
        reach = math.hypot(side / 2.0, self.control_height_um + self.separation_offset_um)
        if reach <= hw.rydberg_radius_um:
            raise FPQAConstraintError(
                "separation offset too small: staged controls would still "
                "interact with the target"
            )
        if self.zone_pitch_um <= self.control_height_um + self.separation_offset_um + hw.rydberg_radius_um:
            raise FPQAConstraintError("zones too close: cross-zone interactions possible")
        if self.home_pitch_um <= hw.rydberg_radius_um:
            raise FPQAConstraintError("home traps inside each other's Rydberg radius")

    # ------------------------------------------------------------------
    # Site positions
    # ------------------------------------------------------------------
    def home_position(self, variable: int, num_variables: int | None = None) -> tuple[float, float]:
        """Idle trap of 0-based ``variable`` on the home row (y = 0).

        A single row gives every atom a distinct x coordinate, which keeps
        Algorithm 2's order-preserving waves wide: atoms sharing an x
        cannot ride in the same wave (their AOD columns would collide).
        """
        return (variable * self.home_pitch_um, 0.0)

    def zone_cell_width_um(self) -> float:
        """Horizontal extent reserved for one zone cell in grid layout."""
        return (
            self.slots_per_zone * self.slot_pitch_um
            + 2.0 * self.hardware.safe_spacing_um
        )

    def zone_origin(self, color: int) -> tuple[float, float]:
        """Bottom-left reference point of zone ``color``.

        With ``zones_per_row == 0`` zones stack on a pure diagonal (one per
        row, shifted by the diagonal step).  Otherwise they pack into a
        near-square grid — shorter shuttle travel — keeping the paper's
        diagonal shear between grid rows so consecutive zones never share
        AOD rows or columns.
        """
        if self.zones_per_row <= 0:
            return (
                color * self.diagonal_step_um,
                (color + 1) * self.zone_pitch_um,
            )
        row, col = divmod(color, self.zones_per_row)
        return (
            col * self.zone_cell_width_um() + row * self.diagonal_step_um,
            (row + 1) * self.zone_pitch_um,
        )

    def slot_center_x(self, color: int, slot: int) -> float:
        return self.zone_origin(color)[0] + slot * self.slot_pitch_um

    def target_position(self, color: int, slot: int) -> tuple[float, float]:
        """SLM site of the clause target during zone execution."""
        origin_x, origin_y = self.zone_origin(color)
        return (origin_x + slot * self.slot_pitch_um, origin_y)

    def control_positions(
        self, color: int, slot: int
    ) -> tuple[tuple[float, float], tuple[float, float]]:
        """AOD sites of the two controls at the CCZ (triangle) stage."""
        x = self.slot_center_x(color, slot)
        y = self.zone_origin(color)[1] + self.control_height_um
        half = self.triangle_side_um / 2.0
        return ((x - half, y), (x + half, y))

    def stage_positions(
        self, color: int, slot: int
    ) -> tuple[tuple[float, float], tuple[float, float]]:
        """SLM rest sites of the controls, ``stage_gap`` apart (no cluster)."""
        x = self.slot_center_x(color, slot)
        y = self.stage_row_y(color)
        half = self.stage_gap_um / 2.0
        return ((x - half, y), (x + half, y))

    def pair_positions(
        self, color: int, slot: int
    ) -> tuple[tuple[float, float], tuple[float, float]]:
        """AOD sites of the controls during the CZ (pair) pulses."""
        x = self.slot_center_x(color, slot)
        y = self.stage_row_y(color)
        half = self.triangle_side_um / 2.0
        return ((x - half, y), (x + half, y))

    def bt_positions(
        self, color: int, slot: int
    ) -> tuple[tuple[float, float], tuple[float, float]]:
        """AOD sites for the b-target interaction stage (uncompressed path).

        ``b`` hovers directly above the target within the Rydberg radius;
        ``a`` waits a full stage gap to the left, out of range of both.
        """
        x = self.slot_center_x(color, slot)
        y = self.bt_row_y(color)
        return ((x - self.stage_gap_um, y), (x, y))

    def at_positions(
        self, color: int, slot: int
    ) -> tuple[tuple[float, float], tuple[float, float]]:
        """AOD sites for the a-target interaction stage (uncompressed path)."""
        x = self.slot_center_x(color, slot)
        y = self.bt_row_y(color)
        return ((x, y), (x + self.stage_gap_um, y))

    def triangle_row_y(self, color: int) -> float:
        return self.zone_origin(color)[1] + self.control_height_um

    def stage_row_y(self, color: int) -> float:
        return self.triangle_row_y(color) + self.separation_offset_um

    def bt_row_y(self, color: int) -> float:
        """Row height where a hovering atom sits within range of a target."""
        return self.zone_origin(color)[1] + self.triangle_side_um


def _default_side(hardware: FPQAHardwareParams) -> float:
    """Largest triangle side at least min spacing and within the radius."""
    side = 0.75 * hardware.rydberg_radius_um
    return max(side, hardware.min_trap_spacing_um)


@functools.lru_cache(maxsize=256)
def _cached_layout(
    hardware: FPQAHardwareParams, zones_per_row: int, slots_per_zone: int
) -> ZoneGeometry:
    return ZoneGeometry(
        hardware, zones_per_row=zones_per_row, slots_per_zone=slots_per_zone
    )


def zone_layout(
    hardware: FPQAHardwareParams | None = None, **overrides: float
) -> ZoneGeometry:
    """Convenience constructor with optional field overrides.

    The common shapes — the compiler's auto layout, which only varies
    ``zones_per_row``/``slots_per_zone`` — are cached per hardware
    configuration: the derived placement constants (and their validation)
    are computed once per device instead of once per compiled program.
    Explicit distance overrides bypass the cache.
    """
    hardware = hardware or FPQAHardwareParams()
    if set(overrides) <= {"zones_per_row", "slots_per_zone"}:
        return _cached_layout(
            hardware,
            int(overrides.get("zones_per_row", 0)),
            int(overrides.get("slots_per_zone", 1)),
        )
    return ZoneGeometry(hardware, **overrides)
