"""Codec between wQasm annotation text and FPQA instruction objects.

Annotation syntax follows the grammar of paper Figure 4:

====================  ==========================================
``@slm``              ``[(x0, y0), (x1, y1), ...]``
``@aod``              ``[x0, x1, ...] [y0, y1, ...]``
``@bind``             ``q<id> slm <index>`` or ``q<id> aod <col> <row>``
``@transfer``         ``<slm_index> (<aod_col>, <aod_row>)``
``@shuttle``          ``row|column <index> <offset>[ empty][; <move> ...]``
``@raman``            ``global <x> <y> <z>`` or ``local q<id> <x> <y> <z>``
``@rydberg``          (no arguments)
====================  ==========================================

A :class:`repro.fpqa.ParallelShuttle` serializes as one ``@shuttle``
annotation with its moves joined by ``;`` — the grouping is part of the
program's semantics (a parallel batch executes in one movement step, so
it determines the derived duration and EPS), so the text must preserve
it exactly.  A bare single-move payload is a sequential :class:`Shuttle`.
A move's trailing ``empty`` marks an unloaded (fast) displacement — also
timing-relevant, so it round-trips too; loaded is the unmarked default.
"""

from __future__ import annotations

import ast as python_ast
import re

from ..exceptions import AnnotationError
from ..fpqa.instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)
from ..qasm.ast import Annotation

_QUBIT_RE = re.compile(r"^q?(\d+)$")


def _parse_qubit(token: str) -> int:
    match = _QUBIT_RE.match(token)
    if not match:
        raise AnnotationError(f"expected a qubit id like 'q3', got {token!r}")
    return int(match.group(1))


def _literal(text: str, what: str):
    try:
        return python_ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise AnnotationError(f"malformed {what} payload: {text!r}") from exc


def _move_text(move: ShuttleMove) -> str:
    # The trailing "empty" marks an unloaded (fast) move; loaded is the
    # default so typical payloads stay three tokens.
    suffix = "" if move.loaded else " empty"
    return f"{move.axis} {move.index} {move.offset!r}{suffix}"


def annotation_to_instruction(annotation: Annotation) -> FPQAInstruction:
    """Decode one ``@keyword content`` annotation into an instruction."""
    keyword = annotation.keyword
    content = annotation.content.strip()
    if keyword == "slm":
        positions = _literal(content, "@slm")
        if not isinstance(positions, (list, tuple)):
            raise AnnotationError(f"@slm expects a coordinate list, got {content!r}")
        coords = []
        for item in positions:
            if not (isinstance(item, tuple) and len(item) == 2):
                raise AnnotationError(f"@slm coordinate {item!r} is not an (x, y) pair")
            coords.append((float(item[0]), float(item[1])))
        return SlmInit(tuple(coords))
    if keyword == "aod":
        match = re.match(r"^(\[.*?\])\s*(\[.*?\])$", content)
        if not match:
            raise AnnotationError(f"@aod expects two bracketed lists, got {content!r}")
        xs = _literal(match.group(1), "@aod xs")
        ys = _literal(match.group(2), "@aod ys")
        return AodInit(tuple(float(x) for x in xs), tuple(float(y) for y in ys))
    if keyword == "bind":
        parts = content.split()
        if len(parts) == 3 and parts[1] == "slm":
            return BindAtom(qubit=_parse_qubit(parts[0]), slm_index=int(parts[2]))
        if len(parts) == 4 and parts[1] == "aod":
            return BindAtom(
                qubit=_parse_qubit(parts[0]),
                aod_col=int(parts[2]),
                aod_row=int(parts[3]),
            )
        raise AnnotationError(f"malformed @bind payload: {content!r}")
    if keyword == "transfer":
        match = re.match(r"^(\d+)\s*\(\s*(-?\d+)\s*,\s*(-?\d+)\s*\)$", content)
        if not match:
            raise AnnotationError(f"malformed @transfer payload: {content!r}")
        return Transfer(
            slm_index=int(match.group(1)),
            aod_col=int(match.group(2)),
            aod_row=int(match.group(3)),
        )
    if keyword == "shuttle":
        moves = []
        for chunk in content.split(";"):
            parts = chunk.split()
            loaded = True
            if len(parts) == 4 and parts[3] == "empty":
                loaded = False
                parts = parts[:3]
            if len(parts) != 3 or parts[0] not in ("row", "column"):
                raise AnnotationError(f"malformed @shuttle payload: {content!r}")
            moves.append(
                ShuttleMove(parts[0], int(parts[1]), float(parts[2]), loaded=loaded)
            )
        if len(moves) == 1:
            return Shuttle(moves[0])
        return ParallelShuttle(tuple(moves))
    if keyword == "raman":
        parts = content.split()
        if len(parts) == 4 and parts[0] == "global":
            return RamanGlobal(float(parts[1]), float(parts[2]), float(parts[3]))
        if len(parts) == 5 and parts[0] == "local":
            return RamanLocal(
                _parse_qubit(parts[1]), float(parts[2]), float(parts[3]), float(parts[4])
            )
        raise AnnotationError(f"malformed @raman payload: {content!r}")
    if keyword == "rydberg":
        if content:
            raise AnnotationError(f"@rydberg takes no arguments, got {content!r}")
        return RydbergPulse()
    raise AnnotationError(f"unknown wQasm annotation @{keyword}")


def instruction_to_annotation(instruction: FPQAInstruction) -> list[Annotation]:
    """Encode an instruction as one or more annotations (inverse codec)."""
    if isinstance(instruction, SlmInit):
        body = ", ".join(f"({x!r}, {y!r})" for x, y in instruction.positions)
        return [Annotation("slm", f"[{body}]")]
    if isinstance(instruction, AodInit):
        xs = "[" + ", ".join(repr(x) for x in instruction.xs) + "]"
        ys = "[" + ", ".join(repr(y) for y in instruction.ys) + "]"
        return [Annotation("aod", f"{xs} {ys}")]
    if isinstance(instruction, BindAtom):
        if instruction.slm_index is not None:
            return [Annotation("bind", f"q{instruction.qubit} slm {instruction.slm_index}")]
        return [
            Annotation(
                "bind",
                f"q{instruction.qubit} aod {instruction.aod_col} {instruction.aod_row}",
            )
        ]
    if isinstance(instruction, Transfer):
        return [
            Annotation(
                "transfer",
                f"{instruction.slm_index} ({instruction.aod_col}, {instruction.aod_row})",
            )
        ]
    if isinstance(instruction, Shuttle):
        return [Annotation("shuttle", _move_text(instruction.move))]
    if isinstance(instruction, ParallelShuttle):
        body = "; ".join(_move_text(m) for m in instruction.moves)
        return [Annotation("shuttle", body)]
    if isinstance(instruction, RamanLocal):
        return [
            Annotation(
                "raman",
                f"local q{instruction.qubit} {instruction.x!r} {instruction.y!r} {instruction.z!r}",
            )
        ]
    if isinstance(instruction, RamanGlobal):
        return [
            Annotation("raman", f"global {instruction.x!r} {instruction.y!r} {instruction.z!r}")
        ]
    if isinstance(instruction, RydbergPulse):
        return [Annotation("rydberg", "")]
    raise AnnotationError(f"cannot serialize instruction {instruction!r}")


def instructions_from_annotations(
    annotations: list[Annotation] | tuple[Annotation, ...],
) -> list[FPQAInstruction]:
    """Decode a sequence of annotations, preserving order."""
    return [annotation_to_instruction(a) for a in annotations]
