"""wQasm: the FPQA annotation extension of OpenQASM (paper §4).

wQasm is a superset of OpenQASM: standard statements describe the logical
circuit, while ``@``-annotations describe the FPQA-specific steps (trap
setup, atom moves, pulses) required before each statement.  This package
provides the codec between annotation text and the instruction dataclasses
of :mod:`repro.fpqa`, plus :class:`WQasmProgram`, the compiler's output
artifact that pairs the pulse schedule with the logical circuit.
"""

from .annotations import (
    annotation_to_instruction,
    instruction_to_annotation,
    instructions_from_annotations,
)
from .program import AnnotatedOperation, WQasmProgram, parse_wqasm

__all__ = [
    "AnnotatedOperation",
    "WQasmProgram",
    "annotation_to_instruction",
    "instruction_to_annotation",
    "instructions_from_annotations",
    "parse_wqasm",
]
