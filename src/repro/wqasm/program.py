"""The wQasm program artifact: logical circuit + FPQA instruction stream.

A :class:`WQasmProgram` is what the wOptimizer emits and the wChecker
consumes.  It deliberately contains *redundant* information, as §4.2
describes: the logical gate statements (portable OpenQASM) and the FPQA
annotations that implement them.  Consistency between the two views is not
assumed — checking it is exactly the wChecker's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits import Instruction, QuantumCircuit
from ..fpqa.instructions import (
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    Transfer,
)
from ..qasm.loader import load_circuit
from ..qasm.parser import parse_qasm
from .annotations import instruction_to_annotation, instructions_from_annotations


@dataclass(frozen=True)
class AnnotatedOperation:
    """One wQasm step: FPQA instructions plus the logical gates they realize.

    ``instructions`` lists movement steps and the pulse, in execution
    order; ``gates`` lists the logical instructions the pulse implements
    (several for a Rydberg pulse acting on many clusters, none for pure
    movement/parking steps).
    """

    instructions: tuple[FPQAInstruction, ...]
    gates: tuple[Instruction, ...] = ()


@dataclass
class WQasmProgram:
    """A complete compiled FPQA program."""

    num_qubits: int
    setup: tuple[FPQAInstruction, ...] = ()
    operations: list[AnnotatedOperation] = field(default_factory=list)
    measured: bool = False
    name: str = "wqasm"

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def logical_circuit(self) -> QuantumCircuit:
        """The portable OpenQASM view (annotations stripped)."""
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        for operation in self.operations:
            for gate in operation.gates:
                circuit.append(gate.gate, gate.qubits)
        if self.measured:
            circuit.measure_all()
        return circuit

    def fpqa_instructions(self) -> list[FPQAInstruction]:
        """The full FPQA instruction stream, setup included."""
        stream: list[FPQAInstruction] = list(self.setup)
        for operation in self.operations:
            stream.extend(operation.instructions)
        return stream

    def pulse_counts(self) -> dict[str, int]:
        """Histogram of FPQA instruction kinds (the Fig. 10(b) metric).

        Shuttles are counted as elementary row/column moves so the metric
        is independent of how moves are grouped into parallel batches.
        """
        counts = {
            "raman_local": 0,
            "raman_global": 0,
            "rydberg": 0,
            "shuttle": 0,
            "transfer": 0,
        }
        for instruction in self.fpqa_instructions():
            if isinstance(instruction, RamanLocal):
                counts["raman_local"] += 1
            elif isinstance(instruction, RamanGlobal):
                counts["raman_global"] += 1
            elif isinstance(instruction, RydbergPulse):
                counts["rydberg"] += 1
            elif isinstance(instruction, Shuttle):
                counts["shuttle"] += 1
            elif isinstance(instruction, ParallelShuttle):
                counts["shuttle"] += len(instruction.moves)
            elif isinstance(instruction, Transfer):
                counts["transfer"] += 1
        return counts

    @property
    def total_pulses(self) -> int:
        return sum(self.pulse_counts().values())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_wqasm(self) -> str:
        """Serialize to wQasm text (OpenQASM 3 + annotations)."""
        lines = ["OPENQASM 3.0;"]
        for instruction in self.setup:
            for annotation in instruction_to_annotation(instruction):
                lines.append(f"@{annotation.keyword} {annotation.content}".rstrip())
        lines.append(f"qubit[{self.num_qubits}] q;")
        if self.measured:
            lines.append(f"bit[{self.num_qubits}] c;")
        for operation in self.operations:
            for instruction in operation.instructions:
                for annotation in instruction_to_annotation(instruction):
                    lines.append(f"@{annotation.keyword} {annotation.content}".rstrip())
            if operation.gates:
                for gate in operation.gates:
                    params = ""
                    if gate.params:
                        params = "(" + ", ".join(repr(p) for p in gate.params) + ")"
                    operands = ", ".join(f"q[{q}]" for q in gate.qubits)
                    lines.append(f"{gate.name}{params} {operands};")
            else:
                # Pure-movement step: annotations must attach to a statement.
                lines.append("barrier;")
        if self.measured:
            for qubit in range(self.num_qubits):
                lines.append(f"c[{qubit}] = measure q[{qubit}];")
        return "\n".join(lines) + "\n"


def parse_wqasm(source: str, name: str = "wqasm") -> WQasmProgram:
    """Parse wQasm text back into a :class:`WQasmProgram`.

    Statements without annotations join the preceding operation (e.g. the
    extra gates applied by the same Rydberg pulse); annotated statements
    start a new operation.  Parallel shuttle groups arrive as single
    ``@shuttle`` annotations with ``;``-joined moves, so the parsed
    instruction stream — and therefore the derived schedule, duration,
    and EPS — matches the serialized program exactly.
    """
    loaded = load_circuit(parse_qasm(source), name=name)
    setup = tuple(instructions_from_annotations(loaded.setup_annotations))
    program = WQasmProgram(
        num_qubits=loaded.circuit.num_qubits, setup=setup, name=name
    )
    current_instructions: list[FPQAInstruction] = []
    current_gates: list[Instruction] = []
    measured = False

    def flush() -> None:
        nonlocal current_instructions, current_gates
        if current_instructions or current_gates:
            program.operations.append(
                AnnotatedOperation(tuple(current_instructions), tuple(current_gates))
            )
            current_instructions = []
            current_gates = []

    for inst, annotations in zip(
        loaded.circuit.instructions, loaded.instruction_annotations
    ):
        if annotations:
            flush()
            current_instructions = list(
                instructions_from_annotations(list(annotations))
            )
        if inst.name == "measure":
            measured = True
            continue
        if inst.name == "barrier":
            # Barrier statements only exist to host annotations.
            continue
        current_gates.append(inst)
    flush()
    program.measured = measured
    return program
