"""Command-line interface: ``python -m repro <command>`` (or ``weaver``).

Commands
--------
``compile``   workload (.cnf DIMACS / .qasm) -> any registered target
``simulate``  compile a workload, then execute it on the noise simulator
``targets``   list the registered compilation targets
``devices``   list the registered device profiles
``check``     verify a wQasm file with the wChecker
``lint``      statically verify a compiled artifact with wLint
``export``    DIMACS CNF -> DPQA-format JSON (artifact step 6)
``bench``     run the laptop-scale artifact sweep (same as run.py --quick)
``serve``     host the async compilation service on a local socket
``submit``    send a workload to a running service (or query its stats)
``trace``     record any weaver command as a Chrome trace (Perfetto)
``top``       one-shot metrics snapshot of a running service
``jobs``      list a running service's jobs (``--dead``: its dead letters)

Examples::

    weaver compile problem.cnf -o program.wqasm
    weaver compile problem.cnf --target superconducting
    weaver compile problem.cnf --device aquila-256
    weaver simulate --target fpqa --device rubidium-baseline uf20-01 \
        --shots 2000 --seed 7
    weaver targets
    weaver devices rubidium-baseline
    weaver check program.wqasm
    weaver lint program.wqasm
    weaver lint uf20-01 --device rubidium-baseline --json
    weaver export problem.cnf -o gates.json
    weaver serve --socket /tmp/weaver.sock --shards 4 &
    weaver submit problem.cnf --socket /tmp/weaver.sock --target fpqa
    weaver submit problem.cnf --socket /tmp/weaver.sock --simulate
    weaver submit --stats --socket /tmp/weaver.sock
    weaver trace -o trace.json simulate uf20-01 --shots 200
    weaver trace trace.json
    weaver top --socket /tmp/weaver.sock
    weaver serve --store-dir /var/lib/weaver --max-pending 256 &
    weaver jobs --dead --socket /tmp/weaver.sock

``simulate`` accepts either a workload file or a SATLIB-style instance
name (``uf20-07``); its stdout (counts, sampled EPS with confidence
interval, approximation ratio) is bit-identical across reruns with the
same seed.

Exit codes: 0 success, 1 internal error (or failed verification),
2 user error (bad input file, unknown target, malformed wQasm).
``lint`` additionally exits 2 when the analyzer reports error-severity
findings — the exit code a CI gate keys on.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .baselines.dpqa_format import circuit_to_dpqa_json
from .checker import check_program
from .exceptions import WeaverError
from .metrics import program_duration_us, program_eps
from .passes.native_synthesis import nativize_circuit
from .qaoa import QaoaParameters, qaoa_circuit
from .sat import parse_dimacs
from .targets import Workload, compile as compile_workload, target_info
from .wqasm import parse_wqasm


def _load_formula(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_dimacs(text, name=Path(path).stem)


def _print_profile(args: argparse.Namespace, result) -> None:
    if args.profile:
        from .perf import format_profile_table

        print(format_profile_table(result.profile or {}), file=sys.stderr)


def _cmd_compile(args: argparse.Namespace) -> int:
    workload = Workload.from_file(args.input)
    parameters = QaoaParameters((args.gamma,), (args.beta,))
    options: dict = {"measure": not args.no_measure}
    if args.compression != "auto":
        options["compression"] = args.compression == "on"
    result = compile_workload(
        workload,
        target=args.target,
        parameters=parameters,
        budget_seconds=args.budget,
        device=args.device,
        **options,
    )
    summary = (
        f"compiled {workload.name} for {result.target}"
        + (f" on {result.device}" if result.device else "")
        + f": {result.num_qubits} qubits"
        + (f", {result.num_clauses} clauses" if result.num_clauses else "")
        + f" ({result.compile_seconds * 1e3:.0f} ms compile)"
    )
    if result.program is not None:
        text = result.program.to_wqasm()
        if args.output:
            Path(args.output).write_text(text, encoding="utf-8")
        else:
            sys.stdout.write(text)
        # The result's metrics were computed on the target's own hardware
        # (the selected device profile), so report those, not defaults.
        duration_ms = (
            result.execution_seconds * 1e3
            if result.execution_seconds is not None
            else program_duration_us(result.program) / 1e3
        )
        eps = result.eps if result.eps is not None else program_eps(result.program)
        summary += (
            f"; {result.program.total_pulses} pulses, "
            f"{duration_ms:.2f} ms, "
            f"EPS {eps:.4g}"
        )
        print(summary, file=sys.stderr)
        _print_profile(args, result)
        if args.verify:
            report = check_program(result.program, reference=result.native_circuit)
            print(f"wChecker: ok={report.ok}", file=sys.stderr)
            if not report.ok:
                return 1
    else:
        # Gate-level targets have no wQasm emission; report metrics instead.
        print(summary, file=sys.stderr)
        lines = {
            "execution_seconds": result.execution_seconds,
            "eps": result.eps,
            **{k: v for k, v in result.stats.items() if isinstance(v, (int, float))},
        }
        for key, value in lines.items():
            if value is not None:
                print(f"{key}: {value:.6g}" if isinstance(value, float) else f"{key}: {value}")
        _print_profile(args, result)
        if args.verify:
            print(
                f"error: --verify needs a wQasm-emitting target, not {result.target!r}",
                file=sys.stderr,
            )
            return 2
        if args.output:
            print(
                f"note: target {result.target!r} emits no program; "
                f"ignoring -o {args.output}",
                file=sys.stderr,
            )
    return 0


def _simulate_workload(source: str) -> "Workload":
    """A workload from a file path or a SATLIB-style instance name."""
    import re

    if not Path(source).exists() and re.fullmatch(r"uf\d+-\d+", source):
        from .sat import satlib_instance

        return Workload.from_formula(satlib_instance(source))
    return Workload.from_file(source)


def _format_execution(execution, top: int) -> list[str]:
    """The deterministic stdout block of ``weaver simulate``."""
    lines = [f"shots: {execution.shots}"]
    if execution.seed is not None:
        lines.append(f"seed: {execution.seed}")
    lines.append(
        "noise: off"
        if execution.noise_scale is None
        else f"noise: x{execution.noise_scale:g}"
    )
    lines.append(f"unique outcomes: {len(execution.counts)}")
    shown = list(execution.counts.items())[:top]
    if shown:
        lines.append(f"top counts ({len(shown)} of {len(execution.counts)}):")
        for bits, count in shown:
            lines.append(f"  {bits}  {count}")
    low, high = execution.eps_ci
    lines.append(
        f"sampled EPS: {execution.eps_sampled:.6g} "
        f"(95% CI {low:.6g}-{high:.6g}, "
        f"{execution.error_free_shots}/{execution.shots} error-free)"
    )
    if execution.eps_analytic is not None:
        lines.append(f"analytic EPS: {execution.eps_analytic:.6g}")
    if execution.energy is not None:
        lines.append(f"energy: {execution.energy:.6g} unsatisfied (mean)")
        lines.append(
            f"mean satisfied: {execution.mean_satisfied:.6g}"
            f"/{execution.optimum_satisfied:g}"
        )
        lines.append(
            f"best sampled: {execution.best_satisfied:g}"
            f"/{execution.optimum_satisfied:g}"
        )
        lines.append(
            f"approximation ratio: {execution.approximation_ratio:.6g}"
        )
    return lines


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json as json_module

    from .sim import simulate_result

    workload = _simulate_workload(args.input)
    parameters = QaoaParameters((args.gamma,), (args.beta,))
    result = compile_workload(
        workload,
        target=args.target,
        parameters=parameters,
        budget_seconds=args.budget,
        device=args.device,
    )
    summary = (
        f"compiled {workload.name} for {result.target}"
        + (f" on {result.device}" if result.device else "")
        + f": {result.num_qubits} qubits"
        + (f", {result.num_clauses} clauses" if result.num_clauses else "")
        + f" ({result.compile_seconds * 1e3:.0f} ms compile)"
    )
    print(summary, file=sys.stderr)
    import time as time_module

    started = time_module.perf_counter()
    execution = simulate_result(
        result,
        shots=args.shots,
        noise=None if args.no_noise else args.noise,
        seed=args.seed,
        formula=workload.formula,
        max_trajectories=args.max_trajectories,
    )
    print(
        f"simulated {args.shots} shots in "
        f"{time_module.perf_counter() - started:.1f} s",
        file=sys.stderr,
    )
    if args.json:
        print(json_module.dumps(execution.to_dict(), indent=1))
    else:
        for line in _format_execution(execution, args.top):
            print(line)
    return 0


def _cmd_targets(args: argparse.Namespace) -> int:
    infos = target_info(args.name)
    for info in infos:
        print(f"{info['name']}")
        print(f"  {info['description']}")
        print(f"  capabilities: {', '.join(info['capabilities'])}")
        if info["pipeline"]:
            print(f"  pipeline:     {' -> '.join(info['pipeline'])}")
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from .devices import device_info, get_device

    for info in device_info(args.name):
        print(f"{info['name']}  [{info['kind']}]")
        print(f"  {info['description']}")
        details = []
        if info["vendor"]:
            details.append(f"vendor: {info['vendor']}")
        if info["generation"]:
            details.append(f"generation: {info['generation']}")
        if info["max_qubits"] is not None:
            details.append(f"max qubits: {info['max_qubits']}")
        if details:
            print(f"  {'; '.join(details)}")
        if args.name:
            # Detail view: the full resolved parameter set of the spec.
            profile = get_device(args.name)
            for key, value in sorted(profile.params.items()):
                print(f"    {key} = {value}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    text = Path(args.input).read_text(encoding="utf-8")
    program = parse_wqasm(text, name=Path(args.input).stem)
    report = check_program(program)
    print(f"operations checked: {report.operations_checked}")
    print(f"reconstruction method: {report.reconstructed_method}")
    print(f"ok: {report.ok}")
    for failure in report.operation_failures[:10]:
        print(f"  {failure}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis import analyze_program, format_report

    path = Path(args.input)
    if path.suffix == ".wqasm" or (
        path.exists() and not path.suffix in (".cnf", ".qasm")
    ):
        # Lint a compiled artifact directly.  Without cost-metric
        # provenance (a raw file records none), the bounds pass has
        # nothing to compare against and is skipped.
        text = path.read_text(encoding="utf-8")
        program = parse_wqasm(text, name=path.stem)
        hardware = None
        if args.device is not None:
            from .devices import get_device
            from .devices.profile import KIND_FPQA

            profile = get_device(args.device)
            if profile.kind != KIND_FPQA:
                print(
                    f"error: device {args.device!r} is not an FPQA machine; "
                    "a wQasm file can only be linted against FPQA hardware",
                    file=sys.stderr,
                )
                return 2
            hardware = profile.hardware
        report = analyze_program(program, hardware=hardware, name=path.stem)
    else:
        # Compile a workload (file or SATLIB-style name) and lint the
        # artifact, bounds pass included.
        workload = _simulate_workload(args.input)
        result = compile_workload(
            workload,
            target=args.target,
            budget_seconds=args.budget,
            device=args.device,
        )
        print(
            f"compiled {workload.name} for {result.target}"
            + (f" on {result.device}" if result.device else "")
            + f" ({result.compile_seconds * 1e3:.0f} ms)",
            file=sys.stderr,
        )
        report = result.analyze()
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=1))
    else:
        print(format_report(report))
    return 0 if not report.errors else 2


def _cmd_export(args: argparse.Namespace) -> int:
    formula = _load_formula(args.input)
    circuit = nativize_circuit(qaoa_circuit(formula, measure=False))
    payload = circuit_to_dpqa_json(circuit, name=formula.name)
    if args.output:
        Path(args.output).write_text(payload, encoding="utf-8")
    else:
        sys.stdout.write(payload + "\n")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .evaluation import EvaluationConfig
    from .evaluation.artifact import run_artifact

    config = EvaluationConfig(
        fixed_instances=tuple(f"uf20-{i:02d}" for i in range(1, 4)),
        scaling_sizes=(20, 50),
        instances_per_size=1,
    )
    run_artifact(
        config, include_ccz_sweep=False, verbose=True, store_path=args.store
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from .service import serve
    from .telemetry import configure, format_metrics_table

    print(
        f"serving on {args.socket} "
        f"({args.shards} shard(s), {args.backend} backend); "
        "stop with Ctrl-C or `weaver submit --shutdown`",
        file=sys.stderr,
    )
    retry = None
    if args.retries is not None:
        from .service import RetryPolicy

        # +1: the flag counts *retries*, the policy counts attempts.
        retry = RetryPolicy(max_attempts=args.retries + 1)
    chaos = None
    if args.chaos_crash or args.chaos_stall or args.chaos_drop or args.chaos_disk:
        from .service import ChaosPolicy

        chaos = ChaosPolicy(
            worker_crash=args.chaos_crash,
            worker_stall=args.chaos_stall,
            socket_drop=args.chaos_drop,
            disk_fail=args.chaos_disk,
            seed=args.chaos_seed,
        )
        print(
            f"chaos enabled: crash={args.chaos_crash} stall={args.chaos_stall} "
            f"drop={args.chaos_drop} disk={args.chaos_disk} "
            f"seed={args.chaos_seed}",
            file=sys.stderr,
        )
    tracer = None
    if args.trace:
        tracer = configure(True)
    try:
        stats = asyncio.run(
            serve(
                args.socket,
                shards=args.shards,
                backend=args.backend,
                store_dir=args.store_dir,
                max_artifacts=args.max_artifacts,
                journal_path=args.journal,
                max_pending=args.max_pending,
                hang_seconds=args.hang_seconds,
                retry=retry,
                chaos=chaos,
                verbose=True,
            )
        )
    finally:
        if tracer is not None:
            from .telemetry import chrome_trace

            spans = tracer.export()
            configure(False)
            Path(args.trace).write_text(
                json_module.dumps(chrome_trace(spans)), encoding="utf-8"
            )
            print(
                f"wrote {len(spans)} span(s) to {args.trace} "
                "(open in ui.perfetto.dev)",
                file=sys.stderr,
            )
    print("service stopped", file=sys.stderr)
    table = format_metrics_table(stats.get("metrics") or {})
    if table:
        print(table, file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from .telemetry import (
        chrome_trace,
        configure,
        format_trace_tree,
        spans_from_chrome_trace,
        write_spans_jsonl,
    )

    command = list(args.args)
    if command and command[0] == "--":
        command = command[1:]
    if len(command) == 1 and command[0].endswith(".json") and Path(command[0]).exists():
        # Summarize an existing recording instead of making a new one.
        payload = json_module.loads(Path(command[0]).read_text(encoding="utf-8"))
        spans = spans_from_chrome_trace(payload)
        print(format_trace_tree(spans))
        return 0
    if not command:
        print(
            "error: trace needs a weaver command to record "
            "(or an existing trace .json to summarize)",
            file=sys.stderr,
        )
        return 2
    if command[0] == "trace":
        print("error: trace cannot record itself", file=sys.stderr)
        return 2
    tracer = configure(True)
    try:
        rc = main(command)
    finally:
        spans = tracer.export()
        configure(False)
    if args.jsonl:
        write_spans_jsonl(spans, args.output)
    else:
        Path(args.output).write_text(
            json_module.dumps(chrome_trace(spans)), encoding="utf-8"
        )
    print(
        f"wrote {len(spans)} span(s) to {args.output}"
        + ("" if args.jsonl else " (open in ui.perfetto.dev)"),
        file=sys.stderr,
    )
    print(format_trace_tree(spans), file=sys.stderr)
    return rc


def _cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceClient
    from .telemetry import format_metrics_table

    async def run() -> int:
        client = await ServiceClient.connect(args.socket)
        try:
            stats = await client.stats()
        finally:
            await client.close()
        print(
            f"service on {args.socket}: "
            f"{stats.get('shards')} shard(s), {stats.get('backend')} backend; "
            f"{stats.get('jobs_submitted')} submitted, "
            f"{stats.get('jobs_completed')} completed, "
            f"{stats.get('jobs_pending')} pending"
        )
        resilience = stats.get("resilience") or {}
        if resilience:
            line = (
                f"faults: {resilience.get('retries', 0)} retried, "
                f"{resilience.get('dead_letters', 0)} dead-lettered, "
                f"{resilience.get('shed', 0)} shed, "
                f"{resilience.get('worker_restarts', 0)} worker restart(s)"
            )
            recovered = resilience.get("recovered")
            if recovered and recovered.get("recovered"):
                line += f"; recovered {recovered['recovered']} from journal"
            print(line)
        table = format_metrics_table(stats.get("metrics") or {})
        if table:
            print(table)
        else:
            print("(no metrics recorded yet)")
        return 0

    return asyncio.run(run())


def _cmd_jobs(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from .service import ServiceClient

    async def run() -> int:
        client = await ServiceClient.connect(args.socket)
        try:
            jobs = await client.jobs(dead=args.dead)
        finally:
            await client.close()
        if args.json:
            print(json_module.dumps(jobs, indent=2))
            return 0
        if not jobs:
            print("(no dead-letter jobs)" if args.dead else "(no jobs)")
            return 0
        for row in jobs:
            line = (
                f"{row.get('job')}: {row.get('status')} "
                f"{row.get('kind')} {row.get('workload')} -> {row.get('target')}"
                + (f" on {row['device']}" if row.get("device") else "")
                + f" [client {row.get('client')}, "
                + f"attempts {row.get('attempts', 0)}]"
            )
            if row.get("error"):
                line += f" error: {row['error']}"
            print(line)
        return 0

    return asyncio.run(run())


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from .service import ServiceClient
    from .targets import Workload

    async def run() -> int:
        client = await ServiceClient.connect(args.socket)
        try:
            if args.shutdown:
                await client.shutdown()
                print("service stopping", file=sys.stderr)
                return 0
            if args.stats:
                stats = await client.stats()
                if args.json:
                    print(json_module.dumps(stats, indent=2))
                    return 0
                from .telemetry import format_metrics_table

                print(
                    f"{stats.get('jobs_submitted')} submitted, "
                    f"{stats.get('jobs_completed')} completed, "
                    f"{stats.get('jobs_pending')} pending "
                    f"({stats.get('shards')} shard(s), "
                    f"{stats.get('backend')} backend)"
                )
                artifacts = stats.get("artifacts") or {}
                rate = artifacts.get("hit_rate")
                print(
                    f"artifacts: {artifacts.get('entries')} entries, "
                    f"{artifacts.get('hits')} hits / "
                    f"{artifacts.get('misses')} misses"
                    + (f" ({rate:.0%} hit rate)" if rate is not None else "")
                )
                table = format_metrics_table(stats.get("metrics") or {})
                if table:
                    print(table)
                return 0
            if args.input is None:
                print(
                    "error: submit needs an input file (or --stats / --shutdown)",
                    file=sys.stderr,
                )
                return 2
            workload = Workload.from_file(args.input)
            options: dict = {}
            if args.no_measure:
                options["measure"] = False
            simulate = None
            if args.simulate:
                simulate = {
                    "shots": args.shots,
                    "seed": args.seed,
                    "noise": None if args.no_noise else args.noise,
                    "max_trajectories": args.max_trajectories,
                }
            out = await client.submit(
                workload,
                target=args.target or "fpqa",
                device=args.device,
                client=args.client,
                priority=args.priority,
                timeout=args.budget,
                simulate=simulate,
                analyze=True if args.lint else None,
                **options,
            )
            result = out.result
            summary = (
                f"{out.job_id}: {result.target}"
                + (f" on {result.device}" if result.device else "")
                + f" <- {result.workload}"
                + (" [cached]" if out.from_cache else "")
                + (
                    f" ({result.compile_seconds * 1e3:.0f} ms compile)"
                    if not out.from_cache
                    else ""
                )
            )
            print(summary, file=sys.stderr)
            if result.error is not None:
                print(f"error: {result.error}", file=sys.stderr)
                return 1
            if result.timed_out:
                print("error: compilation timed out", file=sys.stderr)
                return 1
            if result.analysis is not None and not args.json:
                diags = result.analysis.get("diagnostics", [])
                print(
                    "wLint: "
                    + ("clean" if result.analysis.get("ok") else "FAILED")
                    + (f" ({len(diags)} finding(s))" if diags else ""),
                    file=sys.stderr,
                )
            if result.execution is not None and not args.json:
                execution = result.execution
                eps = execution.get("eps_sampled")
                line = f"sampled EPS: {eps:.6g}" if eps is not None else "simulated"
                ci = execution.get("eps_ci")
                if ci:
                    line += f" (95% CI {ci[0]:.6g}-{ci[1]:.6g})"
                print(
                    f"{line} over {execution.get('shots')} shots",
                    file=sys.stderr,
                )
            if args.json:
                print(json_module.dumps(out.raw, indent=2))
            elif result.program is not None:
                text = result.program.to_wqasm()
                if args.output:
                    Path(args.output).write_text(text, encoding="utf-8")
                else:
                    sys.stdout.write(text)
            else:
                # Gate-level targets emit no program; report metrics,
                # matching `weaver compile`.
                lines = {
                    "execution_seconds": result.execution_seconds,
                    "eps": result.eps,
                    **{
                        k: v
                        for k, v in result.stats.items()
                        if isinstance(v, (int, float))
                    },
                }
                for key, value in lines.items():
                    if value is not None:
                        print(
                            f"{key}: {value:.6g}"
                            if isinstance(value, float)
                            else f"{key}: {value}"
                        )
            return 0
        finally:
            await client.close()

    return asyncio.run(run())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a workload for a target")
    p_compile.add_argument("input", help="DIMACS .cnf or OpenQASM .qasm file")
    p_compile.add_argument("-o", "--output", help="wQasm output path (default stdout)")
    p_compile.add_argument(
        "-t", "--target", default=None,
        help="registered target name (see `repro targets`; default fpqa, "
             "or the target matching --device's kind)",
    )
    p_compile.add_argument(
        "-d", "--device", default=None,
        help="registered device profile to compile for (see `repro devices`)",
    )
    p_compile.add_argument("--gamma", type=float, default=0.7, help="QAOA gamma")
    p_compile.add_argument("--beta", type=float, default=0.35, help="QAOA beta")
    p_compile.add_argument(
        "--compression", choices=("auto", "on", "off"), default="auto"
    )
    p_compile.add_argument(
        "--budget", type=float, default=None, help="compile budget in seconds"
    )
    p_compile.add_argument("--no-measure", action="store_true")
    p_compile.add_argument("--verify", action="store_true", help="run the wChecker")
    p_compile.add_argument(
        "--profile", action="store_true",
        help="print the per-pass / per-primitive time+count table",
    )
    p_compile.set_defaults(func=_cmd_compile)

    p_simulate = sub.add_parser(
        "simulate",
        help="compile a workload and execute it on the noise-aware simulator",
    )
    p_simulate.add_argument(
        "input",
        help="DIMACS .cnf / OpenQASM .qasm file, or a SATLIB-style "
             "instance name like uf20-01",
    )
    p_simulate.add_argument(
        "-t", "--target", default=None,
        help="registered target name (default fpqa, or the target "
             "matching --device's kind)",
    )
    p_simulate.add_argument(
        "-d", "--device", default=None,
        help="registered device profile to compile and simulate for",
    )
    p_simulate.add_argument(
        "--shots", type=int, default=1024, help="number of sampled executions"
    )
    p_simulate.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed; identical seeds give bit-identical output",
    )
    p_simulate.add_argument(
        "--noise", type=float, default=1.0,
        help="noise scale factor over the device model (default 1.0)",
    )
    p_simulate.add_argument(
        "--no-noise", action="store_true", help="simulate without noise"
    )
    p_simulate.add_argument(
        "--max-trajectories", type=int, default=8,
        help="error signatures replayed exactly; the tail uses the "
             "measurement-frame approximation (default 8)",
    )
    p_simulate.add_argument(
        "--top", type=int, default=10, help="outcome rows to print (default 10)"
    )
    p_simulate.add_argument("--gamma", type=float, default=0.7, help="QAOA gamma")
    p_simulate.add_argument("--beta", type=float, default=0.35, help="QAOA beta")
    p_simulate.add_argument(
        "--budget", type=float, default=None, help="compile budget in seconds"
    )
    p_simulate.add_argument(
        "--json", action="store_true",
        help="print the full ExecutionResult record as JSON",
    )
    p_simulate.set_defaults(func=_cmd_simulate)

    p_targets = sub.add_parser("targets", help="list registered targets")
    p_targets.add_argument("name", nargs="?", help="show only this target")
    p_targets.set_defaults(func=_cmd_targets)

    p_devices = sub.add_parser("devices", help="list registered device profiles")
    p_devices.add_argument(
        "name", nargs="?", help="show this device with its full parameter set"
    )
    p_devices.set_defaults(func=_cmd_devices)

    p_check = sub.add_parser("check", help="verify a wQasm file")
    p_check.add_argument("input", help="wQasm file")
    p_check.set_defaults(func=_cmd_check)

    p_lint = sub.add_parser(
        "lint",
        help="statically verify a compiled artifact with the wLint analyzer",
    )
    p_lint.add_argument(
        "input",
        help="wQasm file to lint, or a DIMACS .cnf / OpenQASM .qasm file "
             "or SATLIB-style instance name (like uf20-01) to compile "
             "and lint",
    )
    p_lint.add_argument(
        "-t", "--target", default=None,
        help="target for the compile-and-lint path (default fpqa, or the "
             "target matching --device's kind)",
    )
    p_lint.add_argument(
        "-d", "--device", default=None,
        help="registered device profile to lint against",
    )
    p_lint.add_argument(
        "--budget", type=float, default=None, help="compile budget in seconds"
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="print the full AnalysisReport record as JSON",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_export = sub.add_parser("export", help="DIMACS CNF -> DPQA JSON")
    p_export.add_argument("input", help="DIMACS .cnf file")
    p_export.add_argument("-o", "--output", help="JSON output path (default stdout)")
    p_export.set_defaults(func=_cmd_export)

    p_bench = sub.add_parser("bench", help="quick artifact sweep")
    p_bench.add_argument(
        "--store", metavar="PATH", default=None,
        help="persist/resume results at this JSON path",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="host the async compilation service on a local socket"
    )
    p_serve.add_argument(
        "--socket", default="/tmp/weaver.sock",
        help="Unix socket path to listen on (default /tmp/weaver.sock)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=2,
        help="worker shards; jobs route by (target, device) cell",
    )
    p_serve.add_argument(
        "--backend", choices=("thread", "process", "inline"), default="thread",
        help="shard executor: thread (default), process (multi-core), inline",
    )
    p_serve.add_argument(
        "--store-dir", default=None,
        help="persist compiled artifacts under this directory",
    )
    p_serve.add_argument(
        "--max-artifacts", type=int, default=512,
        help="in-memory artifact LRU bound (default 512)",
    )
    p_serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record every job as a Chrome trace and write it here "
             "on shutdown",
    )
    p_serve.add_argument(
        "--journal", metavar="PATH", default=None,
        help="durable job journal path (default <store-dir>/journal.jsonl "
             "when --store-dir is set); incomplete jobs are recovered on "
             "the next start",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=None,
        help="queue high-water mark: shed new submissions (with a "
             "retry_after hint) past this many pending jobs",
    )
    p_serve.add_argument(
        "--hang-seconds", type=float, default=None,
        help="grace beyond a job's budget before its worker counts as "
             "hung and the attempt is retried on a fresh executor",
    )
    p_serve.add_argument(
        "--retries", type=int, default=None,
        help="transient-failure retries per job (default 2; "
             "deterministic compile errors never retry)",
    )
    p_serve.add_argument(
        "--chaos-crash", type=float, default=0.0, metavar="RATE",
        help="fault injection: worker-crash probability per execution",
    )
    p_serve.add_argument(
        "--chaos-stall", type=float, default=0.0, metavar="RATE",
        help="fault injection: worker-stall probability per execution",
    )
    p_serve.add_argument(
        "--chaos-drop", type=float, default=0.0, metavar="RATE",
        help="fault injection: socket-drop probability per protocol event",
    )
    p_serve.add_argument(
        "--chaos-disk", type=float, default=0.0, metavar="RATE",
        help="fault injection: disk-write failure probability per artifact",
    )
    p_serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the chaos fault schedule (default 0)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_trace = sub.add_parser(
        "trace",
        help="record a weaver command as a Chrome trace (Perfetto), or "
             "summarize an existing trace .json",
    )
    p_trace.add_argument(
        "-o", "--output", default="trace.json",
        help="trace output path (default trace.json)",
    )
    p_trace.add_argument(
        "--jsonl", action="store_true",
        help="write raw span records (JSON lines) instead of Chrome "
             "trace-event JSON",
    )
    p_trace.add_argument(
        "args", nargs=argparse.REMAINDER,
        help="the weaver command to record (e.g. `simulate uf20-01`), or "
             "one existing trace .json file to summarize",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_top = sub.add_parser(
        "top", help="one-shot metrics snapshot of a running service"
    )
    p_top.add_argument(
        "--socket", default="/tmp/weaver.sock",
        help="service socket path (default /tmp/weaver.sock)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_jobs = sub.add_parser(
        "jobs", help="list a running service's jobs (or its dead letters)"
    )
    p_jobs.add_argument(
        "--socket", default="/tmp/weaver.sock",
        help="service socket path (default /tmp/weaver.sock)",
    )
    p_jobs.add_argument(
        "--dead", action="store_true",
        help="list quarantined poison jobs (dead letters) instead",
    )
    p_jobs.add_argument(
        "--json", action="store_true", help="print the records as JSON"
    )
    p_jobs.set_defaults(func=_cmd_jobs)

    p_submit = sub.add_parser(
        "submit", help="send a workload to a running service"
    )
    p_submit.add_argument(
        "input", nargs="?", help="DIMACS .cnf or OpenQASM .qasm file"
    )
    p_submit.add_argument(
        "--socket", default="/tmp/weaver.sock",
        help="service socket path (default /tmp/weaver.sock)",
    )
    p_submit.add_argument(
        "-t", "--target", default=None, help="registered target name (default fpqa)"
    )
    p_submit.add_argument(
        "-d", "--device", default=None, help="registered device profile name"
    )
    p_submit.add_argument("-o", "--output", help="wQasm output path (default stdout)")
    p_submit.add_argument(
        "--client", default="cli", help="client name for fair scheduling"
    )
    p_submit.add_argument(
        "--priority", type=int, default=0, help="job priority (0 first)"
    )
    p_submit.add_argument(
        "--budget", type=float, default=None, help="compile budget in seconds"
    )
    p_submit.add_argument("--no-measure", action="store_true")
    p_submit.add_argument(
        "--simulate", action="store_true",
        help="request a sim job: the service also executes the compiled "
             "artifact on the noise-aware simulator",
    )
    p_submit.add_argument(
        "--lint", action="store_true",
        help="request a lint job: the service also statically verifies "
             "the compiled artifact with the wLint analyzer",
    )
    p_submit.add_argument(
        "--shots", type=int, default=1024,
        help="shots for --simulate (default 1024)",
    )
    p_submit.add_argument(
        "--seed", type=int, default=0, help="seed for --simulate (default 0)"
    )
    p_submit.add_argument(
        "--noise", type=float, default=1.0,
        help="noise scale for --simulate (default 1.0)",
    )
    p_submit.add_argument(
        "--no-noise", action="store_true",
        help="simulate without noise (with --simulate)",
    )
    p_submit.add_argument(
        "--max-trajectories", type=int, default=8,
        help="exactly-replayed error signatures for --simulate (default 8)",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="print the full result record as JSON instead of wQasm",
    )
    p_submit.add_argument(
        "--stats", action="store_true", help="print service stats and exit"
    )
    p_submit.add_argument(
        "--shutdown", action="store_true", help="ask the service to stop"
    )
    p_submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point with one error handler for every command.

    User errors — bad input files, malformed wQasm/DIMACS/QASM, unknown
    targets — exit 2 with a one-line message.  Anything else is an
    internal error: exit 1, with the traceback available via
    ``REPRO_DEBUG=1``.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe: not an
        # error.  Point stdout at devnull so the interpreter's exit flush
        # doesn't trip over the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (WeaverError, OSError, UnicodeDecodeError) as exc:
        # Known failure modes of user input (UnknownTargetError is a
        # WeaverError; unreadable or non-UTF-8 files land in OSError /
        # UnicodeDecodeError).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:  # noqa: BLE001 — the CLI must not traceback
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(
            f"internal error: {type(exc).__name__}: {exc}\n"
            "(this is a bug in the compiler, not your input; "
            "set REPRO_DEBUG=1 for the full traceback)",
            file=sys.stderr,
        )
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
