"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile``   DIMACS CNF -> wQasm program (+ metrics on stderr)
``check``     verify a wQasm file with the wChecker
``export``    DIMACS CNF -> DPQA-format JSON (artifact step 6)
``bench``     run the laptop-scale artifact sweep (same as run.py --quick)

Examples::

    python -m repro compile problem.cnf -o program.wqasm
    python -m repro check program.wqasm
    python -m repro export problem.cnf -o gates.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baselines.dpqa_format import circuit_to_dpqa_json
from .checker import check_program
from .exceptions import WeaverError
from .metrics import program_duration_us, program_eps
from .passes import compile_formula, nativize_circuit
from .qaoa import QaoaParameters, qaoa_circuit
from .sat import parse_dimacs
from .wqasm import parse_wqasm


def _load_formula(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_dimacs(text, name=Path(path).stem)


def _cmd_compile(args: argparse.Namespace) -> int:
    formula = _load_formula(args.input)
    parameters = QaoaParameters((args.gamma,), (args.beta,))
    result = compile_formula(
        formula,
        parameters=parameters,
        compression=None if args.compression == "auto" else args.compression == "on",
        measure=not args.no_measure,
    )
    text = result.program.to_wqasm()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)
    program = result.program
    print(
        f"compiled {formula.name}: {formula.num_vars} vars, "
        f"{formula.num_clauses} clauses -> {program.total_pulses} pulses, "
        f"{program_duration_us(program) / 1e3:.2f} ms, "
        f"EPS {program_eps(program):.4g} "
        f"({result.compile_seconds * 1e3:.0f} ms compile)",
        file=sys.stderr,
    )
    if args.verify:
        report = check_program(program, reference=result.native_circuit)
        print(f"wChecker: ok={report.ok}", file=sys.stderr)
        if not report.ok:
            return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    text = Path(args.input).read_text(encoding="utf-8")
    program = parse_wqasm(text, name=Path(args.input).stem)
    report = check_program(program)
    print(f"operations checked: {report.operations_checked}")
    print(f"reconstruction method: {report.reconstructed_method}")
    print(f"ok: {report.ok}")
    for failure in report.operation_failures[:10]:
        print(f"  {failure}")
    return 0 if report.ok else 1


def _cmd_export(args: argparse.Namespace) -> int:
    formula = _load_formula(args.input)
    circuit = nativize_circuit(qaoa_circuit(formula, measure=False))
    payload = circuit_to_dpqa_json(circuit, name=formula.name)
    if args.output:
        Path(args.output).write_text(payload, encoding="utf-8")
    else:
        sys.stdout.write(payload + "\n")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .evaluation import EvaluationConfig
    from .evaluation.artifact import run_artifact

    config = EvaluationConfig(
        fixed_instances=tuple(f"uf20-{i:02d}" for i in range(1, 4)),
        scaling_sizes=(20, 50),
        instances_per_size=1,
    )
    run_artifact(config, include_ccz_sweep=False, verbose=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="DIMACS CNF -> wQasm")
    p_compile.add_argument("input", help="DIMACS .cnf file")
    p_compile.add_argument("-o", "--output", help="wQasm output path (default stdout)")
    p_compile.add_argument("--gamma", type=float, default=0.7, help="QAOA gamma")
    p_compile.add_argument("--beta", type=float, default=0.35, help="QAOA beta")
    p_compile.add_argument(
        "--compression", choices=("auto", "on", "off"), default="auto"
    )
    p_compile.add_argument("--no-measure", action="store_true")
    p_compile.add_argument("--verify", action="store_true", help="run the wChecker")
    p_compile.set_defaults(func=_cmd_compile)

    p_check = sub.add_parser("check", help="verify a wQasm file")
    p_check.add_argument("input", help="wQasm file")
    p_check.set_defaults(func=_cmd_check)

    p_export = sub.add_parser("export", help="DIMACS CNF -> DPQA JSON")
    p_export.add_argument("input", help="DIMACS .cnf file")
    p_export.add_argument("-o", "--output", help="JSON output path (default stdout)")
    p_export.set_defaults(func=_cmd_export)

    p_bench = sub.add_parser("bench", help="quick artifact sweep")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (WeaverError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
