"""DSatur greedy graph coloring (Brélaz 1979), the heart of clause coloring.

The paper's wOptimizer (§5.2, Algorithm 1) assigns colors to clauses so
same-colored clauses share no variable and can execute in the same global
Rydberg stage.  DSatur gives quality colorings in O(N^2), which drives
Weaver's overall O(N^2) compile complexity (§5.5, Table 2).
"""

from __future__ import annotations

import heapq

from ..exceptions import ColoringError
from .conflict_graph import ConflictGraph


def dsatur_coloring(graph: ConflictGraph) -> list[int]:
    """Color ``graph`` with DSatur; returns color (0-based) per node.

    At each step the uncolored node with the highest *saturation degree*
    (count of distinct neighbor colors) is chosen, ties broken by plain
    degree, then by index for determinism.  It is assigned the smallest
    color unused among its neighbors.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    colors: list[int] = [-1] * n
    neighbor_colors: list[set[int]] = [set() for _ in range(n)]
    # Max-heap keyed by (saturation, degree, -index); heapq is a min-heap so
    # keys are negated.  Stale entries are skipped on pop (lazy deletion).
    heap: list[tuple[int, int, int]] = [
        (0, -graph.degree(v), v) for v in range(n)
    ]
    heapq.heapify(heap)
    colored = 0
    while colored < n:
        while True:
            sat_neg, deg_neg, node = heapq.heappop(heap)
            if colors[node] != -1:
                continue
            if -sat_neg != len(neighbor_colors[node]):
                continue  # stale saturation; a fresh entry exists
            break
        used = neighbor_colors[node]
        color = 0
        while color in used:
            color += 1
        colors[node] = color
        colored += 1
        for neigh in graph.neighbors(node):
            if colors[neigh] == -1 and color not in neighbor_colors[neigh]:
                neighbor_colors[neigh].add(color)
                heapq.heappush(
                    heap,
                    (-len(neighbor_colors[neigh]), -graph.degree(neigh), neigh),
                )
    return colors


def greedy_sequential_coloring(graph: ConflictGraph) -> list[int]:
    """First-fit coloring in index order (the DSatur ablation baseline)."""
    colors = [-1] * graph.num_nodes
    for node in range(graph.num_nodes):
        used = {colors[neigh] for neigh in graph.neighbors(node) if colors[neigh] != -1}
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return colors


def validate_coloring(graph: ConflictGraph, colors: list[int]) -> None:
    """Raise :class:`ColoringError` unless ``colors`` is a proper coloring."""
    if len(colors) != graph.num_nodes:
        raise ColoringError(
            f"{len(colors)} colors for {graph.num_nodes} nodes"
        )
    for node, color in enumerate(colors):
        if color < 0:
            raise ColoringError(f"node {node} is uncolored")
        for neigh in graph.neighbors(node):
            if colors[neigh] == color:
                raise ColoringError(
                    f"adjacent nodes {node} and {neigh} share color {color}"
                )


def color_classes(colors: list[int]) -> list[list[int]]:
    """Group node indices by color, ordered by color id."""
    if not colors:
        return []
    classes: list[list[int]] = [[] for _ in range(max(colors) + 1)]
    for node, color in enumerate(colors):
        classes[color].append(node)
    return classes
