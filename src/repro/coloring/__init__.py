"""Clause conflict graphs and DSatur greedy coloring (paper Algorithm 1)."""

from .conflict_graph import ConflictGraph, clause_conflict_graph
from .dsatur import dsatur_coloring, greedy_sequential_coloring, validate_coloring

__all__ = [
    "ConflictGraph",
    "clause_conflict_graph",
    "dsatur_coloring",
    "greedy_sequential_coloring",
    "validate_coloring",
]
