"""Clause conflict graph: nodes are clauses, edges mean shared variables.

This is the graph built by Algorithm 1 of the paper: two clauses conflict
when they mention a common variable, in which case their cost-Hamiltonian
fragments touch a common qubit and cannot execute in the same Rydberg
stage.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..exceptions import ColoringError
from ..sat.cnf import Clause, CnfFormula


class ConflictGraph:
    """Simple undirected graph over ``n`` integer nodes (adjacency sets)."""

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise ColoringError("node count must be non-negative")
        self.num_nodes = num_nodes
        self.adjacency: list[set[int]] = [set() for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ColoringError(f"self-loop on node {u}")
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ColoringError(f"edge ({u}, {v}) out of range")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adjacency[u]

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def neighbors(self, node: int) -> set[int]:
        return self.adjacency[node]

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.adjacency) // 2

    def edges(self) -> list[tuple[int, int]]:
        out = []
        for u in range(self.num_nodes):
            for v in self.adjacency[u]:
                if u < v:
                    out.append((u, v))
        return out

    def max_degree(self) -> int:
        return max((len(adj) for adj in self.adjacency), default=0)


def clause_conflict_graph(clauses: Sequence[Clause] | CnfFormula) -> ConflictGraph:
    """Build the clause conflict graph of Algorithm 1.

    Edge ``(i, j)`` exists iff clause ``i`` and clause ``j`` share at least
    one variable.  Construction is O(total literals) via a variable ->
    clauses index rather than the quadratic pairwise loop of the pseudocode.
    """
    clause_list = list(clauses.clauses) if isinstance(clauses, CnfFormula) else list(clauses)
    graph = ConflictGraph(len(clause_list))
    by_variable: dict[int, list[int]] = {}
    for idx, clause in enumerate(clause_list):
        for var in clause.variables:
            by_variable.setdefault(var, []).append(idx)
    for users in by_variable.values():
        for i, u in enumerate(users):
            for v in users[i + 1 :]:
                graph.add_edge(u, v)
    return graph
