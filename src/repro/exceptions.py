"""Exception hierarchy for the Weaver reproduction.

Every package raises a subclass of :class:`WeaverError` so that callers can
catch framework errors without also swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class WeaverError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(WeaverError):
    """Invalid circuit construction or manipulation (bad qubit index, ...)."""


class SimulationError(WeaverError):
    """Unitary/statevector simulation cannot proceed (too many qubits, ...)."""


class QasmSyntaxError(WeaverError):
    """OpenQASM / wQasm source text failed to lex or parse."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class QasmSemanticError(WeaverError):
    """OpenQASM / wQasm source parsed but violates semantic rules."""


class AnnotationError(WeaverError):
    """A wQasm FPQA annotation violates its pre-condition (Table 1)."""


class FPQAConstraintError(WeaverError):
    """An FPQA device operation violates a hardware constraint.

    Examples: AOD rows crossing during a shuttle, traps closer than the
    minimum spacing, transferring onto an occupied trap.
    """


class SatError(WeaverError):
    """Malformed CNF formula or DIMACS input."""


class ColoringError(WeaverError):
    """Graph coloring produced or received invalid data."""


class CompilationError(WeaverError):
    """A compiler pipeline could not produce a valid program."""


class CompilationTimeout(CompilationError):
    """A compiler exceeded its time budget (Geyser/DPQA on large inputs)."""

    def __init__(self, compiler: str, budget_seconds: float):
        super().__init__(
            f"{compiler} exceeded its compilation budget of {budget_seconds:.3g}s"
        )
        self.compiler = compiler
        self.budget_seconds = budget_seconds


class RoutingError(CompilationError):
    """Qubit mapping/routing failed (disconnected coupling map, ...)."""


class EquivalenceError(WeaverError):
    """wChecker determined two programs are not functionally equivalent."""


class VerificationError(WeaverError):
    """wChecker could not complete verification (unsupported instruction...)."""


class AnalysisError(WeaverError):
    """The static analyzer (wLint) was misused (bad options, no artifact)."""


class TargetError(WeaverError):
    """A compilation target was misused (wrong workload kind, bad options)."""


class UnknownTargetError(TargetError, KeyError):
    """A target name was not found in the registry.

    Also a :class:`KeyError`, matching the registry-lookup contract the
    evaluation harness has always exposed.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        hint = f"; available: {', '.join(available)}" if available else ""
        super().__init__(f"unknown target {name!r}{hint}")
        self.name = name
        self.available = available


class WorkloadError(WeaverError):
    """A workload could not be constructed or is unusable for a target."""


class DeviceError(WeaverError):
    """A device profile was misused (wrong kind for a target, bad options)."""


class DeviceSpecError(DeviceError):
    """A device spec is malformed or physically inconsistent.

    Examples: Rydberg radius below the trap spacing, negative durations,
    fidelities outside ``[0, 1]``, a disconnected coupling map.
    """


class UnknownDeviceError(DeviceError, KeyError):
    """A device name was not found in the registry.

    Also a :class:`KeyError`, mirroring :class:`UnknownTargetError`.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        hint = f"; available: {', '.join(available)}" if available else ""
        super().__init__(f"unknown device {name!r}{hint}")
        self.name = name
        self.available = available
