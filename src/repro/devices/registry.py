"""String-keyed device registry, mirroring the target registry.

Adding a machine is one call::

    from repro.devices import DeviceProfile, register_device

    register_device(DeviceProfile(name="lab-64", kind="fpqa",
                                  params={"fidelity_cz": 0.993}))

after which ``repro.compile(workload, target="fpqa", device="lab-64")``,
the ``--device`` CLI flag, and ``CompilerSession.compile_many(...,
devices=[...])`` all reach it.  Built-in profiles are loaded lazily from
the packaged spec files the first time the registry is consulted.
"""

from __future__ import annotations

from ..exceptions import DeviceError, UnknownDeviceError
from .loader import builtin_spec_files, load_spec_document, profile_from_spec
from .profile import DeviceProfile

_REGISTRY: dict[str, DeviceProfile] = {}
_ALIASES: dict[str, str] = {}
_BUILTINS_LOADED = False


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for path in builtin_spec_files():
        document = load_spec_document(path)
        profile = profile_from_spec(document, source=str(path))
        register_device(
            profile, aliases=tuple(document.get("aliases", ())), replace=True
        )


def register_device(
    profile: DeviceProfile,
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register ``profile`` under its name (plus optional aliases)."""
    _load_builtins()
    if not isinstance(profile, DeviceProfile):
        raise DeviceError(
            f"register_device expects a DeviceProfile, got {type(profile).__name__}"
        )
    if not replace:
        # A name shadowed by an existing alias would register fine but be
        # unreachable (aliases win during lookup) — reject both directions.
        for name in (profile.name, *aliases):
            if name in _REGISTRY or name in _ALIASES:
                raise DeviceError(f"device {name!r} is already registered")
    _REGISTRY[profile.name] = profile
    for alias in aliases:
        _ALIASES[alias] = profile.name


def resolve_device(device: str | DeviceProfile) -> DeviceProfile:
    """The profile behind a name/alias (instances pass through)."""
    if isinstance(device, DeviceProfile):
        return device
    _load_builtins()
    canonical = _ALIASES.get(device, device)
    if canonical not in _REGISTRY:
        raise UnknownDeviceError(device, available=tuple(list_devices()))
    return _REGISTRY[canonical]


def get_device(name: str | DeviceProfile) -> DeviceProfile:
    """Alias of :func:`resolve_device` (the target-registry idiom)."""
    return resolve_device(name)


def list_devices(kind: str | None = None) -> list[str]:
    """Sorted canonical device names, optionally filtered by kind."""
    _load_builtins()
    return sorted(
        name
        for name, profile in _REGISTRY.items()
        if kind is None or profile.kind == kind
    )


def device_info(name: str | None = None) -> list[dict]:
    """Describe one device, or all of them (the ``repro devices`` view)."""
    names = [resolve_device(name).name] if name else list_devices()
    out = []
    for key in names:
        profile = _REGISTRY[key]
        out.append(
            {
                "name": profile.name,
                "kind": profile.kind,
                "description": profile.description,
                "vendor": profile.vendor,
                "generation": profile.generation,
                "max_qubits": profile.max_qubits,
            }
        )
    return out
