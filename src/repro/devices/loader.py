"""Load :class:`DeviceProfile` objects from declarative spec files.

Specs are plain JSON or TOML documents (the OpenQL platform-configuration
pattern): top-level identity keys plus a ``params`` table of hardware
numbers.  The built-in profiles live in ``devices/specs/`` and are loaded
lazily the first time the registry is consulted.

Minimal JSON spec::

    {
      "name": "my-fpqa",
      "kind": "fpqa",
      "description": "lab prototype",
      "max_qubits": 64,
      "params": {"rydberg_radius_um": 7.0, "fidelity_cz": 0.993}
    }
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

from ..exceptions import DeviceSpecError
from .profile import DeviceProfile

SPECS_DIR = Path(__file__).resolve().parent / "specs"

_TOP_LEVEL_KEYS = {
    "name",
    "kind",
    "description",
    "vendor",
    "generation",
    "max_qubits",
    "params",
    "aliases",
}


def profile_from_spec(spec: dict, source: str = "user") -> DeviceProfile:
    """Build (and validate) a profile from a parsed spec document."""
    if not isinstance(spec, dict):
        raise DeviceSpecError(f"device spec must be an object, got {type(spec).__name__}")
    unknown = set(spec) - _TOP_LEVEL_KEYS
    if unknown:
        raise DeviceSpecError(
            f"device spec {spec.get('name', '<unnamed>')!r}: unknown "
            f"key(s): {', '.join(sorted(unknown))}"
        )
    fields = {key: spec[key] for key in _TOP_LEVEL_KEYS - {"aliases"} if key in spec}
    return DeviceProfile(source=source, **fields)


def load_spec_document(path: str | Path) -> dict:
    """Parse one ``.json``/``.toml`` spec file into its raw document."""
    path = Path(path)
    try:
        if path.suffix == ".toml":
            return tomllib.loads(path.read_text(encoding="utf-8"))
        if path.suffix == ".json":
            return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, tomllib.TOMLDecodeError) as exc:
        raise DeviceSpecError(f"device spec {path.name}: {exc}") from exc
    raise DeviceSpecError(
        f"device spec {path.name}: expected a .json or .toml file"
    )


def load_spec_file(path: str | Path) -> DeviceProfile:
    """Parse one ``.json``/``.toml`` spec file into a validated profile."""
    return profile_from_spec(load_spec_document(path), source=str(Path(path)))


def builtin_spec_files() -> list[Path]:
    """Every packaged spec file, sorted for deterministic registration."""
    return sorted(
        [*SPECS_DIR.glob("*.json"), *SPECS_DIR.glob("*.toml")],
        key=lambda p: p.name,
    )
