"""Declarative device profiles: one validated hardware description each.

A :class:`DeviceProfile` is the unit of retargeting below the target
level (paper §7 keeps the compiler hardware-agnostic behind "a class with
adjustable hardware parameters"): the same ``fpqa`` pipeline compiles for
any FPQA generation, and the ``superconducting`` pipeline for any
coupling map + calibration, by naming a profile.  Profiles are plain data
(JSON/TOML specs under ``devices/specs/``), validated on construction,
and carry a precomputed noise-aware cost model.
"""

from __future__ import annotations

import dataclasses
import functools

from ..exceptions import DeviceSpecError, WeaverError
from ..fpqa.hardware import FPQAHardwareParams
from .cost import FPQACostModel, cost_model_for

KIND_FPQA = "fpqa"
KIND_SUPERCONDUCTING = "superconducting"
KINDS = (KIND_FPQA, KIND_SUPERCONDUCTING)

_FPQA_FIELDS = {f.name for f in dataclasses.fields(FPQAHardwareParams)}

#: Superconducting spec keys besides the coupling map description.
_SC_FIELDS = {
    "duration_1q_us",
    "duration_2q_us",
    "duration_readout_us",
    "error_1q",
    "error_2q",
    "error_readout",
    "t1_us",
    "t2_us",
    "calibration_seed",
}

_COUPLING_KINDS = ("heavy-hex", "grid", "line", "edges")


def _positive(params: dict, names: tuple[str, ...], what: str) -> None:
    for name in names:
        value = params.get(name)
        if value is not None and not value > 0:
            raise DeviceSpecError(f"{what}: {name} must be positive, got {value}")


def _non_negative(params: dict, names: tuple[str, ...], what: str) -> None:
    for name in names:
        value = params.get(name)
        if value is not None and value < 0:
            raise DeviceSpecError(f"{what}: {name} must be >= 0, got {value}")


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """One concrete quantum device the framework can compile for.

    ``params`` holds the spec's hardware numbers, normalized to the full
    resolved parameter set at construction so that equality and the JSON
    round trip are stable.  Validation happens eagerly: a profile that
    constructs is guaranteed to yield working hardware/backend objects
    and a physically consistent geometry.
    """

    name: str
    kind: str
    description: str = ""
    vendor: str = ""
    generation: str = ""
    #: Qubit/atom capacity; ``None`` means unbounded at this model scale.
    max_qubits: int | None = None
    params: dict = dataclasses.field(default_factory=dict)
    #: Where the profile came from ("builtin", a spec path, or "user").
    source: str = "user"

    def __post_init__(self) -> None:
        if not self.name:
            raise DeviceSpecError("device profile needs a non-empty name")
        if self.kind not in KINDS:
            raise DeviceSpecError(
                f"device {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(KINDS)})"
            )
        if self.max_qubits is not None and self.max_qubits <= 0:
            raise DeviceSpecError(
                f"device {self.name!r}: max_qubits must be positive"
            )
        if self.kind == KIND_FPQA:
            object.__setattr__(self, "params", self._validate_fpqa())
        else:
            object.__setattr__(self, "params", self._validate_superconducting())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_fpqa(self) -> dict:
        what = f"device {self.name!r}"
        unknown = set(self.params) - _FPQA_FIELDS
        if unknown:
            raise DeviceSpecError(
                f"{what}: unknown FPQA parameter(s): {', '.join(sorted(unknown))}"
            )
        _positive(
            self.params,
            (
                "min_trap_spacing_um",
                "rydberg_radius_um",
                "safe_spacing_um",
                "transfer_max_distance_um",
                "aod_speed_um_per_us",
                "aod_acceleration_um_per_us2",
                "aod_empty_speed_um_per_us",
                "t1_us",
                "t2_us",
            ),
            what,
        )
        _non_negative(
            self.params,
            (
                "raman_local_duration_us",
                "raman_global_duration_us",
                "rydberg_pulse_duration_us",
                "transfer_duration_us",
                "shuttle_settle_us",
                "measurement_duration_us",
                "equidistance_tolerance_um",
            ),
            what,
        )
        try:
            hardware = FPQAHardwareParams(**self.params)
        except WeaverError as exc:
            raise DeviceSpecError(f"{what}: {exc}") from exc
        except TypeError as exc:
            raise DeviceSpecError(f"{what}: {exc}") from exc
        # Cross-field physics the parameter class itself does not enforce.
        if hardware.safe_spacing_um < hardware.rydberg_radius_um:
            raise DeviceSpecError(
                f"{what}: safe spacing {hardware.safe_spacing_um} um is inside "
                f"the Rydberg radius {hardware.rydberg_radius_um} um — 'safe' "
                "atoms would still interact"
            )
        if hardware.aod_empty_speed_um_per_us < hardware.aod_speed_um_per_us:
            raise DeviceSpecError(
                f"{what}: empty-trap moves cannot be slower than loaded moves "
                f"({hardware.aod_empty_speed_um_per_us} < "
                f"{hardware.aod_speed_um_per_us} um/us)"
            )
        # A profile must admit a zone layout, or the fpqa target can never
        # place a single clause; surface that at load time, not compile time.
        try:
            from ..fpqa.geometry import zone_layout

            zone_layout(hardware)
        except WeaverError as exc:
            raise DeviceSpecError(f"{what}: no valid zone geometry: {exc}") from exc
        return dataclasses.asdict(hardware)

    def _validate_superconducting(self) -> dict:
        what = f"device {self.name!r}"
        params = dict(self.params)
        coupling_spec = params.pop("coupling", {"kind": "heavy-hex"})
        unknown = set(params) - _SC_FIELDS
        if unknown:
            raise DeviceSpecError(
                f"{what}: unknown superconducting parameter(s): "
                f"{', '.join(sorted(unknown))}"
            )
        if not isinstance(coupling_spec, dict) or "kind" not in coupling_spec:
            raise DeviceSpecError(
                f"{what}: coupling must be an object with a 'kind' key"
            )
        if coupling_spec["kind"] not in _COUPLING_KINDS:
            raise DeviceSpecError(
                f"{what}: unknown coupling kind {coupling_spec['kind']!r} "
                f"(expected one of {', '.join(_COUPLING_KINDS)})"
            )
        _positive(params, ("t1_us", "t2_us"), what)
        _non_negative(
            params,
            ("duration_1q_us", "duration_2q_us", "duration_readout_us"),
            what,
        )
        for name in ("error_1q", "error_2q", "error_readout"):
            value = params.get(name)
            if value is not None and not 0.0 <= value < 1.0:
                raise DeviceSpecError(
                    f"{what}: {name} must be in [0, 1), got {value}"
                )
        seed = params.get("calibration_seed")
        if seed is not None and not isinstance(seed, int):
            raise DeviceSpecError(f"{what}: calibration_seed must be an integer")
        resolved = dict(params)
        resolved["coupling"] = dict(coupling_spec)
        # Building the backend validates the coupling map (and, with a
        # calibration seed, the generated edge errors) end to end.
        coupling = _build_coupling(self.name, resolved["coupling"])
        if not coupling.is_connected():
            raise DeviceSpecError(f"{what}: coupling map is not connected")
        backend = self._build_backend(coupling, resolved)
        if self.max_qubits is not None and self.max_qubits != backend.num_qubits:
            raise DeviceSpecError(
                f"{what}: max_qubits {self.max_qubits} does not match the "
                f"{backend.num_qubits}-qubit coupling map"
            )
        object.__setattr__(self, "max_qubits", backend.num_qubits)
        return resolved

    # ------------------------------------------------------------------
    # Resolved hardware objects
    # ------------------------------------------------------------------
    @functools.cached_property
    def hardware(self) -> FPQAHardwareParams:
        """The FPQA parameter set (``kind == "fpqa"`` only)."""
        self._require_kind(KIND_FPQA)
        return FPQAHardwareParams(**self.params)

    @functools.cached_property
    def backend(self):
        """The superconducting backend model (``kind`` must match)."""
        self._require_kind(KIND_SUPERCONDUCTING)
        coupling = _build_coupling(self.name, self.params["coupling"])
        return self._build_backend(coupling, self.params)

    def _build_backend(self, coupling, params: dict):
        from ..superconducting.backend import SuperconductingBackend

        kwargs = {
            key: params[key]
            for key in _SC_FIELDS - {"calibration_seed"}
            if key in params
        }
        backend = SuperconductingBackend(
            name=self.name, coupling=coupling, **kwargs
        )
        seed = params.get("calibration_seed")
        if seed is not None:
            backend = backend.with_overrides(
                edge_errors=_calibration_scatter(backend, seed)
            )
        return backend

    @property
    def cost_model(self) -> FPQACostModel:
        """The precomputed FPQA cost model (shared per hardware config)."""
        return cost_model_for(self.hardware)

    def _require_kind(self, kind: str) -> None:
        if self.kind != kind:
            raise DeviceSpecError(
                f"device {self.name!r} is a {self.kind} profile, not {kind}"
            )

    # ------------------------------------------------------------------
    # JSON round trip (result provenance)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot; :meth:`from_dict` reconstructs it exactly."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "vendor": self.vendor,
            "generation": self.generation,
            "max_qubits": self.max_qubits,
            "params": dict(self.params),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeviceProfile":
        try:
            return cls(**payload)
        except TypeError as exc:
            raise DeviceSpecError(f"malformed device payload: {exc}") from exc

    def __eq__(self, other) -> bool:
        if not isinstance(other, DeviceProfile):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # params is a dict; hash the identity fields
        return hash((self.name, self.kind))


def _build_coupling(device_name: str, spec: dict):
    from ..superconducting.coupling import (
        CouplingMap,
        grid_coupling,
        heavy_hex_coupling,
        line_coupling,
    )

    kind = spec["kind"]
    extra = set(spec) - {"kind", "long_rows", "row_length", "rows", "cols",
                         "num_qubits", "edges"}
    if extra:
        raise DeviceSpecError(
            f"device {device_name!r}: unknown coupling key(s): "
            f"{', '.join(sorted(extra))}"
        )
    try:
        if kind == "heavy-hex":
            return heavy_hex_coupling(
                long_rows=spec.get("long_rows", 7),
                row_length=spec.get("row_length", 15),
            )
        if kind == "grid":
            return grid_coupling(spec["rows"], spec["cols"])
        if kind == "line":
            return line_coupling(spec["num_qubits"])
        return CouplingMap(
            spec["num_qubits"], [tuple(edge) for edge in spec["edges"]]
        )
    except KeyError as exc:
        raise DeviceSpecError(
            f"device {device_name!r}: coupling kind {kind!r} needs key {exc}"
        ) from exc


def _calibration_scatter(backend, seed: int) -> dict:
    """Deterministic log-normal per-coupler error scatter (real-device-like)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    errors = {}
    for a, b in backend.coupling.edges:
        scatter = float(rng.lognormal(mean=0.0, sigma=0.6))
        errors[(min(a, b), max(a, b))] = min(backend.error_2q * scatter, 0.5)
    return errors
