"""``repro.devices``: declarative device profiles behind the targets.

The retargeting story has two axes: *how* to compile (a target) and
*what machine* to compile for (a device profile).  This package supplies
the second axis::

    import repro

    repro.list_devices()                       # built-in machines
    repro.compile(w, target="fpqa", device="aquila-256")

    profile = repro.get_device("rubidium-baseline")
    profile.cost_model.program_eps(program)    # precomputed tables

See :mod:`repro.devices.profile` for the schema and validation rules,
:mod:`repro.devices.loader` for the JSON/TOML spec format, and
``devices/specs/`` for the built-in machines.
"""

from .cost import FPQACostModel, cost_model_for
from .loader import load_spec_file, profile_from_spec
from .profile import DeviceProfile
from .registry import (
    device_info,
    get_device,
    list_devices,
    register_device,
    resolve_device,
)

__all__ = [
    "DeviceProfile",
    "FPQACostModel",
    "cost_model_for",
    "device_info",
    "get_device",
    "list_devices",
    "load_spec_file",
    "profile_from_spec",
    "register_device",
    "resolve_device",
]
