"""Noise-aware cost models precomputed once per device.

The seed metrics walked every program instruction calling
``math.log(hardware.fidelity_*)`` and rebuilding derived geometry for
every compilation, so a sweep over N programs on one device paid the
same per-device work N times.  :class:`FPQACostModel` hoists everything
that depends only on the hardware — log-fidelity terms, per-instruction
durations, the cluster-fidelity table, the zone geometry — into one
object built once per device profile; :func:`cost_model_for` memoizes it
per hardware configuration, so :mod:`repro.metrics` and every target get
the fast path transparently.
"""

from __future__ import annotations

import functools
import math

from ..exceptions import FPQAConstraintError
from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    AodInit,
    BindAtom,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    SlmInit,
    Transfer,
)
from ..wqasm.program import WQasmProgram

#: Cluster sizes whose log-fidelity is table-driven; larger clusters fall
#: back to the multiplicative-degradation formula (they never occur in
#: compiled programs, which cap at CCZ).
_CLUSTER_TABLE_SIZE = 8


class FPQACostModel:
    """Per-device timing and error tables for FPQA program evaluation.

    Construction resolves every hardware-derived constant once; the
    ``program_duration_us``/``program_eps`` walks then touch only plain
    float attributes and isinstance checks.
    """

    def __init__(self, hardware: FPQAHardwareParams):
        self.hardware = hardware
        # Durations ----------------------------------------------------
        self.raman_local_us = hardware.raman_local_duration_us
        self.raman_global_us = hardware.raman_global_duration_us
        self.rydberg_us = hardware.rydberg_pulse_duration_us
        self.transfer_us = hardware.transfer_duration_us
        self.measurement_us = hardware.measurement_duration_us
        self.settle_us = hardware.shuttle_settle_us
        # Loaded moves: t = 2 sqrt(d/a) + settle; precompute 2/sqrt(a).
        self._loaded_scale = 2.0 / math.sqrt(hardware.aod_acceleration_um_per_us2)
        self._empty_inv_speed = 1.0 / hardware.aod_empty_speed_um_per_us
        # Error terms --------------------------------------------------
        self.log_raman_local = math.log(hardware.fidelity_raman_local)
        self.log_raman_global = math.log(hardware.fidelity_raman_global)
        self.log_transfer = math.log(hardware.fidelity_transfer)
        self.log_measurement = math.log(hardware.fidelity_measurement)
        self._cluster_log = tuple(
            math.log(hardware.cluster_fidelity(size)) if size >= 2 else 0.0
            for size in range(_CLUSTER_TABLE_SIZE + 1)
        )
        self._inv_t2 = 1.0 / hardware.t2_us

    # ------------------------------------------------------------------
    @functools.cached_property
    def geometry(self):
        """The device's derived zone-placement constants (cached)."""
        from ..fpqa.geometry import zone_layout

        return zone_layout(self.hardware)

    def cluster_log_fidelity(self, size: int) -> float:
        if size <= _CLUSTER_TABLE_SIZE:
            return self._cluster_log[size]
        return math.log(self.hardware.cluster_fidelity(size))

    def shuttle_us(self, distance_um: float, loaded: bool = True) -> float:
        if loaded:
            return self._loaded_scale * math.sqrt(abs(distance_um)) + self.settle_us
        return abs(distance_um) * self._empty_inv_speed + self.settle_us

    # ------------------------------------------------------------------
    # Program evaluation (the semantics of repro.metrics, table-driven)
    # ------------------------------------------------------------------
    def program_duration_us(self, program: WQasmProgram) -> float:
        """Total wall-clock duration in microseconds (paper §8.3).

        Strictly sequential sum over instructions; consecutive transfers
        batch into one window, a parallel shuttle costs its longest move,
        and measured programs end with one readout.
        """
        total = 0.0
        previous_was_transfer = False
        for instruction in program.fpqa_instructions():
            if isinstance(instruction, Transfer):
                if not previous_was_transfer:
                    total += self.transfer_us
                previous_was_transfer = True
                continue
            previous_was_transfer = False
            if isinstance(instruction, RamanLocal):
                total += self.raman_local_us
            elif isinstance(instruction, RamanGlobal):
                total += self.raman_global_us
            elif isinstance(instruction, RydbergPulse):
                total += self.rydberg_us
            elif isinstance(instruction, Shuttle):
                move = instruction.move
                total += self.shuttle_us(move.offset, loaded=move.loaded)
            elif isinstance(instruction, ParallelShuttle):
                if instruction.moves:
                    total += max(
                        self.shuttle_us(move.offset, loaded=move.loaded)
                        for move in instruction.moves
                    )
            elif isinstance(instruction, (SlmInit, AodInit, BindAtom)):
                pass  # setup happens before the circuit clock starts
            else:
                raise FPQAConstraintError(f"unknown instruction {instruction!r}")
        if program.measured:
            total += self.measurement_us
        return total

    def program_eps(
        self, program: WQasmProgram, duration_us: float | None = None
    ) -> float:
        """Estimated probability of one fully-correct execution (§8.4).

        Per-pulse error accumulation: one term per Raman pulse (global
        pulses count once), one per Rydberg pulse rated by the largest
        cluster it drove, one per batch of consecutive transfers, plus
        idle decoherence over the program duration and a readout term for
        measured programs.
        """
        log_eps = 0.0
        previous_was_transfer = False
        for operation in program.operations:
            for instruction in operation.instructions:
                is_transfer = isinstance(instruction, Transfer)
                if is_transfer and not previous_was_transfer:
                    log_eps += self.log_transfer
                previous_was_transfer = is_transfer
                if isinstance(instruction, RamanLocal):
                    log_eps += self.log_raman_local
                elif isinstance(instruction, RamanGlobal):
                    log_eps += self.log_raman_global
                elif isinstance(instruction, RydbergPulse):
                    largest = max(
                        (len(gate.qubits) for gate in operation.gates), default=0
                    )
                    if largest >= 2:
                        log_eps += self.cluster_log_fidelity(largest)
        if duration_us is None:
            duration_us = self.program_duration_us(program)
        log_eps += -duration_us * program.num_qubits * self._inv_t2
        if program.measured:
            log_eps += program.num_qubits * self.log_measurement
        return math.exp(log_eps)


@functools.lru_cache(maxsize=64)
def cost_model_for(hardware: FPQAHardwareParams) -> FPQACostModel:
    """The shared :class:`FPQACostModel` of a hardware configuration.

    :class:`FPQAHardwareParams` is frozen and hashable, so equal
    configurations — every compilation against the same device profile —
    share one precomputed model.
    """
    return FPQACostModel(hardware)
