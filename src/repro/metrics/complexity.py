"""Compilation-complexity step counts (paper Table 2 and Figure 10a).

``N`` is the number of benchmark variables and ``K`` the number of quantum
circuit operations (generally ``K >> N``).  The constants scale each curve
so the relative picture matches Table 2; Figure 10(a) plots these exact
functions, as the artifact appendix confirms the original does ("fixed
lines and values pre-calculated").
"""

from __future__ import annotations

import math

#: compiler name -> asymptotic complexity (Table 2).
COMPLEXITY_TABLE = {
    "qiskit": "O(N^3)",
    "atomique": "O(N^3)",
    "geyser": "O(K^2)",
    "dpqa": "O(2^K)",
    "weaver": "O(N^2)",
}


def qiskit_steps(num_vars: int) -> float:
    """SABRE-dominated transpilation: cubic in qubits [51]."""
    return float(num_vars) ** 3


def atomique_steps(num_vars: int) -> float:
    """Atomique also inherits SABRE's cubic mapping stage [103]."""
    return float(num_vars) ** 3


def geyser_steps(num_ops: int) -> float:
    """Geyser's block composition is quadratic in circuit operations [68]."""
    return float(num_ops) ** 2


def dpqa_log10_steps(num_ops: int) -> float:
    """DPQA's SMT scheduling is exponential in operations [94].

    Returned in log10 (the raw value overflows floats long before 250
    variables; the paper's Figure 10(a) annotates 10^45 and 10^60 marks).
    """
    return num_ops * math.log10(2.0)


def dpqa_steps(num_ops: int) -> float:
    """Raw DPQA step count; ``inf`` once it exceeds float range."""
    log10 = dpqa_log10_steps(num_ops)
    if log10 > 300:
        return math.inf
    return 10.0**log10


def weaver_steps(num_vars: int) -> float:
    """Weaver is bounded by DSatur's quadratic coloring (§5.5)."""
    return float(num_vars) ** 2
