"""Execution-time model for FPQA programs (paper §8.3).

"We measure how long the quantum circuit runs on a quantum device by
adding the times of each pulse and shuttling operation, considering the
maximum movement speed."  wQasm annotations are strictly sequential
(§4.2), so the program duration is the sum of instruction durations — with
two physically-motivated exceptions: a :class:`ParallelShuttle` costs its
longest member move, and a global Raman pulse costs one pulse regardless
of atom count.  A final readout is added for measured programs.
"""

from __future__ import annotations

from ..devices.cost import cost_model_for
from ..fpqa.hardware import FPQAHardwareParams
from ..wqasm.program import WQasmProgram


def program_duration_us(
    program: WQasmProgram, hardware: FPQAHardwareParams | None = None
) -> float:
    """Total wall-clock duration of ``program`` in microseconds.

    Consecutive atom transfers are batched into one transfer window: a
    trap handoff is performed by ramping trap depths, which moves every
    aligned atom simultaneously.

    Delegates to the per-device :class:`~repro.devices.FPQACostModel`, so
    repeated evaluations against one device reuse its precomputed tables.
    """
    return cost_model_for(hardware or FPQAHardwareParams()).program_duration_us(
        program
    )


def program_duration_seconds(
    program: WQasmProgram, hardware: FPQAHardwareParams | None = None
) -> float:
    """Total duration in seconds (the unit of Figure 11)."""
    return program_duration_us(program, hardware) * 1e-6
