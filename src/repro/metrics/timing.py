"""Execution-time model for FPQA programs (paper §8.3).

"We measure how long the quantum circuit runs on a quantum device by
adding the times of each pulse and shuttling operation, considering the
maximum movement speed."  wQasm annotations are strictly sequential
(§4.2), so the program duration is the sum of instruction durations — with
two physically-motivated exceptions: a :class:`ParallelShuttle` costs its
longest member move, and a global Raman pulse costs one pulse regardless
of atom count.  A final readout is added for measured programs.
"""

from __future__ import annotations

from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import Transfer, instruction_duration_us
from ..wqasm.program import WQasmProgram


def program_duration_us(
    program: WQasmProgram, hardware: FPQAHardwareParams | None = None
) -> float:
    """Total wall-clock duration of ``program`` in microseconds.

    Consecutive atom transfers are batched into one transfer window: a
    trap handoff is performed by ramping trap depths, which moves every
    aligned atom simultaneously.
    """
    hardware = hardware or FPQAHardwareParams()
    total = 0.0
    previous_was_transfer = False
    for instruction in program.fpqa_instructions():
        if isinstance(instruction, Transfer):
            if not previous_was_transfer:
                total += hardware.transfer_duration_us
            previous_was_transfer = True
            continue
        previous_was_transfer = False
        total += instruction_duration_us(instruction, hardware)
    if program.measured:
        total += hardware.measurement_duration_us
    return total


def program_duration_seconds(
    program: WQasmProgram, hardware: FPQAHardwareParams | None = None
) -> float:
    """Total duration in seconds (the unit of Figure 11)."""
    return program_duration_us(program, hardware) * 1e-6
