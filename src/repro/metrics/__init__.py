"""Evaluation metrics: execution time, EPS fidelity, pulse counts,
compilation-complexity step counts (paper §8 and Table 2)."""

from .timing import program_duration_us
from .fidelity import program_eps
from .complexity import (
    COMPLEXITY_TABLE,
    atomique_steps,
    dpqa_log10_steps,
    geyser_steps,
    qiskit_steps,
    weaver_steps,
)

__all__ = [
    "COMPLEXITY_TABLE",
    "atomique_steps",
    "dpqa_log10_steps",
    "geyser_steps",
    "program_duration_us",
    "program_eps",
    "qiskit_steps",
    "weaver_steps",
]
