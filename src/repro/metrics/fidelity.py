"""EPS (Estimated Probability of Success) model for FPQA programs (§8.4).

"EPS measures the likelihood that a circuit runs correctly in one
execution, calculated by accumulating the errors of **each pulse
operation**."  The error unit is the *pulse*, not the gate instance: one
global Rydberg pulse entangles every in-range cluster simultaneously and
contributes a single error term (rated by the highest gate order it
drives), which is precisely how FPQA parallelism converts into fidelity —
the effect Weaver's clause coloring exploits and Figure 12(b) shows
compounding with circuit size.  Raman pulses count individually when
locally addressed and once when global; a batch of simultaneous trap
transfers is one handoff event; idle decoherence ``exp(-T/T2)`` applies
per atom over the program duration.
"""

from __future__ import annotations

import math

from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    Transfer,
)
from ..wqasm.program import WQasmProgram
from .timing import program_duration_us


def program_eps(
    program: WQasmProgram,
    hardware: FPQAHardwareParams | None = None,
    duration_us: float | None = None,
) -> float:
    """Estimated probability of one fully-correct execution.

    Rydberg pulse fidelity depends on the largest cluster it drove (CZ vs
    CCZ), which the program records alongside each pulse; those records
    are exactly what the wChecker validates, so they are trustworthy here.
    """
    hardware = hardware or FPQAHardwareParams()
    log_eps = 0.0
    previous_was_transfer = False
    for operation in program.operations:
        for instruction in operation.instructions:
            is_transfer = isinstance(instruction, Transfer)
            if is_transfer and not previous_was_transfer:
                log_eps += math.log(hardware.fidelity_transfer)
            previous_was_transfer = is_transfer
            if isinstance(instruction, RamanLocal):
                log_eps += math.log(hardware.fidelity_raman_local)
            elif isinstance(instruction, RamanGlobal):
                log_eps += math.log(hardware.fidelity_raman_global)
            elif isinstance(instruction, RydbergPulse):
                largest = max(
                    (len(gate.qubits) for gate in operation.gates), default=0
                )
                if largest >= 2:
                    log_eps += math.log(hardware.cluster_fidelity(largest))
            elif isinstance(instruction, (Shuttle, ParallelShuttle)):
                pass  # movement noise enters through idle decoherence below
    if duration_us is None:
        duration_us = program_duration_us(program, hardware)
    log_eps += -duration_us * program.num_qubits / hardware.t2_us
    if program.measured:
        log_eps += program.num_qubits * math.log(hardware.fidelity_measurement)
    return math.exp(log_eps)
