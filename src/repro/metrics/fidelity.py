"""EPS (Estimated Probability of Success) model for FPQA programs (§8.4).

"EPS measures the likelihood that a circuit runs correctly in one
execution, calculated by accumulating the errors of **each pulse
operation**."  The error unit is the *pulse*, not the gate instance: one
global Rydberg pulse entangles every in-range cluster simultaneously and
contributes a single error term (rated by the highest gate order it
drives), which is precisely how FPQA parallelism converts into fidelity —
the effect Weaver's clause coloring exploits and Figure 12(b) shows
compounding with circuit size.  Raman pulses count individually when
locally addressed and once when global; a batch of simultaneous trap
transfers is one handoff event; idle decoherence ``exp(-T/T2)`` applies
per atom over the program duration.
"""

from __future__ import annotations

from ..devices.cost import cost_model_for
from ..fpqa.hardware import FPQAHardwareParams
from ..wqasm.program import WQasmProgram


def program_eps(
    program: WQasmProgram,
    hardware: FPQAHardwareParams | None = None,
    duration_us: float | None = None,
) -> float:
    """Estimated probability of one fully-correct execution.

    Rydberg pulse fidelity depends on the largest cluster it drove (CZ vs
    CCZ), which the program records alongside each pulse; those records
    are exactly what the wChecker validates, so they are trustworthy here.

    Delegates to the per-device :class:`~repro.devices.FPQACostModel`:
    the log-fidelity of every pulse class is computed once per hardware
    configuration, not once per instruction per call.
    """
    return cost_model_for(hardware or FPQAHardwareParams()).program_eps(
        program, duration_us=duration_us
    )
