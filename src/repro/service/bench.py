"""Service resilience benchmark runner -> ``BENCH_service.json``.

Drives a :class:`~repro.service.CompilationService` with a mixed
compile+sim job stream under three scenarios and appends one run record
to the trajectory file:

* ``baseline`` — no journal, no chaos: the raw service throughput;
* ``journal`` — durable :class:`~repro.service.JobJournal` WAL on every
  job; the committed ``journal_overhead_ratio`` backs the <1.10
  acceptance bar (also pinned live by
  ``benchmarks/test_service_resilience_overhead.py``);
* ``chaos`` — journal plus a seeded 5% ``worker_crash``
  :class:`~repro.service.ChaosPolicy`, showing what supervised retries
  cost end to end.

Every job compiles a *distinct* random 3-SAT instance (no artifact-cache
hits), and every fourth job also executes on the simulator, so the
stream exercises both job kinds.  Per-job latency is submit-to-done
wall time including queue wait; the record keeps p50/p99.

Usage::

    python -m repro.service.bench
    python -m repro.service.bench --jobs 60 --repeats 3 --label "PR 8"

File format (``schema`` 1): same run-record envelope as
``BENCH_compile.json``, with cells of the form::

    {"scenario": "journal", "jobs": 40, "seed": 7,
     "wall_seconds": ..., "jobs_per_second": ...,
     "p50_seconds": ..., "p99_seconds": ...,
     "retries": 0, "dead_letters": 0, "faults_injected": 0}

and a top-level ``journal_overhead_ratio`` comparing the ``journal``
and ``baseline`` wall times.
"""

from __future__ import annotations

import argparse
import asyncio
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from ..perf.bench import write_bench_file
from .artifacts import ArtifactStore
from .resilience import ChaosPolicy, JobJournal, RetryPolicy
from .service import CompilationService

DEFAULT_JOBS = 40
DEFAULT_OUTPUT = "BENCH_service.json"

#: Per-instance size of the benchmark stream: small enough that the
#: queueing/journal machinery (not the compiler) dominates what each
#: scenario compares, large enough that a compile is real work.
NUM_VARS = 10
NUM_CLAUSES = 42


def _workloads(jobs: int, seed: int):
    from ..sat.generator import random_ksat

    out = []
    for i in range(jobs):
        formula = random_ksat(
            NUM_VARS, NUM_CLAUSES, seed=seed * 1000 + i, name=f"bench-{i}"
        )
        simulate = {"shots": 16, "seed": i} if i % 4 == 0 else None
        out.append((formula, simulate))
    return out


async def _run_stream(
    service: CompilationService, submissions, allow_dead: bool = False
) -> list[float]:
    """Submit the stream, await everything, return per-job latencies."""
    async def one(i, workload, simulate):
        start = time.perf_counter()
        job = await service.submit(
            workload, simulate=simulate, client=f"bench{i % 3}"
        )
        result = await job.future
        if result.error is not None:
            # Under chaos, a poison job (repeated injected crashes) is
            # quarantined as a dead letter — a correct outcome, still a
            # timed unit of service work.
            if not (allow_dead and result.error.startswith("DeadLetter:")):
                raise RuntimeError(f"bench job failed: {result.error}")
        return time.perf_counter() - start

    async with service:
        return list(
            await asyncio.gather(
                *(one(i, w, sim) for i, (w, sim) in enumerate(submissions))
            )
        )


def _percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _scenario_service(scenario: str, workdir: Path, seed: int):
    """Build (service, journal) for one scenario; journal may be None."""
    journal = None
    chaos = None
    retry = RetryPolicy(base_delay=0.0, seed=seed)
    if scenario in ("journal", "chaos"):
        journal = JobJournal(workdir / f"{scenario}-journal.jsonl")
    if scenario == "chaos":
        chaos = ChaosPolicy(worker_crash=0.05, seed=seed)
    service = CompilationService(
        shards=2,
        backend="inline",
        store=ArtifactStore(),  # memory-only: no disk noise in the timing
        journal=journal,
        retry=retry,
        chaos=chaos,
    )
    return service, service.chaos, journal


def run_service_bench(
    jobs: int = DEFAULT_JOBS,
    seed: int = 7,
    repeats: int = 2,
    verbose: bool = False,
) -> dict:
    """Time the three scenarios and return one run record."""
    cells = []
    walls: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        workdir = Path(tmp)
        for scenario in ("baseline", "journal", "chaos"):
            best_wall = float("inf")
            best: dict | None = None
            for attempt in range(max(1, repeats)):
                submissions = _workloads(jobs, seed)
                (workdir / str(attempt)).mkdir(exist_ok=True)
                service, chaos, journal = _scenario_service(
                    scenario, workdir / str(attempt), seed
                )
                start = time.perf_counter()
                latencies = asyncio.run(
                    _run_stream(
                        service, submissions, allow_dead=scenario == "chaos"
                    )
                )
                wall = time.perf_counter() - start
                if journal is not None:
                    journal.close()
                if wall < best_wall:
                    best_wall = wall
                    resilience = service.stats()["resilience"]
                    best = {
                        "scenario": scenario,
                        "jobs": jobs,
                        "seed": seed,
                        "repeats": repeats,
                        "wall_seconds": wall,
                        "jobs_per_second": jobs / wall,
                        "p50_seconds": _percentile(latencies, 0.50),
                        "p99_seconds": _percentile(latencies, 0.99),
                        "retries": resilience["retries"],
                        "dead_letters": resilience["dead_letters"],
                        "faults_injected": (
                            chaos.total_injected if chaos is not None else 0
                        ),
                    }
            walls[scenario] = best_wall
            assert best is not None
            cells.append(best)
            if verbose:
                print(
                    f"[service-bench] {scenario}: {best_wall:.3f}s "
                    f"({best['jobs_per_second']:.1f} jobs/s, "
                    f"p50 {best['p50_seconds'] * 1e3:.1f}ms, "
                    f"p99 {best['p99_seconds'] * 1e3:.1f}ms, "
                    f"{best['retries']} retried)",
                    file=sys.stderr,
                )
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
        },
        "journal_overhead_ratio": walls["journal"] / walls["baseline"],
        "cells": cells,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.bench", description=__doc__
    )
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--label", default=None, help="tag for this run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    run = run_service_bench(
        jobs=args.jobs, seed=args.seed, repeats=args.repeats, verbose=True
    )
    if args.label:
        run["label"] = args.label
    path = write_bench_file(run, args.output)
    print(
        f"[service-bench] journal overhead x{run['journal_overhead_ratio']:.3f}; "
        f"wrote {len(run['cells'])} cells to {path}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
