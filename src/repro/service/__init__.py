"""``repro.service``: the async compilation service.

Quilc and OpenQL ship their compilers as long-lived services rather than
one-shot library calls; this package is Weaver's equivalent.  It turns
the batched :class:`~repro.CompilerSession` machinery into a
multi-tenant server with four pieces:

* :class:`CompileJob` + :class:`FairQueue` — a priority job queue with
  round-robin per-client fairness and per-job timeouts;
* a **sharded worker pool** — jobs route to a worker by their
  ``(target, device)`` shard key, so per-worker cost-model and cluster
  caches stay warm for the traffic that reuses them;
* :class:`ArtifactStore` — a content-addressed result cache
  (workload-hash -> serialized :class:`~repro.CompilationResult`) with
  LRU eviction and hit-rate counters threaded into a
  :class:`repro.perf.Profiler`;
* front doors — the in-process async API
  (``await service.submit(...)``) and a JSON-lines socket protocol
  behind ``weaver serve`` / ``weaver submit``;
* a **fault-tolerance layer** (:mod:`repro.service.resilience`) — a
  durable :class:`JobJournal` write-ahead log with
  :meth:`CompilationService.recover` crash replay, a :class:`RetryPolicy`
  supervising crashed/hung workers (backoff, poison-job dead letters),
  :class:`ServiceOverloaded` load shedding past a queue high-water mark,
  and a seeded :class:`ChaosPolicy` fault-injection harness that makes
  all of the above testable deterministically.

Quickstart::

    import asyncio, repro
    from repro.service import CompilationService

    async def main():
        async with CompilationService(shards=2) as service:
            jobs = [
                await service.submit(w, target=t)
                for w in workloads for t in ("fpqa", "superconducting")
            ]
            return await service.gather(jobs)

    results = asyncio.run(main())
"""

from .artifacts import ArtifactStore, artifact_key
from .jobs import CompileJob, FairQueue, JobStatus
from .protocol import (
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    payload_to_workload,
    workload_to_payload,
)
from .resilience import (
    ChaosPolicy,
    JobJournal,
    JournalRecord,
    RetryPolicy,
    ServiceOverloaded,
    WorkerCrashed,
    replay_journal,
)
from .client import (
    ConnectionLost,
    RemoteResult,
    ServiceClient,
    ServiceTimeout,
    ServiceUnavailable,
    submit_once,
)
from .server import ServiceServer, serve
from .service import CompilationService, shard_key

__all__ = [
    "ArtifactStore",
    "ChaosPolicy",
    "CompilationService",
    "CompileJob",
    "ConnectionLost",
    "FairQueue",
    "JobJournal",
    "JobStatus",
    "JournalRecord",
    "PROTOCOL_VERSION",
    "RemoteResult",
    "RetryPolicy",
    "ServiceClient",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceTimeout",
    "ServiceUnavailable",
    "WorkerCrashed",
    "artifact_key",
    "decode_line",
    "encode_line",
    "payload_to_workload",
    "replay_journal",
    "serve",
    "shard_key",
    "submit_once",
    "workload_to_payload",
]
