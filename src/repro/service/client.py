"""Async client for the JSON-lines service socket (``weaver submit``).

:class:`ServiceClient` multiplexes many in-flight requests over one
connection: a background reader task dispatches every incoming line to
the queue of the request that owns it (by ``req`` id), so concurrent
``submit`` calls interleave safely.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import TargetError, WeaverError
from ..targets.result import CompilationResult
from ..targets.workload import Workload, coerce_workload
from ..telemetry.trace import current_context
from .protocol import ProtocolError, decode_line, encode_line, workload_to_payload
from .server import MAX_LINE_BYTES


class ServiceUnavailable(WeaverError):
    """The service socket is absent, refused, or went away mid-request."""


@dataclass
class RemoteResult:
    """One finished remote submission.

    ``raw`` is the exact ``result`` JSON object the server sent — the
    byte-level provenance the differential tests compare — and
    ``result`` is its reconstructed :class:`~repro.CompilationResult`.
    """

    result: CompilationResult
    raw: dict
    job_id: str
    from_cache: bool
    events: list[str] = field(default_factory=list)
    #: Trace id echoed by the server's ``done`` event (``None`` when
    #: nothing traced the job).
    trace: str | None = None


class ServiceClient:
    """One connection to a running ``weaver serve`` socket."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._req_ids = itertools.count(1)
        self._inboxes: dict[str, asyncio.Queue] = {}
        self._reader_task = asyncio.create_task(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(cls, socket_path: str | Path) -> "ServiceClient":
        try:
            reader, writer = await asyncio.open_unix_connection(
                path=str(socket_path), limit=MAX_LINE_BYTES
            )
        except (OSError, ValueError) as exc:
            raise ServiceUnavailable(
                f"cannot connect to service socket {socket_path}: {exc} "
                "(is `weaver serve` running?)"
            ) from exc
        return cls(reader, writer)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = decode_line(line)
                except ProtocolError:
                    continue  # junk line: nothing to route it to
                inbox = self._inboxes.get(payload.get("req"))
                if inbox is not None:
                    inbox.put_nowait(payload)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for inbox in self._inboxes.values():
                inbox.put_nowait(None)  # connection gone

    async def _request(self, message: dict) -> tuple[str, asyncio.Queue]:
        req = f"r{next(self._req_ids)}"
        message = {**message, "req": req}
        inbox: asyncio.Queue = asyncio.Queue()
        self._inboxes[req] = inbox
        self._writer.write(encode_line(message))
        try:
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError) as exc:
            self._inboxes.pop(req, None)
            raise ServiceUnavailable(f"service connection lost: {exc}") from exc
        return req, inbox

    async def _next_event(self, inbox: asyncio.Queue, timeout: float | None):
        payload = await asyncio.wait_for(inbox.get(), timeout)
        if payload is None:
            raise ServiceUnavailable("service connection closed mid-request")
        if payload.get("event") == "error":
            kind = payload.get("kind", "internal")
            error = payload.get("error", "unknown error")
            if kind == "user":
                raise TargetError(error)
            raise WeaverError(f"service internal error: {error}")
        return payload

    # ------------------------------------------------------------------
    async def ping(self, timeout: float | None = 10.0) -> dict:
        req, inbox = await self._request({"op": "ping"})
        try:
            return await self._next_event(inbox, timeout)
        finally:
            self._inboxes.pop(req, None)

    async def stats(self, timeout: float | None = 10.0) -> dict:
        req, inbox = await self._request({"op": "stats"})
        try:
            return (await self._next_event(inbox, timeout))["stats"]
        finally:
            self._inboxes.pop(req, None)

    async def jobs(self, timeout: float | None = 10.0) -> list[dict]:
        req, inbox = await self._request({"op": "jobs"})
        try:
            return (await self._next_event(inbox, timeout))["jobs"]
        finally:
            self._inboxes.pop(req, None)

    async def shutdown(self, timeout: float | None = 10.0) -> None:
        req, inbox = await self._request({"op": "shutdown"})
        try:
            await self._next_event(inbox, timeout)
        finally:
            self._inboxes.pop(req, None)

    async def submit(
        self,
        workload,
        target: str = "fpqa",
        device: str | None = None,
        client: str = "client",
        priority: int = 0,
        timeout: float | None = None,
        simulate=None,
        analyze=None,
        wait_timeout: float | None = None,
        on_event=None,
        **options,
    ) -> RemoteResult:
        """Submit one workload and await its streamed lifecycle.

        ``timeout`` is the *compile budget* the server applies;
        ``wait_timeout`` bounds how long this client waits for each
        protocol event.  ``simulate`` (``True`` or an options dict)
        requests a ``sim`` job: the server also executes the compiled
        artifact and the returned result carries ``execution``.
        ``analyze`` (``True`` or an options dict) requests a ``lint``
        job: the server statically verifies the artifact and the result
        carries ``analysis``.  ``on_event(event_name, payload)``
        observes the queued/started stream.
        """
        resolved: Workload = coerce_workload(workload)
        message = {
            "op": "submit",
            "workload": workload_to_payload(resolved),
            "target": target,
            "device": device,
            "options": options,
            "client": client,
            "priority": priority,
            "timeout": timeout,
        }
        if simulate:
            message["simulate"] = simulate
        if analyze:
            message["analyze"] = True if analyze is True else analyze
        # With client-side tracing on, ship the ambient span's context
        # so the server parents the job's spans on this call site.
        ctx = current_context()
        if ctx is not None:
            message["trace"] = ctx
        req, inbox = await self._request(message)
        events: list[str] = []
        try:
            while True:
                payload = await self._next_event(inbox, wait_timeout)
                event = payload.get("event")
                events.append(event)
                if on_event is not None:
                    on_event(event, payload)
                if event == "done":
                    raw = payload["result"]
                    return RemoteResult(
                        result=CompilationResult.from_dict(raw),
                        raw=raw,
                        job_id=payload.get("job", ""),
                        from_cache=bool(payload.get("from_cache")),
                        events=events,
                        trace=payload.get("trace"),
                    )
        finally:
            self._inboxes.pop(req, None)


async def submit_once(
    socket_path: str | Path, workload, **submit_kwargs
) -> RemoteResult:
    """Connect, submit one workload, disconnect (the ``weaver submit`` path)."""
    client = await ServiceClient.connect(socket_path)
    try:
        return await client.submit(workload, **submit_kwargs)
    finally:
        await client.close()
