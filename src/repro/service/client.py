"""Async client for the JSON-lines service socket (``weaver submit``).

:class:`ServiceClient` multiplexes many in-flight requests over one
connection: a background reader task dispatches every incoming line to
the queue of the request that owns it (by ``req`` id), so concurrent
``submit`` calls interleave safely.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import TargetError, WeaverError
from ..targets.result import CompilationResult
from ..targets.workload import Workload, coerce_workload
from ..telemetry.trace import current_context
from .protocol import ProtocolError, decode_line, encode_line, workload_to_payload
from .resilience import ServiceOverloaded
from .server import MAX_LINE_BYTES


class ServiceUnavailable(WeaverError):
    """The service socket is absent, refused, or went away mid-request."""


class ConnectionLost(ServiceUnavailable):
    """The connection dropped *after* a request went out.

    Distinct from a refused connect: the request may have reached the
    server (a chaos ``socket_drop`` kills the reply, not the work), so
    the safe reaction is an idempotent resubmission — the artifact key
    turns a completed first attempt into a cache hit.
    """


class ServiceTimeout(WeaverError):
    """``wait_timeout`` expired before the server sent the next event.

    The job may still be running server-side; resubmitting later is
    idempotent (same artifact key).  The client connection stays usable.
    """


@dataclass
class RemoteResult:
    """One finished remote submission.

    ``raw`` is the exact ``result`` JSON object the server sent — the
    byte-level provenance the differential tests compare — and
    ``result`` is its reconstructed :class:`~repro.CompilationResult`.
    """

    result: CompilationResult
    raw: dict
    job_id: str
    from_cache: bool
    events: list[str] = field(default_factory=list)
    #: Trace id echoed by the server's ``done`` event (``None`` when
    #: nothing traced the job).
    trace: str | None = None


class ServiceClient:
    """One connection to a running ``weaver serve`` socket."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._req_ids = itertools.count(1)
        self._inboxes: dict[str, asyncio.Queue] = {}
        self._reader_task = asyncio.create_task(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(cls, socket_path: str | Path) -> "ServiceClient":
        try:
            reader, writer = await asyncio.open_unix_connection(
                path=str(socket_path), limit=MAX_LINE_BYTES
            )
        except (OSError, ValueError) as exc:
            raise ServiceUnavailable(
                f"server not running at {socket_path}: {exc} "
                "(start it with `weaver serve`)"
            ) from exc
        return cls(reader, writer)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = decode_line(line)
                except ProtocolError:
                    continue  # junk line: nothing to route it to
                inbox = self._inboxes.get(payload.get("req"))
                if inbox is not None:
                    inbox.put_nowait(payload)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for inbox in self._inboxes.values():
                inbox.put_nowait(None)  # connection gone

    async def _request(self, message: dict) -> tuple[str, asyncio.Queue]:
        req = f"r{next(self._req_ids)}"
        message = {**message, "req": req}
        inbox: asyncio.Queue = asyncio.Queue()
        self._inboxes[req] = inbox
        self._writer.write(encode_line(message))
        try:
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError) as exc:
            self._inboxes.pop(req, None)
            raise ServiceUnavailable(f"service connection lost: {exc}") from exc
        return req, inbox

    async def _next_event(self, inbox: asyncio.Queue, timeout: float | None):
        try:
            payload = await asyncio.wait_for(inbox.get(), timeout)
        except asyncio.TimeoutError:
            raise ServiceTimeout(
                f"no event from server within {timeout:.3g}s"
            ) from None
        if payload is None:
            raise ConnectionLost("service connection closed mid-request")
        event = payload.get("event")
        if event == "shed":
            raise ServiceOverloaded(
                float(payload.get("retry_after") or 1.0),
                depth=payload.get("depth"),
            )
        if event == "error":
            kind = payload.get("kind", "internal")
            error = payload.get("error", "unknown error")
            if kind == "user":
                raise TargetError(error)
            raise WeaverError(f"service internal error: {error}")
        return payload

    # ------------------------------------------------------------------
    async def ping(self, timeout: float | None = 10.0) -> dict:
        req, inbox = await self._request({"op": "ping"})
        try:
            return await self._next_event(inbox, timeout)
        finally:
            self._inboxes.pop(req, None)

    async def stats(self, timeout: float | None = 10.0) -> dict:
        req, inbox = await self._request({"op": "stats"})
        try:
            return (await self._next_event(inbox, timeout))["stats"]
        finally:
            self._inboxes.pop(req, None)

    async def jobs(
        self, timeout: float | None = 10.0, dead: bool = False
    ) -> list[dict]:
        """The server's job registry — or, with ``dead``, its
        dead-letter records of quarantined poison jobs."""
        message: dict = {"op": "jobs"}
        if dead:
            message["dead"] = True
        req, inbox = await self._request(message)
        try:
            return (await self._next_event(inbox, timeout))["jobs"]
        finally:
            self._inboxes.pop(req, None)

    async def shutdown(self, timeout: float | None = 10.0) -> None:
        req, inbox = await self._request({"op": "shutdown"})
        try:
            await self._next_event(inbox, timeout)
        finally:
            self._inboxes.pop(req, None)

    async def submit(
        self,
        workload,
        target: str = "fpqa",
        device: str | None = None,
        client: str = "client",
        priority: int = 0,
        timeout: float | None = None,
        simulate=None,
        analyze=None,
        wait_timeout: float | None = None,
        on_event=None,
        retries: int = 2,
        **options,
    ) -> RemoteResult:
        """Submit one workload and await its streamed lifecycle.

        ``timeout`` is the *compile budget* the server applies;
        ``wait_timeout`` bounds how long this client waits for each
        protocol event — on expiry the pending request is deregistered
        (no orphaned inbox) and :class:`ServiceTimeout` is raised, with
        the connection still usable for further calls.  ``simulate``
        (``True`` or an options dict) requests a ``sim`` job: the server
        also executes the compiled artifact and the returned result
        carries ``execution``.  ``analyze`` (``True`` or an options
        dict) requests a ``lint`` job: the server statically verifies
        the artifact and the result carries ``analysis``.
        ``on_event(event_name, payload)`` observes the
        queued/started/retrying stream.

        When the server sheds the submission
        (:class:`~repro.service.ServiceOverloaded`), the client backs
        off for the server's ``retry_after`` hint and resubmits, up to
        ``retries`` extra attempts — safe because submissions are
        idempotent under the artifact key.
        """
        resolved: Workload = coerce_workload(workload)
        message = {
            "op": "submit",
            "workload": workload_to_payload(resolved),
            "target": target,
            "device": device,
            "options": options,
            "client": client,
            "priority": priority,
            "timeout": timeout,
        }
        if simulate:
            message["simulate"] = simulate
        if analyze:
            message["analyze"] = True if analyze is True else analyze
        # With client-side tracing on, ship the ambient span's context
        # so the server parents the job's spans on this call site.
        ctx = current_context()
        if ctx is not None:
            message["trace"] = ctx
        attempt = 0
        while True:
            try:
                return await self._submit_attempt(message, wait_timeout, on_event)
            except ServiceOverloaded as exc:
                attempt += 1
                if attempt > retries:
                    raise
                await asyncio.sleep(min(exc.retry_after, 5.0))

    async def _submit_attempt(
        self, message: dict, wait_timeout: float | None, on_event
    ) -> RemoteResult:
        req, inbox = await self._request(message)
        events: list[str] = []
        try:
            while True:
                payload = await self._next_event(inbox, wait_timeout)
                event = payload.get("event")
                events.append(event)
                if on_event is not None:
                    on_event(event, payload)
                if event == "done":
                    raw = payload["result"]
                    return RemoteResult(
                        result=CompilationResult.from_dict(raw),
                        raw=raw,
                        job_id=payload.get("job", ""),
                        from_cache=bool(payload.get("from_cache")),
                        events=events,
                        trace=payload.get("trace"),
                    )
        finally:
            # Deregister whether we finished, timed out, or were shed:
            # a long-lived client must not accumulate orphaned inboxes.
            self._inboxes.pop(req, None)


async def submit_once(
    socket_path: str | Path, workload, retries: int = 2, **submit_kwargs
) -> RemoteResult:
    """Connect, submit one workload, disconnect (the ``weaver submit`` path).

    A connection that drops mid-request (:class:`ConnectionLost` — e.g.
    a chaos ``socket_drop``) is retried with a fresh connection and
    brief backoff, up to ``retries`` extra attempts; if the first
    attempt actually completed server-side, the resubmission is a cache
    hit, so the retry never runs the compilation twice.
    """
    attempt = 0
    while True:
        client = await ServiceClient.connect(socket_path)
        try:
            return await client.submit(workload, retries=retries, **submit_kwargs)
        except ConnectionLost:
            attempt += 1
            if attempt > retries:
                raise
            await asyncio.sleep(0.05 * (2 ** (attempt - 1)))
        finally:
            await client.close()
