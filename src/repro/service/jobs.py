"""Jobs and the fair priority queue the service schedules from.

A :class:`CompileJob` is one client request: a workload, a target/device
cell, options, and bookkeeping (status, timestamps, the asyncio future
the submitter awaits).  :class:`FairQueue` orders pending jobs by
priority and, within a priority level, round-robins across clients — a
tenant that dumps a thousand jobs cannot starve a tenant that submits
one (the per-client fairness a multi-tenant compile farm needs).
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

from ..targets.result import CompilationResult
from ..targets.workload import Workload


class JobStatus(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    #: Quarantined after repeatedly killing its worker (poison job);
    #: the dead-letter record is surfaced by ``weaver jobs --dead``.
    DEAD = "dead"


_job_ids = itertools.count(1)


@dataclass(eq=False)
class CompileJob:
    """One submitted compilation, awaitable for its result.

    ``await job`` (or ``await service.result(job)``) yields the
    :class:`~repro.CompilationResult`; service-side failures become
    result rows with ``error`` set, never exceptions, so a client loop
    survives any mix of good and bad submissions.
    """

    workload: Workload
    target: str
    device: object = None
    options: dict = field(default_factory=dict)
    #: Canonical simulate options for ``sim`` jobs (``None`` = compile
    #: only); part of the job's content address.
    simulate: dict | None = None
    #: Canonical analyze options for ``lint`` jobs (``None`` = no static
    #: analysis; an empty dict means "lint with defaults"); part of the
    #: job's content address.
    analyze: dict | None = None
    client: str = "default"
    priority: int = 0
    timeout: float | None = None
    #: Content address of the compilation (see :func:`artifact_key`).
    key: str = ""
    #: Worker shard this job routes to (see :func:`shard_key`).
    shard: int = 0
    job_id: str = field(default_factory=lambda: f"job-{next(_job_ids)}")
    status: JobStatus = JobStatus.QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: ``True`` when the result came from the artifact store or an
    #: in-flight duplicate rather than a fresh compile.
    from_cache: bool = False
    #: Execution attempts so far (first run included); incremented by
    #: the shard worker each time the job starts.
    attempts: int = 0
    #: How many of those attempts crashed the worker (poison tracking).
    crashes: int = 0
    #: This job's id in the durable journal (``None`` when the service
    #: runs without one).  Stable across restarts: a recovered job keeps
    #: the id its original submission logged.
    journal_id: str | None = None
    #: Client-supplied trace context (``{"trace": ..., "span": ...}``)
    #: carried over the protocol; the service parents this job's spans
    #: on it so one trace spans client, server, and worker process.
    trace: dict | None = None
    on_progress: Callable[["CompileJob", str], None] | None = None
    future: asyncio.Future = field(default_factory=asyncio.Future, repr=False)
    #: The open ``service.job.<kind>`` span while server-side tracing is
    #: enabled (``None`` otherwise); finished by the service.
    span: object = field(default=None, repr=False)

    @property
    def trace_id(self) -> str | None:
        """The trace this job belongs to (server span or client context)."""
        if self.span is not None:
            return self.span.trace_id
        if self.trace:
            return self.trace.get("trace")
        return None

    def __await__(self):
        return self.future.__await__()

    @property
    def kind(self) -> str:
        """``"sim"`` for compile+execute jobs, ``"lint"`` for
        compile+static-analysis jobs, ``"compile"`` otherwise.  A job
        that both simulates and lints counts as ``"sim"`` (the simulator
        dominates its cost)."""
        if self.simulate:
            return "sim"
        if self.analyze is not None:
            return "lint"
        return "compile"

    @property
    def result(self) -> CompilationResult | None:
        """The result, when finished (``None`` while queued/running)."""
        if self.future.done() and not self.future.cancelled():
            return self.future.result()
        return None

    @property
    def queue_seconds(self) -> float | None:
        """Time spent waiting for a worker (``None`` until started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def _emit(self, event: str) -> None:
        """Run the progress callback; callback errors never kill the job."""
        if self.on_progress is not None:
            try:
                self.on_progress(self, event)
            except Exception:  # noqa: BLE001 — observer must not break the service
                pass

    def describe(self) -> dict:
        """JSON view of the job's bookkeeping (the ``jobs`` protocol op)."""
        return {
            "job": self.job_id,
            "kind": self.kind,
            "client": self.client,
            "workload": self.workload.name,
            "target": self.target,
            "device": self.device
            if isinstance(self.device, str) or self.device is None
            else getattr(self.device, "name", repr(self.device)),
            "priority": self.priority,
            "status": self.status.value,
            "shard": self.shard,
            "from_cache": self.from_cache,
            "attempts": self.attempts,
            "queue_seconds": self.queue_seconds,
            "trace": self.trace_id,
            "journal": self.journal_id,
        }


class FairQueue:
    """Priority queue with round-robin fairness across clients.

    ``get`` returns the oldest job of the *next* client (in round-robin
    order) within the lowest-numbered priority level that has pending
    jobs.  Pure asyncio — single-loop use only, like the service itself.
    """

    def __init__(self) -> None:
        #: priority -> client -> FIFO of jobs.  ``OrderedDict`` keeps the
        #: round-robin cursor stable: clients rotate to the end when served.
        self._levels: dict[int, OrderedDict[str, deque[CompileJob]]] = {}
        self._pending = 0
        self._waiters: deque[asyncio.Future] = deque()

    def __len__(self) -> int:
        return self._pending

    def put_nowait(self, job: CompileJob) -> None:
        level = self._levels.setdefault(job.priority, OrderedDict())
        queue = level.get(job.client)
        if queue is None:
            queue = level[job.client] = deque()
        queue.append(job)
        self._pending += 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break

    def _pop_nowait(self) -> CompileJob:
        priority = min(self._levels)
        level = self._levels[priority]
        client, queue = next(iter(level.items()))
        job = queue.popleft()
        # Rotate: the served client goes to the back of its level (or
        # out, when drained), so siblings get the next slot.
        del level[client]
        if queue:
            level[client] = queue
        if not level:
            del self._levels[priority]
        self._pending -= 1
        return job

    async def get(self) -> CompileJob:
        while self._pending == 0:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if waiter.done() and self._pending:
                    # We consumed a wake-up while being cancelled; pass
                    # it on so another worker doesn't sleep forever.
                    while self._waiters:
                        other = self._waiters.popleft()
                        if not other.done():
                            other.set_result(None)
                            break
                raise
        return self._pop_nowait()

    def drain(self) -> list[CompileJob]:
        """Remove and return every pending job (service shutdown)."""
        jobs: list[CompileJob] = []
        while self._pending:
            jobs.append(self._pop_nowait())
        return jobs
