"""Fault tolerance for the compilation service: journal, retries, chaos.

Four pieces, each independently usable, all threaded through
:class:`~repro.service.CompilationService`:

* :class:`JobJournal` — an append-only JSON-lines write-ahead log of job
  lifecycle transitions (``submit``/``start``/``fail``/``done``/``dead``)
  with batched ``fsync``.  The ``submit`` record carries the job's full
  wire payload (workload content, target, device, options), so a
  restarted service can replay it verbatim: ``kill -9`` loses zero
  accepted jobs.
* :class:`RetryPolicy` — exponential backoff with seeded jitter for
  *transient* worker failures (a crashed or hung executor).
  Deterministic compile errors are result rows, never retried; a job
  that crashes its worker ``poison_crashes`` times is quarantined as a
  dead letter instead of wedging the shard forever.
* :class:`ChaosPolicy` — seeded fault injection (worker crash, worker
  stall, socket drop, disk-write failure) so the recovery invariants are
  *provable* in tests: same seed, same faults, same summary.
* :class:`ServiceOverloaded` — the structured load-shedding rejection.
  Past the service's high-water mark, ``submit`` refuses new work with a
  ``retry_after`` hint instead of queueing without bound; clients back
  off and resubmit (idempotent: the artifact key makes a resubmission a
  cache hit if the first attempt actually ran).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import WeaverError
from ..rng import as_generator


class ServiceOverloaded(WeaverError):
    """The service shed this submission; retry after ``retry_after`` s."""

    def __init__(self, retry_after: float, depth: int | None = None):
        detail = f" ({depth} job(s) queued)" if depth is not None else ""
        super().__init__(
            f"service overloaded{detail}; retry after {retry_after:.3g}s"
        )
        self.retry_after = retry_after
        self.depth = depth


class WorkerCrashed(WeaverError):
    """A shard worker died mid-job (real ``BrokenExecutor`` or chaos)."""


# ----------------------------------------------------------------------
# Durable job journal
# ----------------------------------------------------------------------
#: Journal line schema version; bump when the record layout changes.
JOURNAL_SCHEMA_VERSION = 1

#: Events that end a job's journal lifecycle.  ``fail`` is *not*
#: terminal — it records a transient attempt that will be retried.
TERMINAL_EVENTS = ("done", "dead")


@dataclass
class JournalRecord:
    """One job's aggregated journal state after :func:`replay_journal`."""

    journal_id: str
    #: Last lifecycle event seen: submit/start/fail/done/dead.
    status: str = "submit"
    #: The wire workload payload (see :func:`protocol.workload_to_payload`).
    workload: dict | None = None
    target: str = "fpqa"
    device: str | None = None
    client: str = "default"
    priority: int = 0
    timeout: float | None = None
    options: dict = field(default_factory=dict)
    simulate: dict | None = None
    analyze: dict | None = None
    kind: str = "compile"
    attempts: int = 0
    error: str | None = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_EVENTS

    def submit_line(self) -> dict:
        """The ``submit`` record that re-creates this job (compaction)."""
        return {
            "e": "submit",
            "id": self.journal_id,
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "target": self.target,
            "device": self.device,
            "client": self.client,
            "priority": self.priority,
            "timeout": self.timeout,
            "options": self.options,
            "simulate": self.simulate,
            "analyze": self.analyze,
        }


def replay_journal(path: str | Path) -> list[JournalRecord]:
    """Aggregate a journal file into per-job records, submission order.

    Torn tails are expected after a crash (the last line may be half
    written); unparseable lines are skipped, never fatal — a journal
    must always be replayable.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: dict[str, JournalRecord] = {}
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue  # torn write at the crash point
            if not isinstance(row, dict):
                continue
            event = row.get("e")
            journal_id = row.get("id")
            if not isinstance(journal_id, str) or not isinstance(event, str):
                continue
            if event == "submit":
                records[journal_id] = JournalRecord(
                    journal_id=journal_id,
                    workload=row.get("workload"),
                    target=row.get("target") or "fpqa",
                    device=row.get("device"),
                    client=row.get("client") or "default",
                    priority=int(row.get("priority") or 0),
                    timeout=row.get("timeout"),
                    options=row.get("options") or {},
                    simulate=row.get("simulate"),
                    analyze=row.get("analyze"),
                    kind=row.get("kind") or "compile",
                )
                continue
            record = records.get(journal_id)
            if record is None:
                continue  # event for a compacted-away job
            if event in ("start", "fail"):
                record.status = event
                record.attempts = int(row.get("attempt") or record.attempts)
                if row.get("error"):
                    record.error = row["error"]
            elif event in TERMINAL_EVENTS:
                record.status = event
                record.error = row.get("error")
    return list(records.values())


class JobJournal:
    """Append-only JSON-lines WAL of job lifecycle transitions.

    Parameters
    ----------
    path:
        The journal file; created (with parents) when absent.  Lives
        beside the :class:`~repro.service.ArtifactStore` disk tier, so
        journal + artifacts together survive a ``kill -9``.
    fsync_batch:
        Records are flushed on every append but ``fsync``-ed once per
        ``fsync_batch`` appends (and on :meth:`sync`/:meth:`close`).
        ``1`` syncs every record — maximum durability, the setting the
        crash tests use; the default amortizes the sync over a batch,
        keeping journal overhead under the 1.10x throughput budget.
    """

    def __init__(self, path: str | Path, fsync_batch: int = 8):
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be at least 1")
        self.path = Path(path)
        self.fsync_batch = fsync_batch
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.records_written = 0
        self.syncs = 0
        self.write_errors = 0
        self._unsynced = 0
        self._sequence = self._initial_sequence()
        self._handle = self.path.open("a", encoding="utf-8")

    def _initial_sequence(self) -> int:
        """Continue ids past everything already in the file."""
        highest = 0
        for record in replay_journal(self.path):
            jid = record.journal_id
            if jid.startswith("J") and jid[1:].isdigit():
                highest = max(highest, int(jid[1:]))
        return highest

    # ------------------------------------------------------------------
    def next_id(self) -> str:
        self._sequence += 1
        return f"J{self._sequence}"

    def append(self, row: dict) -> None:
        """Write one record (durability degrades, the service survives:
        a full disk must not take the whole server down with it)."""
        try:
            self._handle.write(json.dumps(row, separators=(",", ":")) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            self.write_errors += 1
            return
        self.records_written += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_batch:
            self.sync()

    def sync(self) -> None:
        """Force the batched ``fsync`` now."""
        if self._unsynced == 0:
            return
        try:
            os.fsync(self._handle.fileno())
            self.syncs += 1
        except (OSError, ValueError):
            self.write_errors += 1
        self._unsynced = 0

    def close(self) -> None:
        try:
            self.sync()
            self._handle.close()
        except (OSError, ValueError):
            self.write_errors += 1

    # -- lifecycle records ---------------------------------------------
    def record_submitted(self, job, workload_payload: dict) -> None:
        """The acceptance record: everything needed to replay the job."""
        self.append(
            {
                "e": "submit",
                "id": job.journal_id,
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": job.kind,
                "workload": workload_payload,
                "target": job.target,
                "device": job.device
                if isinstance(job.device, str) or job.device is None
                else getattr(job.device, "name", None),
                "client": job.client,
                "priority": job.priority,
                "timeout": job.timeout,
                "options": _json_safe(job.options),
                "simulate": job.simulate,
                "analyze": job.analyze,
            }
        )

    def record_started(self, job) -> None:
        self.append({"e": "start", "id": job.journal_id, "attempt": job.attempts})

    def record_failed(self, job, kind: str, error: str) -> None:
        """A transient attempt failure (the job stays live for retry)."""
        self.append(
            {
                "e": "fail",
                "id": job.journal_id,
                "attempt": job.attempts,
                "kind": kind,
                "error": error,
            }
        )

    def record_done(self, job, error: str | None = None, cached: bool = False) -> None:
        row: dict = {"e": "done", "id": job.journal_id}
        if error is not None:
            row["error"] = error
        if cached:
            row["cached"] = True
        self.append(row)

    def record_dead(self, job, error: str) -> None:
        self.append(
            {
                "e": "dead",
                "id": job.journal_id,
                "error": error,
                "attempts": job.attempts,
                "crashes": job.crashes,
            }
        )

    # ------------------------------------------------------------------
    def replay(self) -> list[JournalRecord]:
        """Aggregate the journal into per-job records (flushes first)."""
        self._handle.flush()
        return replay_journal(self.path)

    def compact(self, pending: list[JournalRecord]) -> None:
        """Atomically rewrite the journal to just ``pending`` jobs.

        Run at recovery time: terminal records are dropped, incomplete
        jobs keep their original ``submit`` payloads *and ids*, so a
        crash mid-recovery still finds every outstanding job on the next
        replay and a completed recovery never resurrects finished work.
        """
        self._handle.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in pending:
                handle.write(
                    json.dumps(record.submit_line(), separators=(",", ":")) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._unsynced = 0
        self._handle = self.path.open("a", encoding="utf-8")

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "records_written": self.records_written,
            "syncs": self.syncs,
            "write_errors": self.write_errors,
            "fsync_batch": self.fsync_batch,
        }


def _json_safe(payload: dict) -> dict:
    """Options as the journal can hold them (drop what JSON cannot)."""
    try:
        return json.loads(json.dumps(payload))
    except (TypeError, ValueError):
        return {k: v for k, v in payload.items() if isinstance(v, (str, int, float, bool, type(None)))}


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass
class RetryPolicy:
    """Backoff schedule for transient worker failures.

    ``max_attempts`` bounds total tries (first run included);
    ``poison_crashes`` quarantines a job that *crashes* its worker that
    many times — the classic poison-pill input must not take a shard
    down over and over.  Delays grow as ``base_delay * 2**(attempt-1)``,
    capped at ``max_delay``, with multiplicative jitter up to ``jitter``
    drawn from a generator seeded via :func:`repro.rng.as_generator`
    (so a seeded service retries on a reproducible schedule).
    """

    max_attempts: int = 3
    poison_crashes: int = 2
    base_delay: float = 0.05
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int | np.random.Generator | None = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.poison_crashes < 1:
            raise ValueError("poison_crashes must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = as_generator(self.seed)

    def should_retry(self, attempts: int, crashes: int) -> bool:
        """May a job with this history run again?"""
        return attempts < self.max_attempts and crashes < self.poison_crashes

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (attempt >= 1)."""
        base = min(self.max_delay, self.base_delay * (2.0 ** max(0, attempt - 1)))
        if base <= 0:
            return 0.0
        scale = 1.0 + self.jitter * float(self._rng.random())
        return min(self.max_delay, base * scale)


# ----------------------------------------------------------------------
# Chaos / fault injection
# ----------------------------------------------------------------------
#: Fault kinds a :class:`ChaosPolicy` can inject, in documentation order.
CHAOS_KINDS = ("worker_crash", "worker_stall", "socket_drop", "disk_fail")


@dataclass
class ChaosPolicy:
    """Seeded fault injection across executor, server, and artifacts.

    Each rate is the per-opportunity probability of that fault:

    * ``worker_crash`` — rolled once per job execution; fires as a
      :class:`WorkerCrashed` exactly where a ``BrokenProcessPool`` would
      surface, so the supervision/retry path under test is the real one.
    * ``worker_stall`` — the worker sleeps ``stall_seconds`` before
      dispatch, tripping the service's per-job hang deadline.
    * ``socket_drop`` — the server aborts the connection instead of
      writing the next protocol event.
    * ``disk_fail`` — the artifact store's disk write raises ``OSError``.

    All draws come from one lock-guarded generator in call order, so a
    fixed seed gives a reproducible fault schedule; ``max_faults``
    bounds the total injected (e.g. "exactly one crash, then behave"),
    which is how tests script deterministic recoveries.  Counters in
    ``injected`` feed the service's stats and the chaos-demo summary.
    """

    worker_crash: float = 0.0
    worker_stall: float = 0.0
    socket_drop: float = 0.0
    disk_fail: float = 0.0
    stall_seconds: float = 0.05
    max_faults: int | None = None
    seed: int | np.random.Generator | None = 0

    def __post_init__(self) -> None:
        for kind in CHAOS_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        self._rng = as_generator(self.seed)
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {kind: 0 for kind in CHAOS_KINDS}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def roll(self, kind: str) -> bool:
        """Draw once: should fault ``kind`` fire at this opportunity?

        Zero-rate kinds never consume a draw, so enabling one fault kind
        does not perturb another's schedule under the same seed.
        """
        if kind not in self.injected:
            raise ValueError(f"unknown chaos kind {kind!r}; expected one of {CHAOS_KINDS}")
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        with self._lock:
            fire = float(self._rng.random()) < rate
            if fire and self.max_faults is not None and self.total_injected >= self.max_faults:
                return False
            if fire:
                self.injected[kind] += 1
            return fire

    def describe(self) -> dict:
        """JSON view for ``stats()`` and the chaos-demo summary."""
        return {
            "rates": {kind: getattr(self, kind) for kind in CHAOS_KINDS},
            "stall_seconds": self.stall_seconds,
            "max_faults": self.max_faults,
            "injected": dict(self.injected),
            "total_injected": self.total_injected,
        }
