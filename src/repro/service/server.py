"""The socket front door: ``weaver serve`` hosts a
:class:`~repro.service.CompilationService` on a local Unix socket.

Each connection speaks the JSON-lines protocol of
:mod:`repro.service.protocol`.  Requests on one connection are handled
concurrently (a slow ``submit`` never blocks a ``stats`` probe), and all
writes go through a per-connection queue so event lines never interleave
mid-line.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from ..exceptions import WeaverError
from .jobs import CompileJob
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    payload_to_workload,
)
from .resilience import ChaosPolicy, RetryPolicy, ServiceOverloaded
from .service import CompilationService

#: Cap on one request line; a malformed client must not buffer-bomb the
#: server.  Generous enough for uf250 DIMACS payloads (~25 KB).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServiceServer:
    """Host ``service`` on ``socket_path`` (a filesystem Unix socket)."""

    def __init__(self, service: CompilationService, socket_path: str | Path):
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    async def start(self) -> "ServiceServer":
        await self.service.start()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path), limit=MAX_LINE_BYTES
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.service.stop()
        self.socket_path.unlink(missing_ok=True)
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``shutdown`` (or :meth:`stop`)."""
        await self._shutdown.wait()

    async def __aenter__(self) -> "ServiceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Track the task so stop() can cancel mid-request connections;
        # absorb that cancellation here (one catch point) so shutdown
        # never logs "exception was never retrieved" noise.
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        outbox: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._drain_outbox(outbox, writer))
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    outbox.put_nowait(
                        {"event": "error", "kind": "user", "error": "line too long"}
                    )
                    break
                if not line:
                    break
                task = asyncio.create_task(self._handle_line(line, outbox))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except ConnectionResetError:
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            outbox.put_nowait(None)  # sentinel: flush and stop the writer
            try:
                await writer_task
            except asyncio.CancelledError:
                writer_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _drain_outbox(
        self, outbox: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        chaos = self.service.chaos
        while True:
            payload = await outbox.get()
            if payload is None:
                return
            if chaos is not None and chaos.roll("socket_drop"):
                # Chaos: the connection dies instead of delivering the
                # next event — exactly what a flaky network does.  The
                # job (if any) still completes server-side; the client's
                # idempotent resubmission turns into a cache hit.
                self.service.metrics.inc("service.chaos", kind="socket_drop")
                writer.transport.abort()
                return
            try:
                writer.write(encode_line(payload))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return  # client went away; drop remaining events

    # ------------------------------------------------------------------
    async def _handle_line(self, line: bytes, outbox: asyncio.Queue) -> None:
        req = None
        try:
            message = decode_line(line)
            req = message.get("req")
            op = message.get("op")
            if op == "ping":
                outbox.put_nowait(
                    {"req": req, "event": "pong", "version": PROTOCOL_VERSION}
                )
            elif op == "stats":
                outbox.put_nowait(
                    {"req": req, "event": "stats", "stats": self.service.stats()}
                )
            elif op == "jobs":
                if message.get("dead"):
                    jobs = list(self.service.dead_letters)
                else:
                    jobs = [job.describe() for job in self.service._jobs.values()]
                outbox.put_nowait({"req": req, "event": "jobs", "jobs": jobs})
            elif op == "submit":
                await self._handle_submit(message, req, outbox)
            elif op == "shutdown":
                outbox.put_nowait({"req": req, "event": "stopping"})
                self._shutdown.set()
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except WeaverError as exc:
            outbox.put_nowait(
                {"req": req, "event": "error", "kind": "user", "error": str(exc)}
            )
        except Exception as exc:  # noqa: BLE001 — the server must not die
            outbox.put_nowait(
                {
                    "req": req,
                    "event": "error",
                    "kind": "internal",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )

    async def _handle_submit(
        self, message: dict, req, outbox: asyncio.Queue
    ) -> None:
        workload = payload_to_workload(message.get("workload"))
        options = message.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")

        def on_progress(job: CompileJob, event: str) -> None:
            # 'done'/'dead' are reported by the awaiting handler below,
            # with the full result attached; forward only the
            # intermediate states (retries included, so a client watches
            # its job survive a crashed worker in real time).
            if event in ("queued", "started", "retrying"):
                outbox.put_nowait(
                    {"req": req, "event": event, "job": job.job_id, "shard": job.shard}
                )

        simulate = message.get("simulate")
        if simulate is not None and not isinstance(simulate, (bool, dict)):
            raise ProtocolError("'simulate' must be true or an options object")
        analyze = message.get("analyze")
        if analyze is not None and not isinstance(analyze, (bool, dict)):
            raise ProtocolError("'analyze' must be true or an options object")
        trace = message.get("trace")
        if trace is not None and not isinstance(trace, dict):
            raise ProtocolError("'trace' must be a span-context object")
        try:
            job = await self.service.submit(
                workload,
                target=message.get("target") or "fpqa",
                device=message.get("device"),
                client=message.get("client") or "remote",
                priority=int(message.get("priority") or 0),
                timeout=message.get("timeout"),
                simulate=simulate,
                analyze=analyze,
                on_progress=on_progress,
                trace=trace,
                **options,
            )
        except ServiceOverloaded as exc:
            # Structured load shedding, not an error: the client is told
            # when to come back (and ServiceClient retries on its own).
            outbox.put_nowait(
                {
                    "req": req,
                    "event": "shed",
                    "retry_after": exc.retry_after,
                    "depth": exc.depth,
                    "error": str(exc),
                }
            )
            return
        result = await job.future
        outbox.put_nowait(
            {
                "req": req,
                "event": "done",
                "job": job.job_id,
                "from_cache": job.from_cache,
                "trace": job.trace_id,
                "result": result.to_dict(),
            }
        )


async def serve(
    socket_path: str | Path,
    shards: int = 2,
    backend: str = "thread",
    store_dir: str | Path | None = None,
    max_artifacts: int = 512,
    budgets: dict[str, float] | None = None,
    ready: asyncio.Event | None = None,
    journal_path: str | Path | None = None,
    max_pending: int | None = None,
    hang_seconds: float | None = None,
    retry: RetryPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    verbose: bool = False,
) -> dict:
    """Run a service on ``socket_path`` until a client sends ``shutdown``.

    The coroutine behind ``weaver serve``; ``ready`` (when given) is set
    once the socket is accepting connections, for embedding in tests.
    Returns the service's final ``stats()`` snapshot (counters, profile,
    metric histograms), taken just before teardown — the CLI renders it
    as the shutdown report.

    A journal is opened at ``journal_path`` — defaulting to
    ``<store_dir>/journal.jsonl`` whenever a disk tier is configured, so
    durability comes with persistence — and replayed via
    :meth:`CompilationService.recover` *before* the socket accepts
    connections: clients of the restarted server see the backlog already
    re-enqueued.  ``max_pending``/``hang_seconds``/``retry``/``chaos``
    thread straight through to the service.
    """
    from .artifacts import ArtifactStore
    from .resilience import JobJournal

    if journal_path is None and store_dir is not None:
        journal_path = Path(store_dir) / "journal.jsonl"
    journal = JobJournal(journal_path) if journal_path is not None else None
    service = CompilationService(
        shards=shards,
        backend=backend,
        store=ArtifactStore(max_entries=max_artifacts, directory=store_dir),
        budgets=budgets,
        journal=journal,
        retry=retry,
        chaos=chaos,
        max_pending=max_pending,
        hang_seconds=hang_seconds,
    )
    server = ServiceServer(service, socket_path)
    await service.start()
    if journal is not None:
        summary = await service.recover()
        if verbose and summary["records"]:
            import sys

            print(
                "recovered {recovered} job(s) from journal "
                "({completed} done, {dead} dead, {unreplayable} unreplayable)"
                .format(**summary),
                file=sys.stderr,
            )
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_until_shutdown()
    finally:
        stats = service.stats()
        await server.stop()
        if journal is not None:
            journal.close()
    return stats
