"""JSON-lines wire protocol between ``weaver serve`` and its clients.

One request or event per line, UTF-8 JSON, newline-terminated.  Every
request carries a client-chosen ``req`` id; every response line echoes
it, so one connection can multiplex many in-flight submissions.

Requests::

    {"op": "ping",   "req": "r0"}
    {"op": "stats",  "req": "r1"}
    {"op": "jobs",   "req": "r2"}
    {"op": "jobs",   "req": "r7", "dead": true}
    {"op": "submit", "req": "r3", "workload": {"kind": "cnf", "text": "p cnf ...",
     "name": "uf20-01"}, "target": "fpqa", "device": null, "options": {},
     "client": "alice", "priority": 0, "timeout": null}
    {"op": "submit", "req": "r8", ..., "simulate": {"shots": 2000, "seed": 7}}
    {"op": "submit", "req": "r9", ..., "analyze": true}
    {"op": "shutdown", "req": "r4"}

``simulate`` (``true`` or an options object) makes the submission a
``sim`` job: the worker also executes the compiled artifact on the
noise-aware simulator and the ``done`` result carries ``execution``.
``analyze`` (``true`` or an options object) makes it a ``lint`` job:
the worker statically verifies the artifact with the wLint analyzer
and the ``done`` result carries ``analysis``.

A ``submit`` may carry an optional ``trace`` field — a span context
object ``{"trace": "...", "span": "..."}`` from
:func:`repro.telemetry.current_context` — and a server recording a
trace parents the job's spans on it, so client and server stitch into
one tree.  The field is additive (ignored by older servers, omitted by
untraced clients), so the protocol version is unchanged.

Responses (``submit`` streams its job's lifecycle)::

    {"req": "r3", "event": "queued",  "job": "job-1", "shard": 0}
    {"req": "r3", "event": "started", "job": "job-1"}
    {"req": "r3", "event": "done",    "job": "job-1", "from_cache": false,
     "trace": "86f2...", "result": {...CompilationResult.to_dict()...}}
    {"req": "r9", "event": "error", "kind": "user", "error": "unknown target 'pixie'"}
    {"req": "r3", "event": "retrying", "job": "job-1", "shard": 0}
    {"req": "r3", "event": "shed", "retry_after": 0.5, "depth": 64,
     "error": "service overloaded (64 job(s) queued); retry after 0.5s"}

``done`` events echo the job's trace id (``null`` when nothing traced
it), so a client can correlate its spans with a server-side recording.
``retrying`` reports a transient worker failure being retried under the
server's RetryPolicy; ``shed`` is the structured load-shedding
rejection — no job was accepted, come back in ``retry_after`` seconds
(:class:`repro.service.ServiceClient` backs off and resubmits
automatically; resubmission is idempotent under the artifact key).
``jobs`` with ``"dead": true`` lists the dead-letter records of
quarantined poison jobs instead of the live registry.

Workload payloads travel as full content (DIMACS or OpenQASM text), not
file paths — the server never reads client filesystems.
"""

from __future__ import annotations

import json

from ..exceptions import WeaverError, WorkloadError
from ..targets.workload import Workload

#: Bump when the line schema changes; ``ping`` reports it.
PROTOCOL_VERSION = 1


class ProtocolError(WeaverError):
    """A protocol line was malformed or used an unknown op/kind."""


def encode_line(payload: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line (raises :class:`ProtocolError` on junk)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"protocol line is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"protocol line is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"protocol line must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def workload_to_payload(workload: Workload) -> dict:
    """Serialize a workload's full content for the wire."""
    if workload.formula is not None:
        from ..sat.dimacs import to_dimacs

        return {
            "kind": "cnf",
            "name": workload.name,
            "text": to_dimacs(workload.formula),
        }
    from ..qasm import circuit_to_qasm

    return {
        "kind": "qasm",
        "name": workload.name,
        "text": circuit_to_qasm(workload.raw_circuit),
    }


def payload_to_workload(payload: dict) -> Workload:
    """Rebuild a workload from its wire form."""
    if not isinstance(payload, dict):
        raise ProtocolError("workload payload must be a JSON object")
    kind = payload.get("kind")
    text = payload.get("text")
    name = payload.get("name") or "workload"
    if not isinstance(text, str):
        raise ProtocolError("workload payload needs a 'text' string")
    if kind == "cnf":
        from ..sat.dimacs import parse_dimacs

        try:
            return Workload.from_formula(parse_dimacs(text, name=name), name=name)
        except WeaverError as exc:
            raise WorkloadError(f"bad CNF workload payload: {exc}") from exc
    if kind == "qasm":
        try:
            return Workload.from_qasm(text, name=name)
        except WeaverError as exc:
            raise WorkloadError(f"bad QASM workload payload: {exc}") from exc
    raise ProtocolError(f"unknown workload kind {kind!r}; expected 'cnf' or 'qasm'")
