"""The asyncio compilation service: sharded workers over fair queues.

:class:`CompilationService` is the in-process engine behind ``weaver
serve``.  Submissions flow::

    submit -> artifact store probe -> in-flight dedup -> shard queue
           -> shard worker -> executor (thread/process) -> artifact store
           -> resolve futures / progress events

Sharding routes every job by its ``(target, device)`` cell
(:func:`shard_key`), so one worker repeatedly compiles for the same
backend and its warm per-process caches — device cost models, Rydberg
cluster geometry, clause-matrix memos — keep paying off.  The executor
reuses the :func:`repro.targets.session.compile_spec` fan-out worker the
batched session API already ships, so a service job and a
``compile_many`` cell are the same unit of work.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

from ..exceptions import TargetError, WeaverError
from ..perf import Profiler
from ..targets.registry import resolve_target_name
from ..targets.result import CompilationResult
from ..targets.session import (
    _canonical_device,
    compile_spec,
    traced_compile_spec,
)
from ..targets.workload import coerce_workload
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.trace import SpanContext, current_tracer, span_context
from .artifacts import ArtifactStore, artifact_key
from .jobs import CompileJob, FairQueue, JobStatus
from .protocol import payload_to_workload, workload_to_payload
from .resilience import (
    ChaosPolicy,
    JobJournal,
    RetryPolicy,
    ServiceOverloaded,
    WorkerCrashed,
)

#: Executor backends a shard worker may run compilations on.
BACKENDS = ("thread", "process", "inline")


def shard_key(target: str, device=None) -> str:
    """The cache-affinity key of a compilation cell.

    Jobs with equal shard keys are guaranteed to run on the same worker
    (for a fixed shard count), so everything a backend memoizes —
    cost models, zone plans, clause matrices — is reused across them.
    """
    if device is None:
        device_name = ""
    elif isinstance(device, str):
        device_name = device
    else:
        device_name = getattr(device, "name", repr(device))
    return f"{target}@{device_name}"


def _shard_of(key: str, shards: int) -> int:
    # sha256 rather than hash(): stable across processes and runs (no
    # PYTHONHASHSEED dependence), so routing is reproducible; crc32 of
    # the short registry names clusters badly at small shard counts.
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class CompilationService:
    """A long-lived, multi-tenant, cached compilation server.

    Parameters
    ----------
    shards:
        Number of worker queues/executors.  Each shard owns one
        single-worker executor, so at most ``shards`` compilations run
        concurrently and a given ``(target, device)`` cell always lands
        on the same shard.
    backend:
        ``"thread"`` (default: cheap on small boxes), ``"process"``
        (true parallelism on multi-core machines, one warm interpreter
        per shard), or ``"inline"`` (run on the event loop; tests).
    store:
        The :class:`ArtifactStore` to serve repeats from; a fresh
        in-memory store by default.
    budgets:
        Per-target compile budgets in seconds (the session contract);
        a job's own ``timeout`` overrides its target's entry.
    parameters / target_options:
        Session-wide QAOA angles and per-target factory options, applied
        to every job.
    max_tracked_jobs:
        Finished jobs stay queryable (``service.job(id)``, the ``jobs``
        protocol op) up to this bound; the oldest finished jobs are then
        forgotten so a long-lived server's registry cannot grow without
        limit.  Queued/running jobs are always tracked.
    journal:
        A :class:`~repro.service.JobJournal` to log lifecycle
        transitions into (``None`` disables durability).  With a journal
        wired in, :meth:`recover` replays incomplete jobs after a crash.
    retry:
        The :class:`~repro.service.RetryPolicy` governing transient
        worker failures (crash/hang); the default policy retries twice
        with exponential backoff and quarantines double-crashers.
    chaos:
        An optional :class:`~repro.service.ChaosPolicy` injecting
        seeded faults into execution and (if the store has none of its
        own) artifact disk writes — the test/benchmark harness.
    max_pending:
        Admission-control high-water mark: with this many jobs queued, a
        genuinely *new* submission (not a cache or in-flight hit) is
        shed with :class:`~repro.service.ServiceOverloaded` instead of
        queueing without bound.  ``None`` (default) never sheds.
    hang_seconds:
        Grace beyond a job's compile budget before the worker is
        declared hung: the attempt is abandoned, the shard executor
        restarted, and the job retried.  ``None`` disables the deadline
        (inline backends block the loop, so it only bites on
        thread/process backends).
    """

    def __init__(
        self,
        shards: int = 2,
        backend: str = "thread",
        store: ArtifactStore | None = None,
        budgets: dict[str, float] | None = None,
        parameters=None,
        target_options: dict[str, dict] | None = None,
        profiler: Profiler | None = None,
        metrics: MetricsRegistry | None = None,
        max_tracked_jobs: int = 1024,
        journal: JobJournal | None = None,
        retry: RetryPolicy | None = None,
        chaos: ChaosPolicy | None = None,
        max_pending: int | None = None,
        hang_seconds: float | None = None,
        max_dead_letters: int = 256,
    ):
        if shards < 1:
            raise TargetError("a service needs at least one shard")
        if backend not in BACKENDS:
            raise TargetError(
                f"unknown service backend {backend!r}; expected one of "
                f"{', '.join(BACKENDS)}"
            )
        self.shards = shards
        self.backend = backend
        self.profiler = profiler if profiler is not None else Profiler()
        #: Latency/queue metrics (histograms with quantiles) — the
        #: structured counterpart of the flat profiler counters; the
        #: ``stats`` op surfaces its snapshot under ``"metrics"``.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = store if store is not None else ArtifactStore()
        if self.store.profiler is None:
            self.store.profiler = self.profiler
        if self.store.metrics is None:
            self.store.metrics = self.metrics
        self.budgets = dict(budgets or {})
        self.parameters = parameters
        self.target_options = {k: dict(v) for k, v in (target_options or {}).items()}
        self._queues: list[FairQueue] = [FairQueue() for _ in range(shards)]
        self._executors: list = [None] * shards
        self._workers: list[asyncio.Task] = []
        self._inflight: dict[str, CompileJob] = {}
        self._followers: dict[str, list[CompileJob]] = {}
        self._jobs: dict[str, CompileJob] = {}
        self.max_tracked_jobs = max_tracked_jobs
        #: job ids in finish order, for bounded-registry eviction.
        self._retired: deque[str] = deque()
        self._running = False
        self._jobs_submitted = 0
        self._jobs_completed = 0
        self._per_shard_jobs = [0] * shards
        # -- resilience layer ------------------------------------------
        self.journal = journal
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        if chaos is not None and self.store.chaos is None:
            self.store.chaos = chaos
        self.max_pending = max_pending
        self.hang_seconds = hang_seconds
        #: Quarantined poison jobs, newest last (`weaver jobs --dead`).
        self.dead_letters: deque[dict] = deque(maxlen=max_dead_letters)
        self._retry_tasks: set[asyncio.Task] = set()
        #: Last time each shard worker picked up or finished a job —
        #: the supervision heartbeat `stats()` surfaces as staleness.
        self._heartbeats: list[float] = [time.monotonic()] * shards
        self._retry_count = 0
        self._shed_count = 0
        self._worker_restarts = 0
        #: Summary of the last `recover()` run (``None`` before one).
        self._recovered: dict | None = None
        #: Rolling average job latency, feeding the shed `retry_after`.
        self._latency_sum = 0.0
        self._latency_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CompilationService":
        """Spin up one worker task per shard (idempotent)."""
        if self._running:
            return self
        self._running = True
        for shard in range(self.shards):
            self._workers.append(
                asyncio.create_task(
                    self._worker(shard), name=f"repro-service-shard-{shard}"
                )
            )
        return self

    async def stop(self) -> None:
        """Cancel workers, fail pending jobs, and release executors."""
        if not self._running:
            return
        self._running = False
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        # Pending backoff sleeps would re-enqueue into a dead queue;
        # cancel them so their jobs fall through to the inflight drain.
        for task in list(self._retry_tasks):
            task.cancel()
        if self._retry_tasks:
            await asyncio.gather(*self._retry_tasks, return_exceptions=True)
            self._retry_tasks.clear()
        for queue in self._queues:
            for job in queue.drain():
                self._cancel_job(job)
        for key in list(self._inflight):
            job = self._inflight.pop(key)
            for follower in self._followers.pop(key, []):
                self._cancel_job(follower)
            if not job.future.done():
                self._cancel_job(job)
        for index, executor in enumerate(self._executors):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                self._executors[index] = None
        if self.journal is not None:
            # Cancelled jobs stay *incomplete* in the journal on
            # purpose: a shutdown with queued work is exactly what
            # recover() replays on the next start.
            self.journal.sync()

    async def __aenter__(self) -> "CompilationService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _cancel_job(self, job: CompileJob) -> None:
        job.status = JobStatus.CANCELLED
        job.finished_at = time.monotonic()
        self.metrics.inc("service.jobs.cancelled", kind=job.kind)
        if not job.future.done():
            job.future.set_result(
                self._failure_result(job, "ServiceStopped: service shut down")
            )
        self._finish_span(job, "cancelled")
        self._retire(job)
        job._emit("cancelled")

    def _finish_span(self, job: CompileJob, status: str, result=None) -> None:
        """Close the job's lifecycle span, if one is open."""
        span = job.span
        if span is None:
            return
        job.span = None
        if job.trace is None:
            # Keep the id resolvable after the span closes (the `done`
            # protocol event echoes it for client-side correlation).
            job.trace = span_context(span)
        span.set_attribute("status", status)
        span.set_attribute("from_cache", job.from_cache)
        if result is not None and result.error is not None:
            span.set_attribute("error", result.error)
        span.finish(end=job.finished_at)

    def _retire(self, job: CompileJob) -> None:
        """Bound the job registry: forget the oldest finished jobs."""
        self._retired.append(job.job_id)
        while len(self._retired) > self.max_tracked_jobs:
            self._jobs.pop(self._retired.popleft(), None)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        workload,
        target: str = "fpqa",
        device=None,
        client: str = "default",
        priority: int = 0,
        timeout: float | None = None,
        simulate=None,
        analyze=None,
        on_progress: Callable[[CompileJob, str], None] | None = None,
        trace: dict | None = None,
        journal_id: str | None = None,
        **options,
    ) -> CompileJob:
        """Queue one compilation and return its (awaitable) job.

        ``trace`` is an optional client span context
        (:func:`repro.telemetry.current_context`): when server-side
        tracing is on, this job's spans parent on it, so client and
        server stitch into one trace.

        The call returns as soon as the job is routed: instantly with a
        finished job on an artifact-store hit, otherwise after enqueuing
        on the cell's shard.  ``priority`` sorts ascending (0 before 1);
        ``timeout`` is this job's compile budget in seconds.

        ``simulate`` (``True`` or an options dict with ``shots``,
        ``noise``, ``seed``, ``max_trajectories``) makes this a ``sim``
        job: the worker compiles *and* executes the artifact on the
        noise-aware simulator, and the stored artifact — content-
        addressed by program + noise + seed + shots — carries the
        execution payload on ``result.execution``.

        ``analyze`` (``True`` or an options dict) makes this a ``lint``
        job: the worker statically verifies the compiled artifact with
        the wLint analyzer (:mod:`repro.analysis`) and the stored
        artifact carries the report on ``result.analysis``.  Lint timing
        accrues under the ``service.lint.<target>`` perf counters.

        ``journal_id`` is internal: :meth:`recover` passes the original
        journal id so a replayed job keeps its identity (and is not
        re-recorded or shed).  With ``max_pending`` configured, a brand
        new submission past the high-water mark raises
        :class:`~repro.service.ServiceOverloaded` with a ``retry_after``
        hint; cache and in-flight hits are never shed (they cost no
        queue slot).
        """
        if not self._running:
            raise TargetError("service is not running; use `async with` or start()")
        resolved = coerce_workload(workload)
        name = resolve_target_name(target)
        device = _canonical_device(device)
        if simulate:
            from ..sim import canonical_sim_options

            simulate = canonical_sim_options(simulate)
        else:
            simulate = None
        if analyze:
            from ..analysis import canonical_analyze_options

            analyze = canonical_analyze_options(analyze)
        else:
            analyze = None
        key = artifact_key(
            resolved,
            name,
            device=device,
            parameters=self.parameters,
            options=options,
            budget=self._budget_for(name, timeout),
            target_options=self.target_options.get(name),
            simulate=simulate,
            analyze=analyze,
        )
        if (
            self.max_pending is not None
            and journal_id is None
            and self._queue_depth() >= self.max_pending
            and key not in self._inflight
            and key not in self.store
        ):
            # Shed only work that would consume a queue slot; hits and
            # followers are answered from state the service already has.
            self._shed_count += 1
            self.metrics.inc("service.shed")
            raise ServiceOverloaded(self._retry_after(), depth=self._queue_depth())
        job = CompileJob(
            workload=resolved,
            target=name,
            device=device,
            options=dict(options),
            simulate=simulate,
            analyze=analyze,
            client=client,
            priority=priority,
            timeout=timeout,
            key=key,
            shard=_shard_of(shard_key(name, device), self.shards),
            trace=trace if isinstance(trace, dict) else None,
            on_progress=on_progress,
        )
        self._jobs[job.job_id] = job
        self._jobs_submitted += 1
        self.metrics.inc("service.jobs.submitted", kind=job.kind, target=name)
        if self.journal is not None:
            job.journal_id = journal_id or self.journal.next_id()
            if journal_id is None:
                # Recovered jobs were compacted back in under their own
                # ids; re-recording them would double-count on replay.
                self.journal.record_submitted(job, workload_to_payload(resolved))
        tracer = current_tracer()
        if tracer is not None:
            # The job span stays open across the whole lifecycle
            # (explicitly managed — an asyncio service has no single
            # ambient context); closed by _finish_job/_cancel_job.
            parent = None
            if job.trace is not None and isinstance(
                job.trace.get("trace"), str
            ) and isinstance(job.trace.get("span"), str):
                parent = SpanContext(job.trace["trace"], job.trace["span"])
            job.span = tracer.start(
                f"service.job.{job.kind}",
                parent=parent,
                attributes={
                    "job": job.job_id,
                    "target": name,
                    "client": client,
                    "shard": job.shard,
                },
            )
        job._emit("queued")

        lookup_started = time.monotonic()
        hit = self.store.get(key)
        if tracer is not None:
            tracer.record(
                "service.artifact.lookup",
                start=lookup_started,
                parent=job.span,
                attributes={"hit": hit is not None},
            )
        if hit is not None:
            job.from_cache = True
            self._finish_job(job, hit)
            return job

        primary = self._inflight.get(key)
        if primary is not None:
            # Single-flight: an identical compilation is already queued
            # or running; this job follows it instead of recomputing.
            self.profiler.hit("service.inflight")
            job.from_cache = True
            self._followers.setdefault(key, []).append(job)
            return job
        self.profiler.miss("service.inflight")

        self._inflight[key] = job
        self._queues[job.shard].put_nowait(job)
        self.metrics.set_gauge("service.queue.depth", self._queue_depth())
        return job

    async def submit_many(
        self,
        workloads: Iterable,
        targets: str | Sequence[str] = "fpqa",
        devices: Sequence | None = None,
        client: str = "default",
        **submit_kwargs,
    ) -> list[CompileJob]:
        """Submit the (workload x target[, device]) grid, workload-major.

        The async analogue of
        :meth:`repro.CompilerSession.compile_many`: same cell order,
        jobs instead of blocking results.
        """
        target_names = [targets] if isinstance(targets, str) else list(targets)
        device_list = list(devices) if devices is not None else [None]
        jobs: list[CompileJob] = []
        for workload in workloads:
            for target in target_names:
                for device in device_list:
                    jobs.append(
                        await self.submit(
                            workload,
                            target=target,
                            device=device,
                            client=client,
                            **submit_kwargs,
                        )
                    )
        return jobs

    async def result(self, job: CompileJob) -> CompilationResult:
        """Await one job's result."""
        return await job.future

    async def gather(self, jobs: Sequence[CompileJob]) -> list[CompilationResult]:
        """Await every job, in input order."""
        return [await job.future for job in jobs]

    def job(self, job_id: str) -> CompileJob | None:
        """Look a job up by id (protocol front door)."""
        return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _budget_for(self, target: str, timeout: float | None) -> float | None:
        return timeout if timeout is not None else self.budgets.get(target)

    def _spec(self, job: CompileJob) -> tuple:
        target_options = dict(self.target_options.get(job.target, {}))
        if job.device is not None:
            target_options["device"] = job.device
        spec = (
            job.workload,
            job.target,
            target_options,
            self.parameters,
            self._budget_for(job.target, job.timeout),
            job.options,
        )
        # ``sim``/``lint`` jobs ride the same worker seam: compile_spec
        # runs the simulator and/or the static analyzer after a
        # successful compile (seventh/eighth spec elements).
        if job.analyze is not None:
            return spec + (job.simulate, job.analyze)
        return spec + (job.simulate,) if job.simulate else spec

    def _executor_for(self, shard: int):
        executor = self._executors[shard]
        if executor is None:
            if self.backend == "thread":
                executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{shard}"
                )
            else:
                executor = ProcessPoolExecutor(max_workers=1)
            self._executors[shard] = executor
        return executor

    def _queue_depth(self) -> int:
        return sum(len(queue) for queue in self._queues)

    async def _execute(self, job: CompileJob, shard: int, loop) -> CompilationResult:
        """Run one job on the shard's executor (traced when enabled).

        With tracing on, the spec ships through
        :func:`traced_compile_spec` carrying the execute span's context;
        the worker's spans (the compile span, every pass span, sim
        phases) come back by value and are ingested here — the stitch
        that makes one trace cross the process boundary.
        """
        if self.chaos is not None:
            if self.chaos.roll("worker_stall"):
                self.metrics.inc("service.chaos", kind="worker_stall")
                await asyncio.sleep(self.chaos.stall_seconds)
            if self.chaos.roll("worker_crash"):
                # Raised where a real BrokenProcessPool would surface,
                # so the supervision path under test is the real one.
                self.metrics.inc("service.chaos", kind="worker_crash")
                raise WorkerCrashed(
                    f"chaos: injected worker crash on shard {shard}"
                )
        tracer = current_tracer()
        if tracer is None or job.span is None:
            if self.backend == "inline":
                return compile_spec(self._spec(job))
            return await loop.run_in_executor(
                self._executor_for(shard), compile_spec, self._spec(job)
            )
        exec_span = tracer.start(
            "service.execute",
            parent=job.span,
            attributes={"shard": shard, "backend": self.backend},
        )
        payload = (span_context(exec_span), self._spec(job))
        try:
            if self.backend == "inline":
                result, worker_spans = traced_compile_spec(payload)
            else:
                result, worker_spans = await loop.run_in_executor(
                    self._executor_for(shard), traced_compile_spec, payload
                )
        finally:
            exec_span.finish()
        tracer.ingest(worker_spans)
        return result

    def _deadline_for(self, job: CompileJob) -> float | None:
        """Wall-clock bound on one attempt, or ``None`` (no supervision).

        The compile budget already times passes out *cooperatively*
        inside the worker; the deadline adds ``hang_seconds`` of grace
        on top to catch a worker that stopped cooperating entirely.
        """
        if self.hang_seconds is None:
            return None
        budget = self._budget_for(job.target, job.timeout)
        return self.hang_seconds + (budget or 0.0)

    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        loop = asyncio.get_running_loop()
        while True:
            job = await queue.get()
            job.status = JobStatus.RUNNING
            job.started_at = time.monotonic()
            self._heartbeats[shard] = job.started_at
            self.metrics.set_gauge("service.queue.depth", self._queue_depth())
            # submitted_at/started_at share the tracer's monotonic
            # clock, so the wait renders as a real span retroactively.
            self.metrics.observe(
                "service.queue_wait_seconds", job.started_at - job.submitted_at
            )
            tracer = current_tracer()
            if tracer is not None and job.span is not None:
                tracer.record(
                    "service.queue.wait",
                    start=job.submitted_at,
                    end=job.started_at,
                    parent=job.span,
                    attributes={"shard": shard},
                )
            job.attempts += 1
            if self.journal is not None and job.journal_id is not None:
                self.journal.record_started(job)
            job._emit("started")
            start = time.perf_counter()
            failure_kind: str | None = None
            failure_error = ""
            deadline = self._deadline_for(job)
            try:
                attempt = self._execute(job, shard, loop)
                if deadline is not None:
                    result = await asyncio.wait_for(attempt, deadline)
                else:
                    result = await attempt
            except asyncio.CancelledError:
                self._inflight.pop(job.key, None)
                self._cancel_job(job)
                for follower in self._followers.pop(job.key, []):
                    self._cancel_job(follower)
                raise
            except asyncio.TimeoutError:
                # The executor stopped cooperating: abandon the attempt
                # and recycle the shard so the next job gets a live pool.
                failure_kind = "hang"
                failure_error = f"worker hung past {deadline:.3g}s deadline"
            except (WorkerCrashed, BrokenExecutor) as exc:
                failure_kind = "crash"
                failure_error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001 — deterministic failure
                # Anything else is the job's own fault (bad options, a
                # buggy pass): re-running it would fail identically, so
                # it becomes an error row, never a retry.
                result = self._failure_result(job, f"{type(exc).__name__}: {exc}")
            self._heartbeats[shard] = time.monotonic()
            if failure_kind is not None:
                if failure_kind in ("crash", "hang"):
                    self._restart_executor(shard)
                self._handle_transient_failure(job, failure_kind, failure_error)
                continue
            elapsed = time.perf_counter() - start
            self.profiler.add(f"service.{job.kind}.{job.target}", elapsed)
            device_name = (
                job.device
                if isinstance(job.device, str)
                else getattr(job.device, "name", None)
            )
            self.metrics.observe(
                "service.compile_seconds", elapsed,
                target=job.target, device=device_name or "-",
            )
            # The worker process (or thread) profiled its own passes,
            # primitives, and caches; fold them into the service
            # registry so `stats` reflects the whole fleet, not just
            # this process (pool-worker counters used to be dropped).
            if result.profile:
                self.profiler.merge_profile(result.profile)
            if result.execution:
                self.profiler.merge_profile(result.execution.get("profile"))
            self._per_shard_jobs[shard] += 1
            if result.error is None:
                # Serialize off the loop (a big program's JSON is the
                # costly part); the store call itself is bookkeeping.
                store_started = time.monotonic()
                if self.backend == "inline":
                    entry = ArtifactStore.encode(result)
                else:
                    entry = await loop.run_in_executor(
                        None, ArtifactStore.encode, result
                    )
                try:
                    self.store.put(job.key, result, entry=entry)
                except OSError:
                    # A failed disk write degrades the cache, not the
                    # job: the result is in hand and still delivered.
                    self.metrics.inc("service.store_errors")
                if tracer is not None and job.span is not None:
                    tracer.record(
                        "service.artifact.store",
                        start=store_started,
                        parent=job.span,
                        attributes={"bytes": len(entry)},
                    )
            self._inflight.pop(job.key, None)
            followers = self._followers.pop(job.key, [])
            self._finish_job(job, result)
            for follower in followers:
                self._finish_job(follower, result)

    def _finish_job(
        self,
        job: CompileJob,
        result: CompilationResult,
        status: JobStatus = JobStatus.DONE,
    ) -> None:
        job.status = status
        job.finished_at = time.monotonic()
        if job.started_at is None:  # cache/in-flight hits never ran
            job.started_at = job.finished_at
        elapsed = job.finished_at - job.submitted_at
        if status is JobStatus.DONE:
            self._jobs_completed += 1
            self.metrics.inc(
                "service.jobs.completed", kind=job.kind, target=job.target
            )
            self._latency_sum += elapsed
            self._latency_count += 1
        self.metrics.observe("service.job_seconds", elapsed, kind=job.kind)
        if self.journal is not None and job.journal_id is not None:
            if status is JobStatus.DONE:
                self.journal.record_done(
                    job, error=result.error, cached=job.from_cache
                )
            elif status is JobStatus.DEAD:
                self.journal.record_dead(job, result.error or "dead letter")
        if not job.future.done():
            job.future.set_result(result)
        self._finish_span(job, status.value, result)
        self._retire(job)
        job._emit(status.value)

    # ------------------------------------------------------------------
    # Supervision: transient failures, retries, dead letters
    # ------------------------------------------------------------------
    def _restart_executor(self, shard: int) -> None:
        """Recycle a shard's executor after a crash or hang."""
        executor = self._executors[shard]
        self._executors[shard] = None
        self._worker_restarts += 1
        self.metrics.inc("service.worker.restarts")
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _handle_transient_failure(
        self, job: CompileJob, kind: str, error: str
    ) -> None:
        """Route a crashed/hung attempt: retry with backoff, or quarantine.

        The job stays in ``_inflight`` throughout, so duplicate
        submissions keep following it rather than racing a second
        execution of the same key.
        """
        if kind == "crash":
            job.crashes += 1
        self.metrics.inc("service.failures", kind=kind)
        if self.journal is not None and job.journal_id is not None:
            self.journal.record_failed(job, kind, error)
        if self.retry.should_retry(job.attempts, job.crashes):
            self._retry_count += 1
            self.metrics.inc("service.retries", kind=kind)
            job.status = JobStatus.QUEUED
            job._emit("retrying")
            task = asyncio.create_task(
                self._requeue_later(job, self.retry.delay(job.attempts)),
                name=f"repro-service-retry-{job.job_id}",
            )
            self._retry_tasks.add(task)
            task.add_done_callback(self._retry_tasks.discard)
        else:
            self._dead_letter(job, error)

    async def _requeue_later(self, job: CompileJob, delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if not self._running:
            # stop() will fail the job via the inflight drain.
            return
        self._queues[job.shard].put_nowait(job)
        self.metrics.set_gauge("service.queue.depth", self._queue_depth())

    def _dead_letter(self, job: CompileJob, error: str) -> None:
        """Quarantine a poison job: terminal error row + dead-letter record."""
        message = f"DeadLetter: {error} (after {job.attempts} attempt(s))"
        result = self._failure_result(job, message)
        self.metrics.inc("service.dead_letter", kind=job.kind)
        self._inflight.pop(job.key, None)
        followers = self._followers.pop(job.key, [])
        self._finish_job(job, result, status=JobStatus.DEAD)
        for follower in followers:
            self._finish_job(follower, result, status=JobStatus.DEAD)
        self.dead_letters.append(
            {**job.describe(), "error": message, "crashes": job.crashes}
        )

    def _retry_after(self) -> float:
        """Shed-load backoff hint: roughly how long the backlog takes.

        Average observed job latency times the per-shard backlog,
        clamped to [0.1s, 30s] so a cold service still suggests
        something sane.
        """
        avg = (
            self._latency_sum / self._latency_count
            if self._latency_count
            else 0.1
        )
        backlog = max(1, self._queue_depth()) / max(1, self.shards)
        return min(30.0, max(0.1, avg * backlog))

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    async def recover(self) -> dict:
        """Replay the journal: re-enqueue every incomplete job.

        Call after :meth:`start` on a journal-backed service.  Jobs
        whose last journal event is terminal (``done``/``dead``) are
        left alone — their artifacts are already content-addressed on
        disk; everything else is resubmitted *under its original journal
        id*.  The journal is compacted first, so a crash mid-recovery
        still finds every outstanding job on the next replay.

        Returns the recovery summary (also kept in ``stats()``):
        ``records`` journaled jobs seen, ``completed``/``dead`` already
        terminal, ``recovered`` re-enqueued, ``unreplayable`` dropped
        because their payload no longer parses.
        """
        if self.journal is None:
            raise TargetError("recover() requires a journal-backed service")
        if not self._running:
            raise TargetError("start() the service before recover()")
        started = time.monotonic()
        records = self.journal.replay()
        pending = [record for record in records if not record.terminal]
        self.journal.compact(pending)
        recovered = 0
        unreplayable = 0
        for record in pending:
            try:
                workload = payload_to_workload(record.workload or {})
                await self.submit(
                    workload,
                    target=record.target,
                    device=record.device,
                    client=record.client,
                    priority=record.priority,
                    timeout=record.timeout,
                    simulate=record.simulate,
                    analyze=record.analyze,
                    journal_id=record.journal_id,
                    **(record.options or {}),
                )
                recovered += 1
            except WeaverError:
                # A payload the current schema cannot replay (junk line
                # that still parsed, retired target); losing it loudly
                # beats wedging recovery.
                unreplayable += 1
        summary = {
            "records": len(records),
            "completed": sum(1 for r in records if r.status == "done"),
            "dead": sum(1 for r in records if r.status == "dead"),
            "recovered": recovered,
            "unreplayable": unreplayable,
        }
        self._recovered = summary
        self.metrics.inc("service.recovery.jobs", float(recovered))
        tracer = current_tracer()
        if tracer is not None:
            tracer.record("service.recovery", start=started, attributes=summary)
        return summary

    def _failure_result(self, job: CompileJob, error: str) -> CompilationResult:
        return CompilationResult(
            target=job.target,
            workload=job.workload.name,
            num_qubits=job.workload.num_qubits,
            num_clauses=job.workload.num_clauses,
            device=job.device
            if isinstance(job.device, str)
            else getattr(job.device, "name", None),
            error=error,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters: jobs, shards, artifacts, and the profile."""
        now = time.monotonic()
        return {
            "running": self._running,
            "shards": self.shards,
            "backend": self.backend,
            "jobs_submitted": self._jobs_submitted,
            "jobs_completed": self._jobs_completed,
            "jobs_pending": sum(len(queue) for queue in self._queues),
            "jobs_per_shard": list(self._per_shard_jobs),
            "artifacts": self.store.stats(),
            "resilience": {
                "retries": self._retry_count,
                "dead_letters": len(self.dead_letters),
                "shed": self._shed_count,
                "worker_restarts": self._worker_restarts,
                "recovered": self._recovered,
                "heartbeat_seconds": [
                    round(now - beat, 6) for beat in self._heartbeats
                ],
                "journal": self.journal.stats() if self.journal else None,
                "chaos": self.chaos.describe() if self.chaos else None,
            },
            "profile": self.profiler.profile(),
            "metrics": self.metrics.to_dict(),
        }
