"""Content-addressed artifact store for compilation results.

An *artifact* is the serialized JSON form of a
:class:`~repro.targets.result.CompilationResult`.  The store maps a
content address — a SHA-256 over everything that determines the output:
workload content, target, device configuration, QAOA parameters, compile
options, and budget — to the artifact bytes.  Because the address covers
the full input and the stored value is the serialized bytes themselves,
a warm resubmission returns *byte-identical* output, the property the
service's conformance tests pin.

Eviction is LRU over a bounded number of in-memory entries; an optional
directory adds a disk tier that survives process restarts (reads promote
back into memory).  Hit/miss/eviction counters feed a
:class:`repro.perf.Profiler` under the ``service.artifacts`` cache name.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path

from ..targets.result import CompilationResult, jsonify
from ..targets.workload import Workload


def _workload_payload(workload: Workload) -> str:
    """The full content of a workload (not a truncated digest)."""
    if workload.formula is not None:
        from ..sat.dimacs import to_dimacs

        return to_dimacs(workload.formula)
    from ..qasm import circuit_to_qasm

    return circuit_to_qasm(workload.raw_circuit)


def _device_fingerprint(device) -> object:
    """A JSON-stable identity for a device argument (name or profile)."""
    if device is None:
        return None
    if isinstance(device, str):
        from ..devices.registry import resolve_device

        device = resolve_device(device)
    to_dict = getattr(device, "to_dict", None)
    if to_dict is not None:
        return to_dict()
    return repr(device)


def artifact_key(
    workload: Workload,
    target: str,
    device=None,
    parameters=None,
    options: dict | None = None,
    budget: float | None = None,
    target_options: dict | None = None,
    simulate: dict | None = None,
    analyze: dict | None = None,
) -> str:
    """Content address of one compilation: hex SHA-256 of its identity.

    Two submissions share a key exactly when every compilation input
    matches; the workload contributes its *content* (DIMACS/QASM text),
    not its name, so renamed copies of the same problem still hit.
    ``sim`` jobs additionally mix in the canonical simulate options —
    program + noise + seed + shots address the execution — and ``lint``
    jobs mix in the canonical analyze options (an empty dict counts:
    the stored artifact carries the report); both are keyed only when
    present, so plain compile keys are unchanged.
    """
    identity = {
        "workload": _workload_payload(workload),
        "target": target,
        "device": _device_fingerprint(device),
        "parameters": repr(parameters) if parameters is not None else None,
        "options": jsonify(sorted((options or {}).items())),
        "target_options": jsonify(sorted((target_options or {}).items())),
        "budget": budget,
    }
    if simulate:
        identity["simulate"] = jsonify(sorted(simulate.items()))
    if analyze is not None:
        identity["analyze"] = jsonify(sorted(analyze.items()))
    payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Bounded LRU map of content address -> serialized result bytes.

    Parameters
    ----------
    max_entries:
        In-memory entry bound; the least-recently-used artifact is
        evicted past it (disk copies, when configured, are kept).
    directory:
        Optional disk tier: artifacts persist as ``<key>.json`` files and
        are promoted back into memory on access, so a restarted service
        keeps its warm cache.
    profiler:
        A :class:`repro.perf.Profiler` whose ``service.artifacts`` cache
        counters mirror this store's hits and misses.
    metrics:
        A :class:`repro.telemetry.MetricsRegistry` receiving
        ``service.artifacts.hits`` / ``service.artifacts.misses``
        counters (the service wires its own registry in by default).
    chaos:
        A :class:`repro.service.ChaosPolicy` whose ``disk_fail`` rate
        injects ``OSError`` into disk-tier writes (the service wires its
        own policy in; the worker treats the failure as a degraded
        store, not a failed job).
    """

    def __init__(
        self,
        max_entries: int = 512,
        directory: str | Path | None = None,
        profiler=None,
        metrics=None,
        chaos=None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        self.profiler = profiler
        self.metrics = metrics
        self.chaos = chaos
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        #: Lazily decoded result objects, so repeated hits skip the JSON +
        #: wQasm re-parse (the artifact *bytes* stay authoritative).
        #: Decoded results are shared: callers treat them as read-only,
        #: the same contract as the session caches.
        self._decoded: dict[str, CompilationResult] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path(key) is not None

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        path = self.directory / f"{key}.json"
        return path if path.exists() else None

    def _record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if self.profiler is not None:
            (self.profiler.hit if hit else self.profiler.miss)("service.artifacts")
        if self.metrics is not None:
            self.metrics.inc(
                "service.artifacts.hits" if hit else "service.artifacts.misses"
            )

    def _lookup(self, key: str) -> bytes | None:
        """Find the artifact bytes (memory first, then disk); no counting."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        path = self._disk_path(key)
        if path is not None:
            try:
                entry = path.read_bytes()
                json.loads(entry.decode("utf-8"))  # reject corrupt files
            except (OSError, ValueError):
                self._drop(key)
                return None
            self._put_memory(key, entry)
            return entry
        return None

    def _drop(self, key: str) -> None:
        """Purge a stale/corrupt artifact from every tier, so it cannot
        keep being promoted and probed on later lookups."""
        self._entries.pop(key, None)
        self._decoded.pop(key, None)
        if self.directory is not None:
            (self.directory / f"{key}.json").unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def get_bytes(self, key: str) -> bytes | None:
        """The stored artifact bytes, or ``None`` (counts as hit/miss)."""
        entry = self._lookup(key)
        self._record(hit=entry is not None)
        return entry

    def get(self, key: str) -> CompilationResult | None:
        """The stored result (shared object; ``cached`` is ``True``).

        A hit is only recorded once the artifact actually decodes: an
        entry written by an older schema is purged and counted as a
        miss, never as a hit that served nothing.
        """
        entry = self._lookup(key)
        if entry is None:
            self._record(hit=False)
            return None
        result = self._decoded.get(key)
        if result is None:
            try:
                result = CompilationResult.from_dict(
                    json.loads(entry.decode("utf-8"))
                )
            except (ValueError, KeyError):
                self._drop(key)  # schema drift: stale artifact
                self._record(hit=False)
                return None
            self._decoded[key] = result
        result.cached = True
        self._record(hit=True)
        return result

    def _put_memory(self, key: str, entry: bytes) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._decoded.pop(evicted, None)
            self.evictions += 1

    @staticmethod
    def encode(result: CompilationResult) -> bytes:
        """The canonical artifact bytes of a result.

        Pure function, deliberately separate from :meth:`put`: the
        service worker runs it off the event loop (serializing a large
        program is the expensive part of storing), then hands the bytes
        to :meth:`put` for the cheap bookkeeping.
        """
        return json.dumps(result.to_dict(), indent=1).encode("utf-8")

    def put(
        self, key: str, result: CompilationResult, entry: bytes | None = None
    ) -> bytes:
        """Store ``result`` (pre-``encode``-d as ``entry``, or serialized
        here); returns the artifact bytes.

        Error rows are not stored (transient failures must retry, the
        same contract as the session caches); timed-out rows are, since
        re-running them would time out again under the same budget —
        the budget is part of the content address.
        """
        if entry is None:
            entry = self.encode(result)
        if result.error is not None:
            return entry
        self._put_memory(key, entry)
        self._decoded[key] = result
        if self.directory is not None:
            if self.chaos is not None and self.chaos.roll("disk_fail"):
                raise OSError("chaos: injected disk-write failure")
            path = self.directory / f"{key}.json"
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(entry)
            os.replace(tmp, path)
        return entry

    # ------------------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        """Drop in-memory artifacts (and optionally the disk tier)."""
        self._entries.clear()
        self._decoded.clear()
        if disk and self.directory is not None:
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)

    def stats(self) -> dict:
        """Counters for dashboards and the service ``stats`` op."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else None,
        }
