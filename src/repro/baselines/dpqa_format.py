"""DPQA interchange format (paper §A.4.1, step 6).

The original artifact converts quantum circuits into "the format required
by the DPQA compiler ... a .json file with sets of two-qubit gates".  This
module reproduces that exporter/importer so workloads can be handed to a
DPQA-style solver (ours or an external one) and results compared.
"""

from __future__ import annotations

import json

from ..circuits import QuantumCircuit
from ..exceptions import CompilationError


def circuit_to_dpqa_json(circuit: QuantumCircuit, name: str | None = None) -> str:
    """Serialize the 2-qubit gate set of ``circuit`` as DPQA-style JSON.

    Gates are grouped into commuting sets by qubit-disjointness in program
    order (the greedy layering DPQA's examples use); single-qubit gates
    are not part of the format and are counted in metadata only.
    """
    sets: list[list[list[int]]] = []
    current: list[list[int]] = []
    busy: set[int] = set()
    oneq = 0
    for inst in circuit.instructions:
        if not inst.gate.is_unitary:
            continue
        if len(inst.qubits) == 1:
            oneq += 1
            continue
        if len(inst.qubits) > 2:
            raise CompilationError(
                "DPQA format holds 2-qubit gates only; decompose first"
            )
        pair = [int(min(inst.qubits)), int(max(inst.qubits))]
        if busy & set(pair):
            sets.append(current)
            current = []
            busy = set()
        current.append(pair)
        busy |= set(pair)
    if current:
        sets.append(current)
    payload = {
        "name": name or circuit.name,
        "num_qubits": circuit.num_qubits,
        "gate_sets": sets,
        "metadata": {
            "num_2q_gates": sum(len(s) for s in sets),
            "num_1q_gates": oneq,
        },
    }
    return json.dumps(payload, indent=2)


def dpqa_json_to_pairs(text: str) -> tuple[int, list[list[tuple[int, int]]]]:
    """Parse DPQA-style JSON back into (num_qubits, gate sets)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CompilationError(f"malformed DPQA JSON: {exc}") from exc
    try:
        num_qubits = int(payload["num_qubits"])
        sets = [
            [(int(a), int(b)) for a, b in gate_set]
            for gate_set in payload["gate_sets"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise CompilationError(f"malformed DPQA JSON payload: {exc}") from exc
    for gate_set in sets:
        busy: set[int] = set()
        for a, b in gate_set:
            if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise CompilationError(f"invalid gate pair ({a}, {b})")
            if busy & {a, b}:
                raise CompilationError("gates within a set must be disjoint")
            busy |= {a, b}
    return num_qubits, sets
