"""Baseline compilers the paper evaluates against (§8.1).

Faithful laptop-scale re-implementations of the published algorithms:

* :class:`SuperconductingCompiler` — the Qiskit-style path (SABRE + heavy
  hex), the paper's superconducting baseline.
* :class:`AtomiqueCompiler` — fixed-atom-array compiler with SABRE-style
  mapping (O(N^3)) and movement-based (swap-free) routing, no 3-qubit
  gates [102].
* :class:`GeyserCompiler` — circuit blocking into 3-qubit blocks on a
  fixed triangular lattice with an O(K^2) composition/optimization stage
  and no atom movement [68].
* :class:`DpqaCompiler` — solver-style scheduling of 2-qubit gates into
  Rydberg stages via exact maximum-independent-set search per stage;
  completes on small instances and blows past any reasonable budget on
  larger ones, like the original SMT formulation [94].
* :class:`WeaverCompiler` — adapter exposing the real Weaver pipeline
  through the same interface.

All compilers share :class:`BaselineResult` and honor a cooperative
timeout, reproducing the paper's "X" (timed out) entries at laptop scale.
"""

from .base import BaselineCompiler, BaselineResult, run_with_timeout
from .superconducting import SuperconductingCompiler
from .atomique import AtomiqueCompiler
from .geyser import GeyserCompiler
from .dpqa import DpqaCompiler
from .weaver import WeaverCompiler

ALL_COMPILERS = {
    "superconducting": SuperconductingCompiler,
    "atomique": AtomiqueCompiler,
    "weaver": WeaverCompiler,
    "dpqa": DpqaCompiler,
    "geyser": GeyserCompiler,
}

__all__ = [
    "ALL_COMPILERS",
    "AtomiqueCompiler",
    "BaselineCompiler",
    "BaselineResult",
    "DpqaCompiler",
    "GeyserCompiler",
    "SuperconductingCompiler",
    "WeaverCompiler",
    "run_with_timeout",
]
