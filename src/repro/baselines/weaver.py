"""Adapter exposing the real Weaver pipeline through the baseline API."""

from __future__ import annotations

from ..fpqa.hardware import FPQAHardwareParams
from ..metrics.fidelity import program_eps
from ..metrics.timing import program_duration_us
from ..passes.woptimizer import WeaverFPQACompiler
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula
from .base import BaselineCompiler, BaselineResult, Deadline


class WeaverCompiler(BaselineCompiler):
    name = "weaver"

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        compression: bool | None = None,
        coloring_algorithm: str = "dsatur",
    ):
        self.hardware = hardware or FPQAHardwareParams()
        self.compression = compression
        self.coloring_algorithm = coloring_algorithm

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        compiler = WeaverFPQACompiler(
            hardware=self.hardware,
            compression=self.compression,
            coloring_algorithm=self.coloring_algorithm,
        )
        result = compiler.compile(formula, parameters or QaoaParameters(), measure=True)
        if deadline is not None:
            deadline.check()
        program = result.program
        duration_us = program_duration_us(program, self.hardware)
        eps = program_eps(program, self.hardware, duration_us)
        return BaselineResult(
            compiler=self.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=duration_us * 1e-6,
            eps=eps,
            num_pulses=program.total_pulses,
            extra={
                "num_colors": result.stats["clause-coloring"]["num_colors"],
                "pulse_counts": program.pulse_counts(),
                "use_compression": result.stats["gate-compression"]["use_compression"],
            },
        )
