"""Adapter exposing the real Weaver pipeline through the baseline API.

Since the target-registry redesign this is a thin view over
:class:`repro.targets.builtin.FPQATarget` — the metric assembly
(duration, EPS, pulse counts) lives there in exactly one place — that
reshapes the unified result into the legacy evaluation row.
"""

from __future__ import annotations

from ..fpqa.hardware import FPQAHardwareParams
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula
from .base import BaselineCompiler, BaselineResult, Deadline


class WeaverCompiler(BaselineCompiler):
    name = "weaver"

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        compression: bool | None = None,
        coloring_algorithm: str = "dsatur",
    ):
        self.hardware = hardware or FPQAHardwareParams()
        self.compression = compression
        self.coloring_algorithm = coloring_algorithm

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        # Imported lazily: repro.targets imports this package at load time.
        from ..targets.builtin import FPQATarget
        from ..targets.workload import Workload

        target = FPQATarget(
            hardware=self.hardware,
            compression=self.compression,
            coloring_algorithm=self.coloring_algorithm,
        )
        result = target.run(Workload.from_formula(formula), parameters, deadline)
        program = result.program
        return BaselineResult(
            compiler=self.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=result.execution_seconds,
            eps=result.eps,
            num_pulses=result.num_pulses,
            extra={
                "num_colors": result.stats["clause-coloring"]["num_colors"],
                "pulse_counts": program.pulse_counts(),
                "use_compression": result.stats["gate-compression"]["use_compression"],
            },
        )
