"""Common interface and result record for all evaluated compilers."""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from ..exceptions import CompilationTimeout
from ..qaoa.builder import QaoaParameters, qaoa_circuit
from ..sat.cnf import CnfFormula


@dataclass
class BaselineResult:
    """One (compiler, workload) evaluation record — a cell of Figures 8-12."""

    compiler: str
    workload: str
    num_vars: int
    num_clauses: int
    compile_seconds: float = 0.0
    execution_seconds: float | None = None
    eps: float | None = None
    num_pulses: int | None = None
    timed_out: bool = False
    error: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    # JSON round trip used by the ResultStore persistence layer.  (Kept
    # in the legacy field names — "compiler"/"num_vars" — so saved sweeps
    # stay readable as evaluation rows; the unified CompilationResult has
    # its own schema and the two convert via from/to_baseline_result.)
    def to_dict(self) -> dict:
        from ..targets.result import jsonify

        return {
            "compiler": self.compiler,
            "workload": self.workload,
            "num_vars": self.num_vars,
            "num_clauses": self.num_clauses,
            "compile_seconds": self.compile_seconds,
            "execution_seconds": self.execution_seconds,
            "eps": self.eps,
            "num_pulses": self.num_pulses,
            "timed_out": self.timed_out,
            "error": self.error,
            "extra": jsonify(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BaselineResult":
        return cls(
            compiler=payload["compiler"],
            workload=payload["workload"],
            num_vars=payload["num_vars"],
            num_clauses=payload["num_clauses"],
            compile_seconds=payload.get("compile_seconds", 0.0),
            execution_seconds=payload.get("execution_seconds"),
            eps=payload.get("eps"),
            num_pulses=payload.get("num_pulses"),
            timed_out=payload.get("timed_out", False),
            error=payload.get("error"),
            extra=payload.get("extra", {}),
        )


class Deadline:
    """Cooperative timeout shared across a compiler's inner loops."""

    def __init__(self, budget_seconds: float | None, compiler: str):
        self.compiler = compiler
        self.budget_seconds = budget_seconds
        self.start = time.perf_counter()

    def check(self) -> None:
        if (
            self.budget_seconds is not None
            and time.perf_counter() - self.start > self.budget_seconds
        ):
            raise CompilationTimeout(self.compiler, self.budget_seconds)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.start


class BaselineCompiler:
    """Interface every evaluated compiler implements."""

    #: Display name used in figures.
    name = "baseline"

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        raise NotImplementedError

    def _qaoa(self, formula: CnfFormula, parameters: QaoaParameters | None = None):
        """The shared workload lowering: MAX-3SAT -> QAOA circuit (§A.4.1)."""
        return qaoa_circuit(formula, parameters or QaoaParameters(), measure=True)


def _run_with_timeout(
    compiler: BaselineCompiler,
    formula: CnfFormula,
    parameters: QaoaParameters | None = None,
    budget_seconds: float | None = None,
) -> BaselineResult:
    """Run a compiler under a budget, converting timeouts into result rows.

    The paper marks budget violations with "X" in the figures; here they
    become ``timed_out=True`` rows.
    """
    deadline = Deadline(budget_seconds, compiler.name)
    try:
        result = compiler.compile_formula(formula, parameters, deadline)
    except CompilationTimeout:
        return BaselineResult(
            compiler=compiler.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=deadline.elapsed,
            timed_out=True,
        )
    except Exception as exc:  # noqa: BLE001 — report, don't crash the sweep
        return BaselineResult(
            compiler=compiler.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=deadline.elapsed,
            error=f"{type(exc).__name__}: {exc}",
        )
    return result


def run_with_timeout(
    compiler: BaselineCompiler,
    formula: CnfFormula,
    parameters: QaoaParameters | None = None,
    budget_seconds: float | None = None,
) -> BaselineResult:
    """Deprecated: use a :class:`repro.CompilerSession` with budgets.

    Kept as a thin shim over the internal budgeted runner so pre-registry
    sweeps keep working.
    """
    warnings.warn(
        "run_with_timeout is deprecated; use repro.CompilerSession "
        "(budgets={...}) or repro.compile(..., budget_seconds=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_with_timeout(compiler, formula, parameters, budget_seconds)
