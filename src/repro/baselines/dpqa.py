"""DPQA-like baseline compiler [94].

DPQA ("Dynamically Field-Programmable Qubit Arrays", Tan et al. 2024)
compiles by *solving* the scheduling problem: an SMT solver assigns 2-qubit
gates to Rydberg stages and atoms to AOD positions, minimizing stages.
Solver-based compilation is exponential in the gate count (Table 2:
O(2^K)): it produces excellent schedules on small instances — few pulses,
heavy atom movement — and blows through any time budget on larger ones
(the paper's DPQA needed ~15 h for ten 20-variable instances and timed out
beyond that).

The re-implementation keeps the solver character without an SMT engine:
gates are scheduled stage by stage, and each stage is chosen as an exact
*maximum independent set* of the current front layer's conflict graph,
found by branch-and-bound.  Exact MIS is exponential in the front-layer
width, which grows with the variable count — so the compiler genuinely
completes at 20 variables and genuinely explodes on larger inputs, under
a cooperative deadline.
"""

from __future__ import annotations

import math
import time

from ..circuits import QuantumCircuit
from ..fpqa.hardware import FPQAHardwareParams
from ..passes.native_synthesis import nativize_circuit
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula
from .base import BaselineCompiler, BaselineResult, Deadline


def _greedy_independent_set(
    adjacency: dict[int, set[int]], nodes: list[int]
) -> list[int]:
    """Min-degree greedy MIS used to warm-start the exact search."""
    chosen: list[int] = []
    candidates = set(nodes)
    while candidates:
        node = min(candidates, key=lambda n: len(adjacency[n] & candidates))
        chosen.append(node)
        candidates -= adjacency[node]
        candidates.discard(node)
    return chosen


def _max_independent_set(
    adjacency: dict[int, set[int]],
    nodes: list[int],
    qubits_of: dict[int, tuple[int, int]],
    deadline: Deadline | None,
) -> list[int]:
    """Exact maximum independent set via branch-and-bound.

    Branches on the highest-degree node (include/exclude), pruned by the
    qubit-capacity bound: an independent set of gate nodes occupies two
    distinct qubits per gate, so at most ``distinct_qubits // 2`` more
    gates can join.  A greedy solution warm-starts the incumbent.  Still
    worst-case exponential in the node count — that is the point (see
    module docstring).
    """
    best = _greedy_independent_set(adjacency, nodes)
    calls = 0

    def qubit_bound(candidates: list[int]) -> int:
        qubits: set[int] = set()
        for node in candidates:
            qubits.update(qubits_of[node])
        return len(qubits) // 2

    def recurse(candidates: list[int], chosen: list[int]) -> None:
        nonlocal best, calls
        calls += 1
        if deadline is not None and calls % 256 == 0:
            deadline.check()
        if not candidates:
            if len(chosen) > len(best):
                best = list(chosen)
            return
        if len(chosen) + qubit_bound(candidates) <= len(best):
            return
        pivot = max(candidates, key=lambda n: len(adjacency[n] & set(candidates)))
        # Branch 1: include the pivot.
        remaining = [n for n in candidates if n != pivot and n not in adjacency[pivot]]
        recurse(remaining, chosen + [pivot])
        # Branch 2: exclude the pivot.
        recurse([n for n in candidates if n != pivot], chosen)

    recurse(list(nodes), [])
    return best


class DpqaCompiler(BaselineCompiler):
    name = "dpqa"

    def __init__(self, hardware: FPQAHardwareParams | None = None):
        self.hardware = hardware or FPQAHardwareParams()
        #: Average atom travel per rearrangement phase: DPQA moves whole
        #: AOD rows/columns across the array between stages.
        self.stage_move_um = 100.0
        #: Each stage rearranges rows and columns in separate phases.
        self.moves_per_stage = 2

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        start = time.perf_counter()
        circuit = self._qaoa(formula, parameters)
        # DPQA consumes the raw gate stream (no U3 fusion in its pipeline).
        native = nativize_circuit(circuit, fuse=False)
        stages, oneq_gates = self._schedule(native, deadline)
        hw = self.hardware
        num_2q = sum(len(stage) for stage in stages)
        duration_us = (
            len(stages)
            * (
                hw.rydberg_pulse_duration_us
                + self.moves_per_stage * hw.shuttle_duration_us(self.stage_move_um)
                + 2.0 * hw.transfer_duration_us
            )
            + oneq_gates * hw.raman_local_duration_us
            + hw.measurement_duration_us
        )
        # Per-pulse error accumulation (§8.4): one global Rydberg pulse per
        # stage, one Raman pulse per 1q gate, and one batched transfer
        # window per pick-up/drop of each rearrangement phase.
        log_eps = (
            len(stages) * math.log(hw.fidelity_cz)
            + oneq_gates * math.log(hw.fidelity_raman_local)
            + 2 * self.moves_per_stage * len(stages) * math.log(hw.fidelity_transfer)
            + formula.num_vars * math.log(hw.fidelity_measurement)
        )
        log_eps += -duration_us * formula.num_vars / hw.t2_us
        elapsed = time.perf_counter() - start
        # Pulses: one global Rydberg per stage, one Raman per 1q gate, one
        # grouped move per stage boundary.
        num_pulses = len(stages) * 2 + oneq_gates
        return BaselineResult(
            compiler=self.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=elapsed,
            execution_seconds=duration_us * 1e-6,
            eps=math.exp(log_eps),
            num_pulses=num_pulses,
            extra={"num_stages": len(stages), "num_2q": num_2q},
        )

    # ------------------------------------------------------------------
    def _schedule(
        self, circuit: QuantumCircuit, deadline: Deadline | None
    ) -> tuple[list[list[int]], int]:
        """Solve the 2-qubit gate *set* into Rydberg stages (exact MIS).

        DPQA's input format is an unordered set of two-qubit gates
        (§A.4.1: "a .json file with sets of two-qubit gates") — for QAOA
        cost layers all entangling terms commute, so the solver is free to
        schedule them in any order.  Each stage is an exact maximum
        independent set of the remaining gates' qubit-conflict graph,
        found by branch-and-bound: excellent schedules on small inputs,
        exponential blow-up on larger ones.
        """
        oneq_gates = sum(
            1
            for inst in circuit.instructions
            if inst.gate.is_unitary and len(inst.qubits) == 1
        )
        # One node per gate instance, exactly as the SMT encoding sees it.
        gate_pairs: list[tuple[int, int]] = []
        for inst in circuit.instructions:
            if inst.gate.is_unitary and len(inst.qubits) == 2:
                gate_pairs.append((min(inst.qubits), max(inst.qubits)))
        qubits_of = dict(enumerate(gate_pairs))
        remaining = list(range(len(gate_pairs)))
        stages: list[list[tuple[int, int]]] = []
        while remaining:
            if deadline is not None:
                deadline.check()
            adjacency: dict[int, set[int]] = {}
            by_qubit: dict[int, list[int]] = {}
            for i in remaining:
                adjacency[i] = set()
                for q in qubits_of[i]:
                    by_qubit.setdefault(q, []).append(i)
            for users in by_qubit.values():
                for a in users:
                    adjacency[a].update(u for u in users if u != a)
            stage_nodes = _max_independent_set(
                adjacency, remaining, qubits_of, deadline
            )
            stages.append([qubits_of[i] for i in stage_nodes])
            stage_set = set(stage_nodes)
            remaining = [i for i in remaining if i not in stage_set]
        return stages, oneq_gates
