"""Superconducting baseline: the Qiskit-style transpiler path (§8.1).

Limited to the 127 qubits of the Washington model — the paper runs this
baseline only up to 100 variables for the same reason (Fig. 8 caption).
"""

from __future__ import annotations

import time

from ..exceptions import RoutingError
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula
from ..superconducting.backend import SuperconductingBackend, washington_backend
from ..superconducting.transpiler import SuperconductingTranspiler
from .base import BaselineCompiler, BaselineResult, Deadline


class SuperconductingCompiler(BaselineCompiler):
    name = "superconducting"

    def __init__(self, backend: SuperconductingBackend | None = None, seed: int = 0):
        self.backend = backend or washington_backend()
        self.seed = seed

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        start = time.perf_counter()
        if formula.num_vars > self.backend.num_qubits:
            raise RoutingError(
                f"{formula.num_vars} variables exceed the "
                f"{self.backend.num_qubits}-qubit backend"
            )
        circuit = self._qaoa(formula, parameters)
        transpiler = SuperconductingTranspiler(self.backend, seed=self.seed)
        result = transpiler.transpile(circuit)
        elapsed = time.perf_counter() - start
        if deadline is not None:
            deadline.check()
        return BaselineResult(
            compiler=self.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=elapsed,
            execution_seconds=result.duration_us * 1e-6,
            eps=result.eps,
            num_pulses=None,  # not an FPQA target
            extra={
                "num_swaps": result.num_swaps,
                "counts": result.counts,
                "depth": result.circuit.depth(),
            },
        )
