"""Geyser-like baseline compiler [68].

Geyser compiles to neutral atoms *without* movement: qubits sit on a fixed
triangular lattice, the circuit is aggregated into blocks acting on at
most three mutually-adjacent qubits, and each block is re-synthesized
("composed") into a pulse sequence.  Its compilation cost is quadratic in
the number of circuit operations (Table 2: O(K^2)) because block
composition repeatedly scans the remaining circuit for mergeable
operations — which is why the original times out beyond 20 variables under
the paper's 20-hour budget.

The re-implementation keeps all of those traits: SWAP-based routing on a
triangular lattice (movement-free), greedy 3-qubit blocking, and an
honest O(K^2) peephole pass over the blocked circuit (with cooperative
deadline checks).  Per the paper, Geyser's block approximation makes EPS
comparisons unfair, so ``eps`` is reported as ``None`` (Fig. 12 excludes
it the same way).
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..circuits import QuantumCircuit
from ..fpqa.hardware import FPQAHardwareParams
from ..passes.native_synthesis import nativize_circuit
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula
from ..superconducting.coupling import CouplingMap
from ..superconducting.sabre import SabreRouter
from .base import BaselineCompiler, BaselineResult, Deadline


def triangular_coupling(num_qubits: int) -> CouplingMap:
    """A triangular lattice: square grid plus one diagonal per cell."""
    side = math.isqrt(num_qubits)
    if side * side < num_qubits:
        side += 1
    edges = []
    for r in range(side):
        for c in range(side):
            idx = r * side + c
            if c + 1 < side:
                edges.append((idx, idx + 1))
            if r + 1 < side:
                edges.append((idx, idx + side))
                if c + 1 < side:
                    edges.append((idx, idx + side + 1))
    return CouplingMap(side * side, edges)


class GeyserCompiler(BaselineCompiler):
    name = "geyser"

    def __init__(self, hardware: FPQAHardwareParams | None = None, seed: int = 0):
        self.hardware = hardware or FPQAHardwareParams()
        self.seed = seed

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        start = time.perf_counter()
        circuit = self._qaoa(formula, parameters)
        native = nativize_circuit(circuit)
        coupling = triangular_coupling(formula.num_vars)
        router = SabreRouter(coupling, seed=self.seed)
        routing = router.route(native)
        if deadline is not None:
            deadline.check()
        blocked, num_blocks = self._block_circuit(routing.circuit, deadline)
        pulses = self._compose_blocks(blocked, deadline)
        duration_us = self._execution_time_us(blocked)
        elapsed = time.perf_counter() - start
        return BaselineResult(
            compiler=self.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=elapsed,
            execution_seconds=duration_us * 1e-6,
            eps=None,  # excluded from Fig. 12, see module docstring
            num_pulses=pulses,
            extra={"num_blocks": num_blocks, "swaps": routing.num_swaps},
        )

    # ------------------------------------------------------------------
    def _block_circuit(
        self, circuit: QuantumCircuit, deadline: Deadline | None
    ) -> tuple[list[list], int]:
        """Greedy aggregation into blocks over at most three qubits."""
        blocks: list[list] = []
        current_ops: list = []
        current_qubits: set[int] = set()
        for inst in circuit.instructions:
            if deadline is not None and len(blocks) % 64 == 0:
                deadline.check()
            if inst.name in ("barrier", "measure"):
                continue
            qubits = set(inst.qubits)
            if len(current_qubits | qubits) <= 3:
                current_ops.append(inst)
                current_qubits |= qubits
            else:
                if current_ops:
                    blocks.append(current_ops)
                current_ops = [inst]
                current_qubits = qubits
        if current_ops:
            blocks.append(current_ops)
        return blocks, len(blocks)

    def _compose_blocks(self, blocks: list[list], deadline: Deadline | None) -> int:
        """Pulse composition: the genuinely quadratic optimization stage.

        Two parts mirror Geyser's cost profile:

        * a *global* O(K^2) composition scan — every pair of operations in
          the circuit is tested as a candidate for cross-block
          re-composition (Geyser repeatedly re-synthesizes block unitaries
          against the rest of the circuit, which is where its Table-2
          complexity comes from); and
        * a per-block merge of single-qubit runs that determines the final
          pulse count.

        Returns the pulse count: merged single-qubit runs are one Raman
        pulse, entangling ops two pulses, plus a 3-pulse boundary overhead
        per composed block.
        """
        flat_ops = [op for block in blocks for op in block]
        keys = [op.qubits for op in flat_ops]
        is_1q = [len(op.qubits) == 1 for op in flat_ops]
        total = len(flat_ops)
        recompose_candidates = 0
        # Every operation pair is scored for cross-block re-composition by
        # the overlap of their block-local (3-qubit) unitaries — the
        # numerical heart of Geyser's pulse composition, and the source of
        # its O(K^2) compile cost.
        local_unitaries = []
        for op in flat_ops:
            matrix = op.gate.matrix()
            embedded = np.kron(np.eye(8 // matrix.shape[0], dtype=complex), matrix)
            local_unitaries.append(embedded)
        for i in range(total):
            if deadline is not None and i % 16 == 0:
                deadline.check()
            key_i = keys[i]
            oneq_i = is_1q[i]
            unitary_i = local_unitaries[i].conj().T
            for j in range(i + 1, total):
                overlap = np.trace(unitary_i @ local_unitaries[j])
                if abs(overlap) >= 8.0 - 1e-9 and oneq_i and is_1q[j] and key_i == keys[j]:
                    recompose_candidates += 1

        total_pulses = 0
        for block in blocks:
            ops = list(block)
            merged = [False] * len(ops)
            for i in range(len(ops)):
                if merged[i]:
                    continue
                for j in range(i + 1, len(ops)):
                    if merged[j]:
                        continue
                    same_qubits = ops[i].qubits == ops[j].qubits
                    disjoint_between = all(
                        merged[k] or not (set(ops[k].qubits) & set(ops[i].qubits))
                        for k in range(i + 1, j)
                    )
                    if (
                        same_qubits
                        and len(ops[i].qubits) == 1
                        and len(ops[j].qubits) == 1
                        and disjoint_between
                    ):
                        merged[j] = True
            kept = [op for op, gone in zip(ops, merged) if not gone]
            for op in kept:
                total_pulses += 1 if len(op.qubits) == 1 else 2
            total_pulses += 3  # block boundary pulses (basis changes)
        return total_pulses

    def _execution_time_us(self, blocks: list[list]) -> float:
        """No movement: blocks execute back to back with pulse durations."""
        hw = self.hardware
        total = 0.0
        for block in blocks:
            for op in block:
                if len(op.qubits) == 1:
                    total += hw.raman_local_duration_us
                else:
                    total += hw.rydberg_pulse_duration_us
        return total + hw.measurement_duration_us
