"""Atomique-like baseline compiler [102].

Atomique compiles to reconfigurable atom arrays with two key traits the
paper contrasts against Weaver: (1) a SABRE-derived qubit mapping stage —
the source of its O(N^3) complexity (Table 2) — and (2) *movement-based*
routing: instead of SWAP gates, non-adjacent interactions are served by
physically moving AOD-held atoms, and (3) no use of native 3-qubit gates,
so every clause costs its full CNOT-ladder in CZ pulses.

We reproduce that structure: the QAOA circuit is nativized to {U3, CZ},
SABRE maps/routes it onto a square atom grid, and every SWAP the router
would insert is reinterpreted as an atom move (costing movement time but
no gate error).  Metrics follow the paper's models: execution time from
dependency-layer scheduling with FPQA pulse/move durations, EPS from pulse
fidelities and idle decoherence.
"""

from __future__ import annotations

import math
import time

from ..circuits import dependency_layers
from ..fpqa.hardware import FPQAHardwareParams
from ..passes.native_synthesis import nativize_circuit
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula
from ..superconducting.coupling import grid_coupling
from ..superconducting.sabre import SabreRouter
from .base import BaselineCompiler, BaselineResult, Deadline


class AtomiqueCompiler(BaselineCompiler):
    name = "atomique"

    def __init__(self, hardware: FPQAHardwareParams | None = None, seed: int = 0):
        self.hardware = hardware or FPQAHardwareParams()
        self.seed = seed
        #: Grid pitch of the fixed atom array (Atomique uses generous
        #: spacing so resting atoms never interact).
        self.grid_pitch_um = 20.0

    def compile_formula(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        deadline: Deadline | None = None,
    ) -> BaselineResult:
        start = time.perf_counter()
        circuit = self._qaoa(formula, parameters)
        # Atomique's pipeline compiles the raw gate stream (no U3 fusion).
        native = nativize_circuit(circuit, fuse=False)
        side = math.isqrt(formula.num_vars)
        if side * side < formula.num_vars:
            side += 1
        coupling = grid_coupling(side, side)
        router = SabreRouter(coupling, seed=self.seed)
        routing = router.route(native)
        if deadline is not None:
            deadline.check()
        routed = routing.circuit
        counts = {"1q": 0, "cz": 0, "move": 0, "measure": 0}
        for inst in routed.instructions:
            if inst.name == "barrier":
                continue
            if inst.name == "measure":
                counts["measure"] += 1
            elif inst.name == "swap":
                counts["move"] += 1  # an array rearrangement, not a gate
            elif len(inst.qubits) == 2:
                counts["cz"] += 1
            else:
                counts["1q"] += 1

        cz_pulses = sum(
            1
            for layer in dependency_layers(routed)
            if any(inst.name == "cz" for inst in layer)
        )
        duration_us = self._execution_time_us(routed, side)
        eps = self._eps(counts, cz_pulses, duration_us, formula.num_vars)
        elapsed = time.perf_counter() - start
        num_pulses = counts["1q"] + counts["cz"] + counts["move"]
        return BaselineResult(
            compiler=self.name,
            workload=formula.name,
            num_vars=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=elapsed,
            execution_seconds=duration_us * 1e-6,
            eps=eps,
            num_pulses=num_pulses,
            extra={"counts": counts, "moves": routing.num_swaps},
        )

    def _rearrangement_us(self, side: int) -> float:
        """Duration of one AOD array rearrangement.

        Atomique moves whole AOD rows/columns over the static array to
        re-align interacting pairs; a rearrangement travels on the order of
        half the array width.  Atoms stay in their AOD traps, so no trap
        transfer is involved.
        """
        travel_um = 0.5 * side * self.grid_pitch_um
        return self.hardware.shuttle_duration_us(travel_um, loaded=True)

    def _execution_time_us(self, routed, side: int) -> float:
        """ASAP layer scheduling with FPQA durations; moves dominate."""
        hw = self.hardware
        move_us = self._rearrangement_us(side)
        total = 0.0
        for layer in dependency_layers(routed):
            slowest = 0.0
            for inst in layer:
                if inst.name == "measure":
                    continue  # single global readout added below
                if inst.name == "swap":
                    dur = move_us
                elif len(inst.qubits) == 2:
                    dur = hw.rydberg_pulse_duration_us
                else:
                    dur = hw.raman_local_duration_us
                slowest = max(slowest, dur)
            total += slowest
        return total + hw.measurement_duration_us

    def _eps(
        self, counts: dict[str, int], cz_pulses: int, duration_us: float, num_vars: int
    ) -> float:
        """Per-pulse error accumulation (§8.4).

        CZ gates scheduled in the same dependency layer share one global
        Rydberg pulse; single-qubit gates are individually addressed Raman
        pulses; atoms enter/leave the AOD only at the array boundary.
        """
        hw = self.hardware
        log_eps = (
            counts["1q"] * math.log(hw.fidelity_raman_local)
            + cz_pulses * math.log(hw.fidelity_cz)
            + 2 * num_vars * math.log(hw.fidelity_transfer)
            + num_vars * math.log(hw.fidelity_measurement)
        )
        log_eps += -duration_us * num_vars / hw.t2_us
        return math.exp(log_eps)
