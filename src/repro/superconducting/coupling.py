"""Coupling maps for fixed-connectivity superconducting devices.

Superconducting QPUs have static qubit connectivity (paper §2.2/§2.3,
Figure 2 top); two-qubit gates are only possible between physically linked
qubits, which is what forces SWAP insertion during routing.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import RoutingError


class CouplingMap:
    """Undirected connectivity graph over physical qubits."""

    def __init__(self, num_qubits: int, edges: list[tuple[int, int]]):
        if num_qubits < 1:
            raise RoutingError("coupling map needs at least one qubit")
        self.num_qubits = num_qubits
        self.adjacency: list[set[int]] = [set() for _ in range(num_qubits)]
        for a, b in edges:
            if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise RoutingError(f"invalid edge ({a}, {b})")
            self.adjacency[a].add(b)
            self.adjacency[b].add(a)
        self._distance: np.ndarray | None = None

    @property
    def edges(self) -> list[tuple[int, int]]:
        out = []
        for a in range(self.num_qubits):
            for b in self.adjacency[a]:
                if a < b:
                    out.append((a, b))
        return out

    def are_connected(self, a: int, b: int) -> bool:
        return b in self.adjacency[a]

    def neighbors(self, qubit: int) -> set[int]:
        return self.adjacency[qubit]

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (BFS per qubit, cached)."""
        if self._distance is not None:
            return self._distance
        n = self.num_qubits
        dist = np.full((n, n), np.inf)
        for source in range(n):
            dist[source, source] = 0
            queue = deque([source])
            while queue:
                node = queue.popleft()
                for neigh in self.adjacency[node]:
                    if np.isinf(dist[source, neigh]):
                        dist[source, neigh] = dist[source, node] + 1
                        queue.append(neigh)
        if np.isinf(dist).any():
            raise RoutingError("coupling map is disconnected")
        self._distance = dist
        return dist

    def is_connected(self) -> bool:
        try:
            self.distance_matrix()
        except RoutingError:
            return False
        return True


def line_coupling(num_qubits: int) -> CouplingMap:
    """A 1D chain — the simplest routing stress test."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def grid_coupling(rows: int, cols: int) -> CouplingMap:
    """A rows x cols square lattice."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c
            if c + 1 < cols:
                edges.append((idx, idx + 1))
            if r + 1 < rows:
                edges.append((idx, idx + cols))
    return CouplingMap(rows * cols, edges)


def heavy_hex_coupling(
    long_rows: int = 7, row_length: int = 15
) -> CouplingMap:
    """A heavy-hex lattice shaped like IBM's 127-qubit Eagle (Washington).

    The lattice alternates long horizontal rows of qubits with sparse
    connector qubits bridging adjacent rows; connector columns shift by two
    sites between row gaps, producing the brick-like heavy-hexagon cells.
    With the defaults (7 rows of 15, first and last rows trimmed by one,
    connectors every 4 columns) the map has exactly 127 qubits and maximum
    degree 3, matching ibm_washington's published characteristics.
    """
    index: dict[tuple[str, int, int], int] = {}
    counter = 0

    def row_sites(row: int) -> list[int]:
        # The last row is one qubit short, which lands the default
        # configuration on exactly 127 qubits like the Eagle chip.
        if row == long_rows - 1:
            return list(range(row_length - 1))
        return list(range(row_length))

    for row in range(long_rows):
        for col in row_sites(row):
            index[("r", row, col)] = counter
            counter += 1
    for gap in range(long_rows - 1):
        offset = 0 if gap % 2 == 0 else 2
        for col in range(offset, row_length, 4):
            if col in row_sites(gap) and col in row_sites(gap + 1):
                index[("c", gap, col)] = counter
                counter += 1

    edges: list[tuple[int, int]] = []
    for row in range(long_rows):
        sites = row_sites(row)
        for col_a, col_b in zip(sites, sites[1:]):
            edges.append((index[("r", row, col_a)], index[("r", row, col_b)]))
    for gap in range(long_rows - 1):
        offset = 0 if gap % 2 == 0 else 2
        for col in range(offset, row_length, 4):
            key = ("c", gap, col)
            if key in index:
                edges.append((index[("r", gap, col)], index[key]))
                edges.append((index[key], index[("r", gap + 1, col)]))
    return CouplingMap(counter, edges)
