"""Superconducting backend model (IBM Washington-style calibration).

Carries the coupling map plus gate durations, error rates, readout
characteristics and coherence times.  Default numbers are representative
of published ibm_washington calibration data: ~35 ns single-qubit gates at
3e-4 error, ~450 ns CX at ~1.2e-2 error, ~0.9 us readout at ~1.3e-2 error,
and ~100 us coherence times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import CompilationError
from .coupling import CouplingMap, heavy_hex_coupling


@dataclass(frozen=True)
class SuperconductingBackend:
    """A fixed-coupling superconducting device model.

    Durations are microseconds; error rates are probabilities per
    operation.
    """

    name: str
    coupling: CouplingMap
    duration_1q_us: float = 0.035
    duration_2q_us: float = 0.45
    duration_readout_us: float = 0.9
    error_1q: float = 3.0e-4
    error_2q: float = 1.2e-2
    error_readout: float = 1.3e-2
    t1_us: float = 100.0
    t2_us: float = 95.0
    #: Optional per-edge 2q error calibration, keyed by sorted qubit pair.
    #: Real devices show order-of-magnitude scatter across couplers; the
    #: noise-aware layout exploits it.  ``None`` means uniform errors.
    edge_errors: dict[tuple[int, int], float] | None = None

    def __post_init__(self) -> None:
        for field_name in ("error_1q", "error_2q", "error_readout"):
            value = getattr(self, field_name)
            if not 0.0 <= value < 1.0:
                raise CompilationError(f"{field_name} must be in [0, 1), got {value}")
        if self.edge_errors is not None:
            for pair, value in self.edge_errors.items():
                if not self.coupling.are_connected(*pair):
                    raise CompilationError(f"calibration for non-edge {pair}")
                if not 0.0 <= value < 1.0:
                    raise CompilationError(f"edge error {value} out of range")

    def edge_error(self, a: int, b: int) -> float:
        """2q error of a specific coupler (falls back to the uniform rate)."""
        if self.edge_errors is None:
            return self.error_2q
        return self.edge_errors.get((min(a, b), max(a, b)), self.error_2q)

    @property
    def num_qubits(self) -> int:
        return self.coupling.num_qubits

    def with_overrides(self, **kwargs) -> "SuperconductingBackend":
        return replace(self, **kwargs)

    def fidelity_1q(self) -> float:
        return 1.0 - self.error_1q

    def fidelity_2q(self) -> float:
        return 1.0 - self.error_2q

    def fidelity_readout(self) -> float:
        return 1.0 - self.error_readout


def washington_backend() -> SuperconductingBackend:
    """The 127-qubit heavy-hex model used as the paper's SC target (§8.1)."""
    return SuperconductingBackend(name="washington-model", coupling=heavy_hex_coupling())


def calibrated_washington_backend(seed: int = 0) -> SuperconductingBackend:
    """Washington model with realistic per-coupler calibration scatter.

    Published calibration snapshots show CX errors log-normally scattered
    around the median, with a tail of couplers several times worse; this
    generator reproduces that structure deterministically from ``seed``.
    """
    import numpy as np

    coupling = heavy_hex_coupling()
    rng = np.random.default_rng(seed)
    base = SuperconductingBackend(name=f"washington-cal-{seed}", coupling=coupling)
    errors = {}
    for a, b in coupling.edges:
        scatter = float(rng.lognormal(mean=0.0, sigma=0.6))
        errors[(min(a, b), max(a, b))] = min(base.error_2q * scatter, 0.5)
    return base.with_overrides(edge_errors=errors)
