"""SABRE swap routing (Li, Ding, Xie — ASPLOS'19).

The paper attributes Qiskit's and Atomique's O(N^3) compile complexity to
SABRE (Table 2), so this is the routing algorithm our superconducting path
and Atomique baseline must actually run.  The implementation follows the
published heuristic: a front layer of unresolved 2-qubit gates, candidate
SWAPs drawn from edges touching front-layer qubits, scored by the summed
coupling-graph distance of front-layer gates plus a decayed lookahead term
over an extended set, with a decay factor discouraging ping-ponging the
same qubit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits import CircuitDag, Instruction, QuantumCircuit
from ..circuits.gates import Gate
from ..exceptions import RoutingError
from .coupling import CouplingMap

_SWAP_GATE = Gate("swap", 2)

_EXTENDED_SET_SIZE = 20
_EXTENDED_SET_WEIGHT = 0.5
_DECAY_INCREMENT = 0.001
_DECAY_RESET_INTERVAL = 5


@dataclass
class RoutingResult:
    """Routed circuit plus the mapping bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: list[int]
    final_layout: list[int]
    num_swaps: int = 0
    #: logical -> physical at circuit end (follows from final_layout).
    stats: dict = field(default_factory=dict)


class SabreRouter:
    """Routes a circuit onto a coupling map with SABRE-style SWAPs."""

    def __init__(self, coupling: CouplingMap, seed: int = 0, lookahead: bool = True):
        self.coupling = coupling
        self.seed = seed
        self.lookahead = lookahead

    # ------------------------------------------------------------------
    def route(
        self, circuit: QuantumCircuit, initial_layout: list[int] | None = None
    ) -> RoutingResult:
        """Insert SWAPs so every 2-qubit gate acts on coupled qubits.

        ``initial_layout[logical] = physical``.  Gates with three or more
        qubits must be decomposed before routing (as in Qiskit).
        """
        n_logical = circuit.num_qubits
        n_physical = self.coupling.num_qubits
        if n_logical > n_physical:
            raise RoutingError(
                f"circuit needs {n_logical} qubits but the device has {n_physical}"
            )
        for inst in circuit.instructions:
            if inst.gate.is_unitary and len(inst.qubits) > 2:
                raise RoutingError(
                    f"gate {inst.name!r} on {len(inst.qubits)} qubits must be "
                    "decomposed before routing"
                )
        layout = list(initial_layout) if initial_layout else list(range(n_logical))
        if len(set(layout)) != len(layout):
            raise RoutingError("initial layout assigns two qubits to one site")
        phys_of = dict(enumerate(layout))  # logical -> physical
        distance = self.coupling.distance_matrix()

        dag = CircuitDag(circuit)
        remaining_preds = [len(p) for p in dag.predecessors]
        front = [i for i, count in enumerate(remaining_preds) if count == 0]
        routed = QuantumCircuit(
            n_physical, circuit.num_clbits, name=f"{circuit.name}-routed"
        )
        decay = np.ones(n_physical)
        num_swaps = 0
        executed = 0
        steps_since_progress = 0

        def is_executable(index: int) -> bool:
            inst = circuit.instructions[index]
            if not inst.gate.is_unitary or len(inst.qubits) < 2:
                return True
            a, b = inst.qubits
            return self.coupling.are_connected(phys_of[a], phys_of[b])

        def execute(index: int) -> None:
            nonlocal executed
            inst = circuit.instructions[index]
            routed.instructions.append(
                Instruction(
                    inst.gate,
                    tuple(phys_of[q] for q in inst.qubits),
                    inst.clbits,
                )
            )
            executed += 1
            for succ in dag.successors[index]:
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    front.append(succ)

        while front:
            progressed = True
            while progressed:
                progressed = False
                for index in list(front):
                    if is_executable(index):
                        front.remove(index)
                        execute(index)
                        progressed = True
            if not front:
                break
            steps_since_progress += 1
            if steps_since_progress > 10 * n_physical:
                raise RoutingError("SABRE failed to make progress; check coupling map")
            # Candidate swaps: edges touching a front-layer logical qubit.
            front_gates = [
                circuit.instructions[i]
                for i in front
                if circuit.instructions[i].gate.is_unitary
                and len(circuit.instructions[i].qubits) == 2
            ]
            active_phys = {phys_of[q] for g in front_gates for q in g.qubits}
            candidates: set[tuple[int, int]] = set()
            for phys in active_phys:
                for neigh in self.coupling.neighbors(phys):
                    candidates.add((min(phys, neigh), max(phys, neigh)))
            extended = self._extended_set(circuit, dag, front, remaining_preds)
            best_swap = None
            best_score = float("inf")
            logical_of = {p: l for l, p in phys_of.items()}
            for a, b in sorted(candidates):
                trial = dict(phys_of)
                la, lb = logical_of.get(a), logical_of.get(b)
                if la is not None:
                    trial[la] = b
                if lb is not None:
                    trial[lb] = a
                score = self._score(
                    front_gates, extended, trial, distance
                ) * max(decay[a], decay[b])
                if score < best_score - 1e-12:
                    best_score = score
                    best_swap = (a, b)
            if best_swap is None:
                raise RoutingError("no candidate swaps; disconnected coupling map?")
            a, b = best_swap
            routed.instructions.append(Instruction(_SWAP_GATE, (a, b)))
            num_swaps += 1
            la, lb = logical_of.get(a), logical_of.get(b)
            if la is not None:
                phys_of[la] = b
            if lb is not None:
                phys_of[lb] = a
            decay[a] += _DECAY_INCREMENT
            decay[b] += _DECAY_INCREMENT
            if num_swaps % _DECAY_RESET_INTERVAL == 0:
                decay[:] = 1.0
            steps_since_progress = 0 if any(is_executable(i) for i in front) else steps_since_progress

        final_layout = [phys_of[q] for q in range(n_logical)]
        return RoutingResult(
            circuit=routed,
            initial_layout=layout,
            final_layout=final_layout,
            num_swaps=num_swaps,
            stats={"executed": executed, "swaps": num_swaps},
        )

    # ------------------------------------------------------------------
    def _extended_set(
        self,
        circuit: QuantumCircuit,
        dag: CircuitDag,
        front: list[int],
        remaining_preds: list[int],
    ) -> list[Instruction]:
        """Lookahead gates beyond the front layer (SABRE's extended set)."""
        if not self.lookahead:
            return []
        extended: list[Instruction] = []
        seen: set[int] = set(front)
        frontier = list(front)
        while frontier and len(extended) < _EXTENDED_SET_SIZE:
            next_frontier: list[int] = []
            for index in frontier:
                for succ in dag.successors[index]:
                    if succ in seen:
                        continue
                    seen.add(succ)
                    inst = circuit.instructions[succ]
                    if inst.gate.is_unitary and len(inst.qubits) == 2:
                        extended.append(inst)
                        if len(extended) >= _EXTENDED_SET_SIZE:
                            break
                    next_frontier.append(succ)
                if len(extended) >= _EXTENDED_SET_SIZE:
                    break
            frontier = next_frontier
        return extended

    @staticmethod
    def _score(
        front_gates: list[Instruction],
        extended: list[Instruction],
        mapping: dict[int, int],
        distance: np.ndarray,
    ) -> float:
        if not front_gates:
            return 0.0
        total = sum(
            distance[mapping[g.qubits[0]], mapping[g.qubits[1]]] for g in front_gates
        ) / len(front_gates)
        if extended:
            total += (
                _EXTENDED_SET_WEIGHT
                * sum(
                    distance[mapping[g.qubits[0]], mapping[g.qubits[1]]]
                    for g in extended
                )
                / len(extended)
            )
        return float(total)
