"""The full superconducting transpilation pipeline (the "Qiskit compiler").

Stages, mirroring Qiskit's preset pipeline: nativize to ``{U3, CZ}``,
expand multi-qubit gates, choose an initial layout, SABRE-route onto the
coupling map, translate to the transmon basis, then estimate duration and
EPS from the backend model.  This is the paper's superconducting baseline
and retargeting path (Figure 3 top; §8 baselines).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuits import QuantumCircuit, dependency_layers
from ..exceptions import RoutingError
from ..passes.native_synthesis import nativize_circuit
from .backend import SuperconductingBackend, washington_backend
from .basis import count_ibm_ops, to_ibm_basis
from .sabre import SabreRouter


@dataclass
class TranspileResult:
    """Routed + translated circuit with backend-model estimates."""

    circuit: QuantumCircuit
    backend: SuperconductingBackend
    initial_layout: list[int]
    final_layout: list[int]
    num_swaps: int
    compile_seconds: float
    duration_us: float
    eps: float
    counts: dict[str, int] = field(default_factory=dict)


def _greedy_layout(circuit: QuantumCircuit, backend: SuperconductingBackend) -> list[int]:
    """Interaction-aware initial layout.

    Orders logical qubits by 2-qubit interaction degree and places them
    along a BFS traversal of the coupling map from its highest-degree
    site, so heavily-interacting qubits start near each other.
    """
    interaction: dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    for a, b in circuit.two_qubit_pairs():
        interaction[a] += 1
        interaction[b] += 1
    logical_order = sorted(interaction, key=interaction.get, reverse=True)
    coupling = backend.coupling
    start = max(range(coupling.num_qubits), key=lambda q: len(coupling.neighbors(q)))
    seen = [start]
    seen_set = {start}
    frontier = [start]
    while frontier and len(seen) < coupling.num_qubits:
        next_frontier = []
        for node in frontier:
            for neigh in sorted(coupling.neighbors(node)):
                if neigh not in seen_set:
                    seen_set.add(neigh)
                    seen.append(neigh)
                    next_frontier.append(neigh)
        frontier = next_frontier
    layout = [0] * circuit.num_qubits
    for rank, logical in enumerate(logical_order):
        layout[logical] = seen[rank]
    return layout


def estimate_duration_us(
    circuit: QuantumCircuit, backend: SuperconductingBackend
) -> float:
    """Critical-path duration under the backend's gate times.

    Gates in the same dependency layer run in parallel; the duration of a
    layer is its slowest gate (ASAP scheduling).
    """
    total = 0.0
    for layer in dependency_layers(circuit):
        slowest = 0.0
        for inst in layer:
            if inst.name == "measure":
                dur = backend.duration_readout_us
            elif len(inst.qubits) >= 2:
                dur = backend.duration_2q_us
            else:
                dur = backend.duration_1q_us
            slowest = max(slowest, dur)
        total += slowest
    return total


def estimate_eps(
    circuit: QuantumCircuit,
    backend: SuperconductingBackend,
    duration_us: float | None = None,
) -> float:
    """Estimated probability of success on the backend model (§2.2).

    Multiplies per-gate and readout fidelities and applies a decoherence
    factor ``exp(-idle/T2)`` per active qubit, where ``idle`` is the time
    the qubit spends waiting (total duration minus its own gate time).
    """
    import math

    log_eps = 0.0
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        if inst.name == "measure":
            log_eps += math.log(backend.fidelity_readout())
        elif len(inst.qubits) >= 2:
            log_eps += math.log(1.0 - backend.edge_error(*inst.qubits[:2]))
        else:
            log_eps += math.log(backend.fidelity_1q())
    if duration_us is None:
        duration_us = estimate_duration_us(circuit, backend)
    busy: dict[int, float] = {}
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        if inst.name == "measure":
            dur = backend.duration_readout_us
        elif len(inst.qubits) >= 2:
            dur = backend.duration_2q_us
        else:
            dur = backend.duration_1q_us
        for qubit in inst.qubits:
            busy[qubit] = busy.get(qubit, 0.0) + dur
    for qubit, busy_time in busy.items():
        idle = max(duration_us - busy_time, 0.0)
        log_eps += -idle / backend.t2_us
    return math.exp(log_eps)


class SuperconductingTranspiler:
    """End-to-end superconducting compilation with metrics.

    ``layout_method``: ``"greedy"`` (interaction-aware BFS placement) or
    ``"noise"`` (noise-adaptive placement over per-coupler calibration,
    Murali et al. [61]; requires a backend with ``edge_errors``).
    """

    def __init__(
        self,
        backend: SuperconductingBackend | None = None,
        seed: int = 0,
        layout_method: str = "greedy",
    ):
        if layout_method not in ("greedy", "noise"):
            raise RoutingError(f"unknown layout method {layout_method!r}")
        self.backend = backend or washington_backend()
        self.seed = seed
        self.layout_method = layout_method

    def transpile(self, circuit: QuantumCircuit) -> TranspileResult:
        start = time.perf_counter()
        if circuit.num_qubits > self.backend.num_qubits:
            raise RoutingError(
                f"circuit has {circuit.num_qubits} qubits; backend "
                f"{self.backend.name} offers {self.backend.num_qubits}"
            )
        native = nativize_circuit(circuit)
        if self.layout_method == "noise":
            from .noise_layout import noise_aware_layout

            layout = noise_aware_layout(native, self.backend)
        else:
            layout = _greedy_layout(native, self.backend)
        router = SabreRouter(self.backend.coupling, seed=self.seed)
        routing = router.route(native, initial_layout=layout)
        ibm = to_ibm_basis(routing.circuit)
        elapsed = time.perf_counter() - start
        duration = estimate_duration_us(ibm, self.backend)
        eps = estimate_eps(ibm, self.backend, duration)
        return TranspileResult(
            circuit=ibm,
            backend=self.backend,
            initial_layout=routing.initial_layout,
            final_layout=routing.final_layout,
            num_swaps=routing.num_swaps,
            compile_seconds=elapsed,
            duration_us=duration,
            eps=eps,
            counts=count_ibm_ops(ibm),
        )
