"""Noise-adaptive initial layout (Murali et al., ASPLOS'19 [61]).

When the backend carries per-coupler calibration, this layout places the
busiest logical qubits on the lowest-error connected region of the chip:

1. score every physical qubit by the mean error of its couplers;
2. grow a connected region from the best-scored qubit, greedily absorbing
   the neighbor whose couplers into the region are cheapest;
3. BFS-order the region and assign busiest logical qubits first.

**Measured caveat** (see ``tests/test_noise_layout.py``): on a heavy-hex
topology at QAOA scale, the *shape* of the selected region dominates the
per-coupler gains — low-noise regions tend to be stringy (heavy-hex corner
degree is 1-2), which costs more SWAPs than the better couplers save.
This reproduces why the paper treats noise-aware mapping as an orthogonal
superconducting concern (§9) rather than a free win: it trades routing
freedom for calibration quality, and on rigid sparse topologies routing
usually wins.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit
from ..exceptions import RoutingError
from .backend import SuperconductingBackend


def _site_score(backend: SuperconductingBackend, qubit: int) -> float:
    neighbors = backend.coupling.neighbors(qubit)
    if not neighbors:
        return float("inf")
    return sum(backend.edge_error(qubit, n) for n in neighbors) / len(neighbors)


def noise_aware_layout(
    circuit: QuantumCircuit, backend: SuperconductingBackend
) -> list[int]:
    """``layout[logical] = physical`` minimizing expected coupler error."""
    n_logical = circuit.num_qubits
    coupling = backend.coupling
    if n_logical > coupling.num_qubits:
        raise RoutingError(
            f"{n_logical} logical qubits exceed the {coupling.num_qubits}-qubit device"
        )
    # Grow the least-noisy connected region of the right size.
    seed = min(range(coupling.num_qubits), key=lambda q: _site_score(backend, q))
    region = [seed]
    region_set = {seed}
    while len(region) < n_logical:
        frontier: dict[int, float] = {}
        for site in region:
            for neighbor in coupling.neighbors(site):
                if neighbor in region_set:
                    continue
                cost = min(
                    backend.edge_error(neighbor, member)
                    for member in region
                    if coupling.are_connected(neighbor, member)
                )
                frontier[neighbor] = min(frontier.get(neighbor, float("inf")), cost)
        if not frontier:
            raise RoutingError("device region exhausted while growing the layout")
        best = min(frontier, key=lambda q: (frontier[q], _site_score(backend, q)))
        region.append(best)
        region_set.add(best)

    # Within the low-noise region, place qubits with the same
    # interaction-aware BFS strategy as the default layout: busiest logical
    # qubits land earliest on a breadth-first ordering of the region, which
    # keeps heavy interaction partners adjacent and the SWAP count low —
    # the calibration gain must not be paid back in routing overhead.
    interaction: dict[int, int] = {q: 0 for q in range(n_logical)}
    for a, b in circuit.two_qubit_pairs():
        interaction[a] += 1
        interaction[b] += 1
    logical_order = sorted(interaction, key=interaction.get, reverse=True)
    start = min(region, key=lambda q: _site_score(backend, q))
    bfs = [start]
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in sorted(
                coupling.neighbors(node),
                key=lambda q: backend.edge_error(node, q),
            ):
                if neighbor in region_set and neighbor not in seen:
                    seen.add(neighbor)
                    bfs.append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    layout = [0] * n_logical
    for rank, logical in enumerate(logical_order):
        layout[logical] = bfs[rank]
    return layout
