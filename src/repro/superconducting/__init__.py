"""Superconducting compilation path (paper Figure 3, top arrow).

Weaver retargets wQasm programs to superconducting devices through a
Qiskit-style transpiler.  This package re-implements that substrate from
scratch: a Washington-like 127-qubit heavy-hex coupling map, SABRE swap
routing (Li et al., ASPLOS'19 — the O(N^3) stage in Table 2), translation
to the IBM native basis, and a calibration-style backend model used for
execution-time and fidelity estimates.
"""

from .coupling import CouplingMap, heavy_hex_coupling, line_coupling, grid_coupling
from .backend import SuperconductingBackend, washington_backend
from .sabre import SabreRouter, RoutingResult
from .basis import to_ibm_basis, to_u3_cz_basis
from .transpiler import SuperconductingTranspiler, TranspileResult

__all__ = [
    "CouplingMap",
    "RoutingResult",
    "SabreRouter",
    "SuperconductingBackend",
    "SuperconductingTranspiler",
    "TranspileResult",
    "grid_coupling",
    "heavy_hex_coupling",
    "line_coupling",
    "to_ibm_basis",
    "to_u3_cz_basis",
    "washington_backend",
]
