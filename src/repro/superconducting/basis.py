"""Basis translation for superconducting targets.

Two native sets: the shared hardware-agnostic ``{U3, CZ}`` basis of §7 and
the IBM transmon basis ``{RZ, SX, X, CX}`` used for duration and fidelity
accounting on the Washington model.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits import QuantumCircuit
from ..circuits.gates import u3_from_matrix
from ..exceptions import CompilationError
from ..passes.native_synthesis import fuse_single_qubit_runs, nativize_circuit

_ATOL = 1e-11


def to_u3_cz_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite into ``{U3, CZ}`` (alias of the shared nativizer)."""
    return nativize_circuit(circuit)


def _emit_zxzxz(out: QuantumCircuit, qubit: int, theta: float, phi: float, lam: float) -> None:
    """``U3(theta, phi, lam) = RZ(phi+pi) SX RZ(theta+pi) SX RZ(lam)``.

    The standard Qiskit ZXZXZ identity (up to global phase); zero-angle RZ
    gates are dropped.
    """

    def rz(angle: float) -> None:
        angle = math.remainder(angle, 2.0 * math.pi)
        if abs(angle) > _ATOL:
            out.rz(angle, qubit)

    rz(lam)
    out.sx(qubit)
    rz(theta + math.pi)
    out.sx(qubit)
    rz(phi + math.pi)


def to_ibm_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite into ``{RZ, SX, X, CX}`` with single-qubit runs fused first."""
    prepared = fuse_single_qubit_runs(circuit)
    out = QuantumCircuit(prepared.num_qubits, prepared.num_clbits, name=f"{circuit.name}-ibm")
    for inst in prepared.instructions:
        name = inst.name
        if name in ("barrier", "measure", "reset"):
            out.instructions.append(inst)
            continue
        qubits = inst.qubits
        if len(qubits) == 1:
            matrix = inst.gate.matrix()
            if np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-9) and np.allclose(
                np.abs(matrix), np.abs(np.eye(2)), atol=_ATOL
            ):
                # Diagonal single-qubit gate: a virtual RZ.
                angle = float(np.angle(matrix[1, 1] / matrix[0, 0]))
                if abs(angle) > _ATOL:
                    out.rz(angle, qubits[0])
                continue
            gate = u3_from_matrix(matrix)
            theta, phi, lam = gate.params
            _emit_zxzxz(out, qubits[0], theta, phi, lam)
            continue
        if name == "cx":
            out.cx(*qubits)
            continue
        if name == "cz":
            control, target = qubits
            _emit_zxzxz(out, target, math.pi / 2.0, 0.0, math.pi)
            out.cx(control, target)
            _emit_zxzxz(out, target, math.pi / 2.0, 0.0, math.pi)
            continue
        if name == "swap":
            a, b = qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
            continue
        raise CompilationError(
            f"gate {name!r} must be decomposed before IBM basis translation"
        )
    return out


def count_ibm_ops(circuit: QuantumCircuit) -> dict[str, int]:
    """Gate counts in the categories the backend model prices."""
    counts = {"1q": 0, "2q": 0, "measure": 0}
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        if inst.name == "measure":
            counts["measure"] += 1
        elif len(inst.qubits) == 1:
            counts["1q"] += 1
        else:
            counts["2q"] += 1
    return counts
