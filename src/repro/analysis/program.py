"""The pulse-IR dataflow pass: one linear walk over a wQasm program.

This is the static counterpart of the wChecker's dynamic replay.  Where
the checker reconstructs unitaries per operation (the paper's O(N^2 M)
layer), this pass drives the :class:`AbstractDeviceState` through the
instruction stream once and checks, per operation, that the *recorded*
logical gates are consistent with what the pulse would physically do:

* Raman pulses must rotate exactly the qubits their recorded gates name,
  by the same unitary (compared up to global phase, memoized per unique
  angle/gate pair — compiled programs reuse a handful of rotations);
* Rydberg pulses must entangle exactly the clusters the static geometry
  implies, with gate names matching cluster arity;
* occupancy, shuttle-order, and liveness invariants hold throughout.

The pass never simulates state vectors, which is what makes ``weaver
lint`` an order of magnitude cheaper than the checker on real programs.
"""

from __future__ import annotations

from ..circuits.gates import gate_matrix
from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import RamanGlobal, RamanLocal, RydbergPulse
from ..wqasm.program import AnnotatedOperation, WQasmProgram
from . import registry as R
from .diagnostics import SourceLocation
from .model import AbstractDeviceState, Sink

#: Rule families exercised by this pass (stamped into ``rules_run``).
PROGRAM_RULES = (
    R.LAYER_UNINITIALIZED, R.LAYER_REINITIALIZED, R.TRAP_SPACING,
    R.SHUTTLE_RANGE, R.SHUTTLE_ORDER, R.SHUTTLE_CONFLICT,
    R.DOUBLE_BIND, R.BIND_OCCUPIED, R.BIND_RANGE,
    R.TRANSFER_INVALID, R.TRANSFER_RANGE, R.TRANSFER_DISTANCE,
    R.READOUT_ORPHAN, R.RAMAN_UNBOUND,
    R.QUBIT_NEVER_BOUND, R.QUBIT_UNCOVERED, R.GATE_QUBIT_RANGE,
    R.CLUSTER_MISMATCH, R.CLUSTER_ARITY, R.CLUSTER_EQUIDISTANCE,
    R.RAMAN_GATE_MISMATCH, R.PULSE_GATE_ORPHAN,
)

_EXPECTED_CLUSTER_GATE = {2: "cz", 3: "ccz"}

_PULSE_TYPES = frozenset((RamanLocal, RamanGlobal, RydbergPulse))

#: (x, y, z, gate) -> whether Rz(z)Ry(y)Rx(x) equals the gate's unitary
#: up to global phase.  Compiled programs draw their rotations from a
#: small set (the wOptimizer's own Raman caches), so this stays tiny.
_raman_match_cache: dict[tuple, bool] = {}


def _raman_matches_gate(x: float, y: float, z: float, gate) -> bool:
    key = (x, y, z, gate.name, gate.params, gate.num_qubits)
    hit = _raman_match_cache.get(key)
    if hit is not None:
        return hit
    if gate.num_qubits != 1:
        _raman_match_cache[key] = False
        return False
    pulse = gate_matrix("raman", (x, y, z))
    try:
        recorded = gate.matrix()
    except Exception:  # noqa: BLE001 — malformed gate = mismatch, not crash
        _raman_match_cache[key] = False
        return False
    # Global-phase-insensitive comparison: align on the largest pulse entry.
    anchor = max(range(4), key=lambda i: abs(pulse.flat[i]))
    ref = recorded.flat[anchor]
    ok = False
    if abs(ref) > 1e-12:
        phase = pulse.flat[anchor] / ref
        ok = bool(abs(abs(phase) - 1.0) < 1e-9) and all(
            abs(pulse.flat[i] - phase * recorded.flat[i]) < 1e-7 for i in range(4)
        )
    _raman_match_cache[key] = ok
    return ok


class ProgramAnalyzer:
    """Single-pass abstract interpretation of one wQasm program."""

    def __init__(
        self,
        program: WQasmProgram,
        hardware: FPQAHardwareParams | None,
        sink: Sink,
    ):
        self.program = program
        self.hardware = hardware or FPQAHardwareParams()
        self.sink = sink
        self.state = AbstractDeviceState(self.hardware, sink)
        self.covered: set[int] = set()
        self.instructions_scanned = 0

    def report(
        self,
        rule: R.LintRule,
        message: str,
        location: SourceLocation,
        qubits: tuple[int, ...] = (),
    ) -> None:
        self.sink(rule.diagnostic(message, location=location, qubits=qubits))

    # ------------------------------------------------------------------
    def run(self) -> dict:
        state = self.state
        state.op_index = -1
        for index, instruction in enumerate(self.program.setup):
            state.instr_index = index
            state.apply(instruction)
            self.instructions_scanned += 1
        for op_index, operation in enumerate(self.program.operations):
            self._walk_operation(op_index, operation)
        self._finalize()
        return {
            "cluster_resolutions": self.state.cluster_resolutions,
            "qubits_covered": len(self.covered),
        }

    # ------------------------------------------------------------------
    def _walk_operation(self, op_index: int, operation: AnnotatedOperation) -> None:
        state = self.state
        state.op_index = op_index
        apply = state.apply
        is_pulse = _PULSE_TYPES.__contains__
        pulses: list[tuple[int, object]] = []
        index = -1
        for instruction in operation.instructions:
            index += 1
            state.instr_index = index
            # RydbergPulse is a no-op on state (clusters are resolved
            # lazily in the agreement check); skipping apply() keeps the
            # clean path to one dispatch per instruction.
            if is_pulse(type(instruction)):
                if type(instruction) is not RydbergPulse:
                    apply(instruction)
                pulses.append((index, instruction))
            else:
                apply(instruction)
        self.instructions_scanned += index + 1

        covered = self.covered
        for gate in operation.gates:
            covered.update(gate.qubits)

        if not pulses:
            if operation.gates:
                names = ", ".join(g.name for g in operation.gates[:4])
                self.report(
                    R.PULSE_GATE_ORPHAN,
                    f"operation records gate(s) {names} but contains no pulse",
                    SourceLocation(operation=op_index),
                )
            return
        if len(pulses) > 1:
            # Hand-written programs may batch several pulses under one
            # statement; the gate association is ambiguous, so the
            # agreement check conservatively stands down.
            return
        index, pulse = pulses[0]
        location = SourceLocation(operation=op_index, instruction=index)
        if isinstance(pulse, RamanLocal):
            self._check_raman_local(pulse, operation, location)
        elif isinstance(pulse, RamanGlobal):
            self._check_raman_global(pulse, operation, location)
        else:
            self._check_rydberg(operation, location)

    # ------------------------------------------------------------------
    def _check_raman_local(self, pulse, operation, location) -> None:
        gates = operation.gates
        if len(gates) != 1 or gates[0].qubits != (pulse.qubit,):
            recorded = [f"{g.name}{list(g.qubits)}" for g in gates] or ["nothing"]
            self.report(
                R.PULSE_GATE_ORPHAN,
                f"@raman local on qubit {pulse.qubit} records "
                f"{', '.join(recorded)}; expected exactly one gate on that qubit",
                location,
                qubits=(pulse.qubit,),
            )
            return
        if not _raman_matches_gate(pulse.x, pulse.y, pulse.z, gates[0].gate):
            self.report(
                R.RAMAN_GATE_MISMATCH,
                f"@raman local ({pulse.x:.4f}, {pulse.y:.4f}, {pulse.z:.4f}) "
                f"does not implement the recorded {gates[0].name} gate on "
                f"qubit {pulse.qubit}",
                location,
                qubits=(pulse.qubit,),
            )

    def _check_raman_global(self, pulse, operation, location) -> None:
        bound = set(self.state.qubit_location)
        recorded: set[int] = set()
        for gate in operation.gates:
            recorded.update(gate.qubits)
            if gate.gate.num_qubits != 1:
                self.report(
                    R.PULSE_GATE_ORPHAN,
                    f"@raman global records multi-qubit gate {gate.name}",
                    location,
                )
                return
        if recorded != bound:
            missing = sorted(bound - recorded)
            extra = sorted(recorded - bound)
            self.report(
                R.PULSE_GATE_ORPHAN,
                "@raman global drives every bound atom, but the recorded "
                f"gates disagree (unrecorded qubits {missing}, "
                f"recorded-but-unbound {extra})",
                location,
                qubits=tuple(missing + extra),
            )
        checked: set = set()
        for gate in operation.gates:
            key = (gate.name, gate.params)
            if key in checked:
                continue
            checked.add(key)
            if not _raman_matches_gate(pulse.x, pulse.y, pulse.z, gate.gate):
                self.report(
                    R.RAMAN_GATE_MISMATCH,
                    f"@raman global ({pulse.x:.4f}, {pulse.y:.4f}, {pulse.z:.4f}) "
                    f"does not implement the recorded {gate.name} gate",
                    location,
                )
                return

    def _check_rydberg(self, operation, location) -> None:
        clusters = self.state.resolve_clusters()
        implied: dict[frozenset[int], int] = {}
        for qubits, equidistant in clusters:
            implied[frozenset(qubits)] = len(qubits)
            if not equidistant:
                self.report(
                    R.CLUSTER_EQUIDISTANCE,
                    f"Rydberg cluster {list(qubits)} is not equidistant within "
                    f"{self.hardware.equidistance_tolerance_um} um; the digital "
                    "C^nZ semantics does not apply (§7)",
                    location,
                    qubits=qubits,
                )
        recorded: dict[frozenset[int], str] = {}
        for gate in operation.gates:
            recorded[frozenset(gate.qubits)] = gate.name
        for group in recorded.keys() - implied.keys():
            self.report(
                R.CLUSTER_MISMATCH,
                f"recorded entangling gate on qubits {sorted(group)} but the "
                "atom positions imply no such interaction cluster",
                location,
                qubits=tuple(sorted(group)),
            )
        for group in implied.keys() - recorded.keys():
            self.report(
                R.CLUSTER_MISMATCH,
                f"atom positions imply an interaction cluster on qubits "
                f"{sorted(group)} with no recorded gate",
                location,
                qubits=tuple(sorted(group)),
            )
        for group, name in recorded.items():
            size = implied.get(group)
            if size is None:
                continue
            expected = _EXPECTED_CLUSTER_GATE.get(size, "mcz")
            if name != expected:
                self.report(
                    R.CLUSTER_ARITY,
                    f"cluster of {size} atoms on qubits {sorted(group)} must "
                    f"record {expected}, found {name}",
                    location,
                    qubits=tuple(sorted(group)),
                )

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        program_location = SourceLocation()
        for qubit in sorted(self.covered):
            if not 0 <= qubit < self.program.num_qubits:
                self.report(
                    R.GATE_QUBIT_RANGE,
                    f"recorded gates reference qubit {qubit} outside the "
                    f"{self.program.num_qubits}-qubit register",
                    program_location,
                    qubits=(qubit,),
                )
        for qubit in range(self.program.num_qubits):
            if qubit not in self.state.ever_bound:
                self.report(
                    R.QUBIT_NEVER_BOUND,
                    f"logical qubit {qubit} is never bound to an atom",
                    program_location,
                    qubits=(qubit,),
                )
            elif qubit not in self.covered:
                self.report(
                    R.QUBIT_UNCOVERED,
                    f"qubit {qubit} is bound but never driven by a recorded gate",
                    program_location,
                    qubits=(qubit,),
                )
        if self.program.measured and self.state.aod_atoms:
            orphans = tuple(sorted(self.state.aod_atoms.values()))
            self.report(
                R.READOUT_ORPHAN,
                f"measured program ends with qubit(s) {list(orphans)} still "
                "held in the AOD layer; readout happens in the SLM plane",
                program_location,
                qubits=orphans,
            )
