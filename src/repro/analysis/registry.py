"""The wLint rule registry: stable codes, default severities, provenance.

Rule codes are **append-only**: once a ``WL###`` code has shipped it is
never renumbered and never reused for a different check, so stored
reports stay interpretable forever.  Retiring a rule moves its code to
:data:`RETIRED_CODES`, which the registry refuses to re-register.  The
code blocks:

====== ==================================================
WL00x  layer/structure invariants (init, static geometry)
WL01x  AOD shuttle order preservation (Table 1)
WL02x  trap-occupancy dataflow (bind/transfer/readout)
WL03x  qubit liveness
WL04x  Rydberg interference sets & pulse/gate agreement
WL05x  cost-model bounds (duration / pulses / EPS)
WL06x  circuit-IR checks for gate-level targets
====== ==================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .diagnostics import Diagnostic, Severity, SourceLocation

_CODE_PATTERN = re.compile(r"^WL\d{3}$")

#: Codes that once existed and may never be assigned to a new rule.
RETIRED_CODES: frozenset[str] = frozenset()


@dataclass(frozen=True)
class LintRule:
    """One registered static check."""

    code: str
    name: str
    severity: Severity
    description: str

    def diagnostic(
        self,
        message: str,
        location: SourceLocation | None = None,
        qubits: tuple[int, ...] = (),
        severity: Severity | None = None,
    ) -> Diagnostic:
        """Build a finding of this rule (default severity unless overridden)."""
        return Diagnostic(
            code=self.code,
            severity=severity or self.severity,
            message=message,
            location=location or SourceLocation(),
            qubits=qubits,
        )


_RULES: dict[str, LintRule] = {}
_NAMES: dict[str, str] = {}


def register_rule(
    code: str, name: str, severity: Severity, description: str
) -> LintRule:
    """Register a rule under a fresh, well-formed, never-reused code."""
    if not _CODE_PATTERN.match(code):
        raise ValueError(f"rule code {code!r} does not match WL###")
    if code in RETIRED_CODES:
        raise ValueError(f"rule code {code} is retired and may not be reused")
    if code in _RULES:
        raise ValueError(f"rule code {code} is already registered ({_RULES[code].name})")
    if name in _NAMES:
        raise ValueError(f"rule name {name!r} is already registered ({_NAMES[name]})")
    rule = LintRule(code=code, name=name, severity=severity, description=description)
    _RULES[code] = rule
    _NAMES[name] = code
    return rule


def get_rule(code: str) -> LintRule:
    return _RULES[code]


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_RULES[code] for code in sorted(_RULES))


# ----------------------------------------------------------------------
# Built-in rules
# ----------------------------------------------------------------------
E, W, I = Severity.ERROR, Severity.WARNING, Severity.INFO

# WL00x — layer / structure
LAYER_UNINITIALIZED = register_rule(
    "WL001", "layer-uninitialized", E,
    "An instruction addresses the SLM or AOD layer before it is initialized.",
)
LAYER_REINITIALIZED = register_rule(
    "WL002", "layer-reinitialized", E,
    "@slm/@aod re-initializes an already-initialized trap layer.",
)
TRAP_SPACING = register_rule(
    "WL003", "trap-spacing", E,
    "Static trap geometry violates the minimum spacing envelope "
    "(SLM pairwise distance, or AOD coordinates not strictly increasing).",
)

# WL01x — shuttle order preservation
SHUTTLE_RANGE = register_rule(
    "WL010", "shuttle-index-range", E,
    "@shuttle addresses a row/column outside the AOD grid.",
)
SHUTTLE_ORDER = register_rule(
    "WL011", "shuttle-order-violation", E,
    "A shuttle would make adjacent AOD rows/columns cross or crowd below "
    "the minimum spacing (Table 1 order-preservation invariant).",
)
SHUTTLE_CONFLICT = register_rule(
    "WL012", "shuttle-parallel-conflict", E,
    "A parallel shuttle group moves the same row/column more than once.",
)

# WL02x — trap occupancy dataflow
DOUBLE_BIND = register_rule(
    "WL020", "double-bind", E,
    "@bind binds a qubit that is already bound to an atom.",
)
BIND_OCCUPIED = register_rule(
    "WL021", "bind-occupied-trap", E,
    "@bind targets a trap or AOD crossing that already holds an atom.",
)
BIND_RANGE = register_rule(
    "WL022", "bind-index-range", E,
    "@bind addresses an SLM trap or AOD crossing outside the layer.",
)
TRANSFER_INVALID = register_rule(
    "WL023", "transfer-occupancy", E,
    "@transfer does not see exactly one occupied and one empty trap "
    "(transfer from an empty trap, or two atoms would share a trap).",
)
TRANSFER_RANGE = register_rule(
    "WL024", "transfer-index-range", E,
    "@transfer addresses an SLM trap or AOD crossing outside the layer.",
)
TRANSFER_DISTANCE = register_rule(
    "WL025", "transfer-distance", E,
    "@transfer spans more than the maximum SLM-AOD handoff distance.",
)
READOUT_ORPHAN = register_rule(
    "WL026", "readout-orphan-atom", E,
    "A measured program ends with atoms still parked in the AOD layer "
    "(readout happens in the SLM plane; orphans are lost).",
)
RAMAN_UNBOUND = register_rule(
    "WL027", "raman-unbound-qubit", E,
    "@raman local targets a qubit not bound to any atom.",
)

# WL03x — qubit liveness
QUBIT_NEVER_BOUND = register_rule(
    "WL030", "qubit-never-bound", E,
    "A logical qubit is never bound to an atom.",
)
QUBIT_UNCOVERED = register_rule(
    "WL031", "qubit-uncovered", W,
    "A bound qubit is never driven by any recorded gate.",
)
GATE_QUBIT_RANGE = register_rule(
    "WL032", "pulse-gate-qubit-range", E,
    "A recorded gate references a qubit outside the program's register.",
)

# WL04x — Rydberg interference sets & pulse/gate agreement
CLUSTER_MISMATCH = register_rule(
    "WL040", "rydberg-cluster-mismatch", E,
    "The interacting clusters implied by static atom positions do not "
    "match the gates recorded for the Rydberg pulse.",
)
CLUSTER_ARITY = register_rule(
    "WL041", "rydberg-gate-arity", E,
    "A recorded entangling gate's name does not match its cluster size "
    "(cz=2, ccz=3, mcz>=4).",
)
CLUSTER_EQUIDISTANCE = register_rule(
    "WL042", "rydberg-cluster-equidistance", E,
    "A cluster of three or more atoms is not equidistant within tolerance; "
    "the digital C^nZ semantics does not apply (paper §7).",
)
RAMAN_GATE_MISMATCH = register_rule(
    "WL043", "raman-gate-mismatch", E,
    "A Raman pulse's Euler angles disagree with the recorded logical gate "
    "(unitaries differ beyond global phase).",
)
PULSE_GATE_ORPHAN = register_rule(
    "WL044", "pulse-gate-orphan", E,
    "Logical gates are recorded for an operation whose instruction stream "
    "contains no pulse, or the recorded gates do not fit the pulse kind.",
)

# WL05x — cost-model bounds
PULSE_COUNT_MISMATCH = register_rule(
    "WL050", "pulse-count-mismatch", E,
    "The recorded pulse count disagrees with the instruction stream.",
)
DURATION_MISMATCH = register_rule(
    "WL051", "duration-mismatch", E,
    "The recorded execution duration disagrees with the device cost model.",
)
EPS_MISMATCH = register_rule(
    "WL052", "eps-mismatch", E,
    "The recorded EPS disagrees with the device cost model.",
)
COHERENCE_BUDGET = register_rule(
    "WL053", "coherence-budget", W,
    "The program's duration is a large fraction of the device T2 time; "
    "idle decoherence will dominate the error budget.",
)

# WL06x — circuit IR (gate-level targets)
CIRCUIT_QUBIT_RANGE = register_rule(
    "WL060", "circuit-qubit-range", E,
    "A circuit instruction references a qubit outside the register.",
)
CIRCUIT_DUPLICATE_OPERAND = register_rule(
    "WL061", "circuit-duplicate-operand", E,
    "A circuit instruction lists the same qubit twice.",
)
CIRCUIT_GATE_AFTER_MEASURE = register_rule(
    "WL062", "circuit-gate-after-measure", W,
    "A gate acts on a qubit after it was measured.",
)
CIRCUIT_EMPTY = register_rule(
    "WL063", "circuit-empty", I,
    "The circuit contains no instructions.",
)

del E, W, I
