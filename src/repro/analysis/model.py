"""Abstract FPQA machine for static analysis.

:class:`AbstractDeviceState` tracks the same state as
:class:`~repro.fpqa.device.FPQADevice` — trap layers, occupancy, qubit
bindings, AOD geometry — but where the concrete device *raises*
:class:`FPQAConstraintError` on a Table-1 precondition violation, the
abstract machine *reports* a diagnostic through a sink and recovers with
a best-effort state update, so one fault does not hide every fault after
it.  The recovery policy mirrors hardware intent: geometry-changing
instructions (shuttles, far transfers) are applied even when flagged, so
downstream interference analysis sees the positions the program would
actually produce; occupancy-violating instructions (double binds,
invalid transfers) are skipped, since hardware cannot perform them at
all.

Rydberg cluster resolution reuses the device's semantics (union of atoms
within the Rydberg radius, connected components, equidistance check for
clusters of three or more) but is vectorized with numpy and cached per
geometry epoch, because the analyzer's one linear pass cannot afford the
checker's per-pulse unitary reconstruction.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from scipy.spatial import cKDTree

from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)
from . import registry as R
from .diagnostics import Diagnostic, SourceLocation

Sink = Callable[[Diagnostic], None]


class AbstractDeviceState:
    """Diagnostic-emitting mirror of the FPQA state machine."""

    def __init__(self, hardware: FPQAHardwareParams, sink: Sink):
        self.hardware = hardware
        self.sink = sink
        #: Current stream position; a SourceLocation is only materialized
        #: when a diagnostic actually fires (the clean path is hot).
        self.op_index: int | None = None
        self.instr_index: int | None = None
        self.slm_positions: list[tuple[float, float]] = []
        self.slm_atoms: list[int | None] = []
        self.aod_col_x: list[float] = []
        self.aod_row_y: list[float] = []
        self.aod_atoms: dict[tuple[int, int], int] = {}
        self.qubit_location: dict[int, tuple] = {}
        #: Qubits ever bound (liveness), including ones later flagged.
        self.ever_bound: set[int] = set()
        self._geometry_epoch = 0
        self._cluster_cache_epoch = -1
        self._cluster_cache: list[tuple[tuple[int, ...], bool]] = []
        self.cluster_resolutions = 0
        self._handlers = {
            SlmInit: self._init_slm,
            AodInit: self._init_aod,
            BindAtom: self._bind,
            Transfer: self._transfer,
            Shuttle: self._apply_shuttle,
            ParallelShuttle: self._apply_parallel_shuttle,
            RamanLocal: self._raman_local,
            RamanGlobal: self._raman_global,
            RydbergPulse: self._noop,
        }

    # ------------------------------------------------------------------
    def report(self, rule: R.LintRule, message: str, qubits: tuple[int, ...] = ()) -> None:
        location = SourceLocation(
            operation=self.op_index, instruction=self.instr_index
        )
        self.sink(rule.diagnostic(message, location=location, qubits=qubits))

    def apply(self, instruction: FPQAInstruction) -> None:
        handler = self._handlers.get(type(instruction))
        if handler is None:
            self.report(
                R.LAYER_UNINITIALIZED, f"unknown instruction {instruction!r}"
            )
            return
        handler(instruction)

    def qubit_position(self, qubit: int) -> tuple[float, float] | None:
        loc = self.qubit_location.get(qubit)
        if loc is None:
            return None
        if loc[0] == "slm":
            return self.slm_positions[loc[1]]
        _, col, row = loc
        return (self.aod_col_x[col], self.aod_row_y[row])

    # ------------------------------------------------------------------
    # Layer initialization (static geometry envelope)
    # ------------------------------------------------------------------
    def _init_slm(self, instruction: SlmInit) -> None:
        if self.slm_positions:
            self.report(R.LAYER_REINITIALIZED, "@slm layer is already initialized")
            return
        positions = list(instruction.positions)
        self._check_static_spacing(positions)
        self.slm_positions = positions
        self.slm_atoms = [None] * len(positions)
        self._geometry_epoch += 1

    def _check_static_spacing(self, positions: list[tuple[float, float]]) -> None:
        spacing = self.hardware.min_trap_spacing_um
        cells: dict[tuple[int, int], list[tuple[float, float]]] = {}
        floor = math.floor
        for x, y in positions:
            cell = (floor(x / spacing), floor(y / spacing))
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for ox, oy in cells.get((cell[0] + dx, cell[1] + dy), ()):
                        if (x - ox) ** 2 + (y - oy) ** 2 < spacing**2 - 1e-9:
                            self.report(
                                R.TRAP_SPACING,
                                f"@slm traps at ({ox:.2f}, {oy:.2f}) and "
                                f"({x:.2f}, {y:.2f}) violate the minimum "
                                f"spacing of {spacing} um",
                            )
            cells.setdefault(cell, []).append((x, y))

    def _init_aod(self, instruction: AodInit) -> None:
        if self.aod_col_x or self.aod_row_y:
            self.report(R.LAYER_REINITIALIZED, "@aod layer is already initialized")
            return
        spacing = self.hardware.min_trap_spacing_um
        for name, coords in (("column x", instruction.xs), ("row y", instruction.ys)):
            for a, b in zip(coords, coords[1:]):
                if b <= a:
                    self.report(
                        R.TRAP_SPACING,
                        f"@aod {name} coordinates must be strictly increasing",
                    )
                elif b - a < spacing:
                    self.report(
                        R.TRAP_SPACING,
                        f"@aod adjacent {name} coordinates closer than the "
                        f"minimum spacing ({b - a:.2f} um)",
                    )
        self.aod_col_x = list(instruction.xs)
        self.aod_row_y = list(instruction.ys)
        self._geometry_epoch += 1

    # ------------------------------------------------------------------
    # Occupancy dataflow
    # ------------------------------------------------------------------
    def _bind(self, instruction: BindAtom) -> None:
        qubit = instruction.qubit
        self.ever_bound.add(qubit)
        if qubit in self.qubit_location:
            self.report(
                R.DOUBLE_BIND, f"qubit {qubit} is already bound", qubits=(qubit,)
            )
            return
        if instruction.slm_index is not None:
            idx = instruction.slm_index
            if not self.slm_positions:
                self.report(
                    R.LAYER_UNINITIALIZED,
                    f"@bind addresses SLM trap {idx} before @slm",
                    qubits=(qubit,),
                )
                return
            if not 0 <= idx < len(self.slm_positions):
                self.report(
                    R.BIND_RANGE, f"@bind slm index {idx} out of range", qubits=(qubit,)
                )
                return
            occupant = self.slm_atoms[idx]
            if occupant is not None:
                self.report(
                    R.BIND_OCCUPIED,
                    f"SLM trap {idx} already holds an atom (qubit {occupant})",
                    qubits=(qubit, occupant),
                )
                return
            self.slm_atoms[idx] = qubit
            self.qubit_location[qubit] = ("slm", idx)
            self._geometry_epoch += 1
            return
        col, row = instruction.aod_col, instruction.aod_row
        if not self.aod_col_x and not self.aod_row_y:
            self.report(
                R.LAYER_UNINITIALIZED,
                f"@bind addresses AOD crossing ({col}, {row}) before @aod",
                qubits=(qubit,),
            )
            return
        if not (0 <= col < len(self.aod_col_x) and 0 <= row < len(self.aod_row_y)):
            self.report(
                R.BIND_RANGE,
                f"@bind aod crossing ({col}, {row}) out of range",
                qubits=(qubit,),
            )
            return
        occupant = self.aod_atoms.get((col, row))
        if occupant is not None:
            self.report(
                R.BIND_OCCUPIED,
                f"AOD crossing ({col}, {row}) already holds an atom "
                f"(qubit {occupant})",
                qubits=(qubit, occupant),
            )
            return
        self.aod_atoms[(col, row)] = qubit
        self.qubit_location[qubit] = ("aod", col, row)
        self._geometry_epoch += 1

    def _transfer(self, instruction: Transfer) -> None:
        idx, col, row = instruction.slm_index, instruction.aod_col, instruction.aod_row
        if not self.slm_positions or not self.aod_col_x:
            self.report(
                R.LAYER_UNINITIALIZED, "@transfer before trap layers are initialized"
            )
            return
        if not 0 <= idx < len(self.slm_positions):
            self.report(R.TRANSFER_RANGE, f"@transfer slm index {idx} out of range")
            return
        if not (0 <= col < len(self.aod_col_x) and 0 <= row < len(self.aod_row_y)):
            self.report(
                R.TRANSFER_RANGE, f"@transfer aod crossing ({col}, {row}) out of range"
            )
            return
        slm_pos = self.slm_positions[idx]
        aod_pos = (self.aod_col_x[col], self.aod_row_y[row])
        distance = math.dist(slm_pos, aod_pos)
        if distance > self.hardware.transfer_max_distance_um:
            self.report(
                R.TRANSFER_DISTANCE,
                f"@transfer between traps {distance:.2f} um apart exceeds the "
                f"maximum of {self.hardware.transfer_max_distance_um} um",
            )
            # Flagged but applied: the handoff geometry is wrong, not the
            # occupancy bookkeeping, and downstream analysis needs the
            # atom where the program believes it is.
        slm_atom = self.slm_atoms[idx]
        aod_atom = self.aod_atoms.get((col, row))
        if slm_atom is not None and aod_atom is None:
            self.slm_atoms[idx] = None
            self.aod_atoms[(col, row)] = slm_atom
            self.qubit_location[slm_atom] = ("aod", col, row)
        elif slm_atom is None and aod_atom is not None:
            del self.aod_atoms[(col, row)]
            self.slm_atoms[idx] = aod_atom
            self.qubit_location[aod_atom] = ("slm", idx)
        else:
            involved = tuple(q for q in (slm_atom, aod_atom) if q is not None)
            self.report(
                R.TRANSFER_INVALID,
                "@transfer requires exactly one occupied and one empty trap "
                f"(slm {idx} holds {slm_atom}, aod ({col}, {row}) holds {aod_atom})",
                qubits=involved,
            )
            return
        self._geometry_epoch += 1

    # ------------------------------------------------------------------
    # Shuttling (order preservation)
    # ------------------------------------------------------------------
    def _apply_shuttle(self, instruction: Shuttle) -> None:
        self._shuttle([instruction.move])

    def _apply_parallel_shuttle(self, instruction: ParallelShuttle) -> None:
        seen: set[tuple[str, int]] = set()
        for move in instruction.moves:
            key = (move.axis, move.index)
            if key in seen:
                self.report(
                    R.SHUTTLE_CONFLICT,
                    f"parallel shuttle moves the same {move.axis} {move.index} twice",
                )
            seen.add(key)
        self._shuttle(list(instruction.moves))

    def _shuttle(self, moves: list[ShuttleMove]) -> None:
        # An order violation can only appear at a pair whose left or
        # right member moved, so checking the moved indices' neighbor
        # pairs covers every possible new violation without rescanning
        # the whole grid per shuttle (the concrete device rescans; the
        # analyzer's linear-pass budget cannot afford that).
        cols, rows = self.aod_col_x, self.aod_row_y
        touched: set[tuple[str, int]] = set()
        for move in moves:
            coords = cols if move.axis == "column" else rows
            if not 0 <= move.index < len(coords):
                self.report(
                    R.SHUTTLE_RANGE, f"@shuttle {move.axis} {move.index} out of range"
                )
                continue
            coords[move.index] += move.offset
            touched.add((move.axis, move.index))
        spacing = self.hardware.min_trap_spacing_um
        threshold = spacing - 1e-9
        for axis, index in touched:
            coords = cols if axis == "column" else rows
            name = axis
            for left in (index - 1, index):
                if 0 <= left and left + 1 < len(coords):
                    gap = coords[left + 1] - coords[left]
                    if gap < threshold:
                        self.report(
                            R.SHUTTLE_ORDER,
                            f"shuttle brings adjacent {name}s {left} and "
                            f"{left + 1} within {gap:.2f} um (minimum "
                            f"{spacing} um); rows/columns may not cross or "
                            "crowd (Table 1)",
                        )
        # Flagged moves still take effect: the analyzer follows the
        # geometry the program encodes so later cluster checks compare
        # against what would physically happen.
        self._geometry_epoch += 1

    # ------------------------------------------------------------------
    # Pulses
    # ------------------------------------------------------------------
    def _raman_local(self, instruction: RamanLocal) -> None:
        if instruction.qubit not in self.qubit_location:
            self.report(
                R.RAMAN_UNBOUND,
                f"@raman local targets unbound qubit {instruction.qubit}",
                qubits=(instruction.qubit,),
            )

    def _raman_global(self, instruction: RamanGlobal) -> None:
        pass  # no pre-condition (Table 1)

    def _noop(self, instruction: FPQAInstruction) -> None:
        pass

    # ------------------------------------------------------------------
    # Rydberg interference sets
    # ------------------------------------------------------------------
    def resolve_clusters(self) -> list[tuple[tuple[int, ...], bool]]:
        """Interacting clusters under the current geometry.

        Returns ``(qubits, equidistant)`` pairs for every cluster of two
        or more atoms, sorted by qubit tuple; ``equidistant`` is whether
        a >=3 cluster satisfies the tolerance (2-clusters are trivially
        equidistant).  Cached per geometry epoch, like the device's
        resolver, so back-to-back pulses with no movement are free.
        """
        if self._cluster_cache_epoch == self._geometry_epoch:
            return self._cluster_cache
        self.cluster_resolutions += 1
        qubits = sorted(self.qubit_location)
        clusters: list[tuple[tuple[int, ...], bool]] = []
        n = len(qubits)
        if n >= 2:
            positions = [self.qubit_position(q) for q in qubits]
            radius = self.hardware.rydberg_radius_um
            # A KD-tree radius query beats the device's O(n^2) distance
            # matrix by an order of magnitude at uf100 scale; the pair
            # set (distance <= radius, boundary inclusive) is identical.
            pairs = cKDTree(np.asarray(positions)).query_pairs(
                radius, output_type="ndarray"
            )
            parent = list(range(n))

            def find(i: int) -> int:
                while parent[i] != i:
                    parent[i] = parent[parent[i]]
                    i = parent[i]
                return i

            for i, j in pairs:
                ri, rj = find(int(i)), find(int(j))
                if ri != rj:
                    parent[ri] = rj
            groups: dict[int, list[int]] = {}
            for i, root in enumerate(map(find, range(n))):
                group = groups.get(root)
                if group is None:
                    groups[root] = [i]
                else:
                    group.append(i)
            tol = self.hardware.equidistance_tolerance_um
            for members in groups.values():
                if len(members) < 2:
                    continue
                member_qubits = tuple(qubits[i] for i in members)
                equidistant = True
                if len(members) >= 3:
                    dists = [
                        math.dist(positions[a], positions[b])
                        for ai, a in enumerate(members)
                        for b in members[ai + 1 :]
                    ]
                    equidistant = max(dists) - min(dists) <= tol
                clusters.append((member_qubits, equidistant))
            clusters.sort(key=lambda c: c[0])
        self._cluster_cache = clusters
        self._cluster_cache_epoch = self._geometry_epoch
        return clusters
