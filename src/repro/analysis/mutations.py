"""Program mutators: the wLint fault-injection corpus.

Each function takes a compiled :class:`~repro.wqasm.program.WQasmProgram`
and returns a *mutated copy* exhibiting one realistic miscompilation
class.  They are the static-analysis counterpart of
:meth:`FPQADevice.lose_atom <repro.fpqa.device.FPQADevice.lose_atom>`:
tests mutate a known-good artifact and assert the analyzer flags it,
which is the only way to measure the analyzer's catch rate rather than
its opinion of healthy programs.

The four classes mirror the ways a codegen bug would actually corrupt a
program: reordered/mis-sized shuttle batches, wrong rotation angles,
dropped trap handoffs, and duplicated bindings.
"""

from __future__ import annotations

from dataclasses import replace

from ..exceptions import AnalysisError
from ..fpqa.instructions import (
    BindAtom,
    ParallelShuttle,
    RamanLocal,
    Transfer,
)
from ..wqasm.program import AnnotatedOperation, WQasmProgram


def _copy_with_operations(
    program: WQasmProgram, operations: list[AnnotatedOperation]
) -> WQasmProgram:
    return WQasmProgram(
        num_qubits=program.num_qubits,
        setup=program.setup,
        operations=operations,
        measured=program.measured,
        name=f"{program.name}-mutant",
    )


def _replace_instruction(
    program: WQasmProgram, op_index: int, instr_index: int, instruction
) -> WQasmProgram:
    operations = list(program.operations)
    operation = operations[op_index]
    instructions = list(operation.instructions)
    instructions[instr_index] = instruction
    operations[op_index] = AnnotatedOperation(
        tuple(instructions), operation.gates
    )
    return _copy_with_operations(program, operations)


def corrupt_shuttle_order(program: WQasmProgram) -> WQasmProgram:
    """Corrupt the first parallel shuttle group.

    With two or more moves, the offsets of the first and last move are
    swapped (rows/columns end up at each other's destinations — the
    classic order-preservation break); a single-move group gets its
    offset displaced so the row/column lands off its planned trap.
    """
    for op_index, operation in enumerate(program.operations):
        for instr_index, instruction in enumerate(operation.instructions):
            if not isinstance(instruction, ParallelShuttle):
                continue
            moves = list(instruction.moves)
            if len(moves) >= 2:
                first, last = moves[0], moves[-1]
                moves[0] = replace(first, offset=last.offset)
                moves[-1] = replace(last, offset=first.offset)
            else:
                moves[0] = replace(moves[0], offset=moves[0].offset + 3.0)
            return _replace_instruction(
                program, op_index, instr_index, ParallelShuttle(tuple(moves))
            )
    raise AnalysisError(f"{program.name} contains no parallel shuttle to corrupt")


def wrong_raman_angle(program: WQasmProgram, delta: float = 0.3) -> WQasmProgram:
    """Perturb the x Euler angle of the first local Raman pulse."""
    for op_index, operation in enumerate(program.operations):
        for instr_index, instruction in enumerate(operation.instructions):
            if isinstance(instruction, RamanLocal):
                return _replace_instruction(
                    program,
                    op_index,
                    instr_index,
                    replace(instruction, x=instruction.x + delta),
                )
    raise AnalysisError(f"{program.name} contains no local Raman pulse to corrupt")


def drop_transfer(program: WQasmProgram) -> WQasmProgram:
    """Delete the first SLM<->AOD transfer (a dropped trap handoff)."""
    for op_index, operation in enumerate(program.operations):
        for instr_index, instruction in enumerate(operation.instructions):
            if isinstance(instruction, Transfer):
                instructions = list(operation.instructions)
                del instructions[instr_index]
                operations = list(program.operations)
                operations[op_index] = AnnotatedOperation(
                    tuple(instructions), operation.gates
                )
                return _copy_with_operations(program, operations)
    raise AnalysisError(f"{program.name} contains no transfer to drop")


def duplicate_bind(program: WQasmProgram) -> WQasmProgram:
    """Make the second setup bind re-bind the first bind's qubit.

    One qubit ends up bound twice and another never bound — the double
    miscount a broken setup emitter would produce.
    """
    binds = [
        (index, instruction)
        for index, instruction in enumerate(program.setup)
        if isinstance(instruction, BindAtom)
    ]
    if len(binds) < 2:
        raise AnalysisError(f"{program.name} has fewer than two setup binds")
    (_, first), (second_index, second) = binds[0], binds[1]
    setup = list(program.setup)
    setup[second_index] = replace(second, qubit=first.qubit)
    return WQasmProgram(
        num_qubits=program.num_qubits,
        setup=tuple(setup),
        operations=list(program.operations),
        measured=program.measured,
        name=f"{program.name}-mutant",
    )


#: The named fault-injection corpus: mutation class -> mutator.
ALL_MUTATIONS = {
    "corrupted-shuttle-order": corrupt_shuttle_order,
    "wrong-raman-angle": wrong_raman_angle,
    "dropped-transfer": drop_transfer,
    "bad-bind": duplicate_bind,
}
