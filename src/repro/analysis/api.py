"""wLint entry points: analyze programs, circuits, and compiled results.

Three tiers of evidence back a compiled artifact, cheapest first:

1. ``weaver lint`` — this module: one linear static pass, no simulation;
2. the wChecker — dynamic pulse replay plus unitary equivalence;
3. ``repro.sim`` — full noise-aware execution.

The functions here are the first tier, shared by
:meth:`CompilationResult.analyze`, ``repro.compile(..., analyze=)``,
the ``weaver lint`` CLI command, and the service's ``lint`` job kind.
"""

from __future__ import annotations

from time import perf_counter

from ..exceptions import AnalysisError
from ..fpqa.hardware import FPQAHardwareParams
from ..wqasm.program import WQasmProgram
from .bounds import BOUNDS_RULES, check_bounds
from .circuit import CIRCUIT_RULES, check_circuit
from .diagnostics import AnalysisReport
from .program import PROGRAM_RULES, ProgramAnalyzer

_OPTION_KEYS = ()  # reserved: analyze currently takes no tuning knobs


def canonical_analyze_options(analyze) -> dict | None:
    """Normalize an ``analyze=`` argument into a canonical options dict.

    ``None``/``False`` disable analysis; ``True`` or ``{}`` select the
    defaults.  The canonical form is JSON-stable — it keys session
    caches and service artifacts, exactly like
    :func:`~repro.sim.canonical_sim_options`.
    """
    if analyze is None or analyze is False:
        return None
    if analyze is True:
        return {}
    if not isinstance(analyze, dict):
        raise AnalysisError(
            f"analyze must be a bool or an options dict, got "
            f"{type(analyze).__name__}"
        )
    unknown = set(analyze) - set(_OPTION_KEYS)
    if unknown:
        raise AnalysisError(
            f"unknown analyze option(s): {', '.join(sorted(unknown))}"
        )
    return dict(analyze)


def analyze_program(
    program: WQasmProgram,
    hardware: FPQAHardwareParams | None = None,
    expected: dict | None = None,
    name: str | None = None,
) -> AnalysisReport:
    """Statically verify one wQasm program (the FPQA path of wLint).

    ``expected`` optionally carries recorded result metrics
    (``num_pulses``, ``execution_seconds``, ``eps``) for the cost-model
    bounds pass; without it the bounds rules only check the coherence
    budget.
    """
    start = perf_counter()
    hardware = hardware or FPQAHardwareParams()
    report = AnalysisReport(
        artifact=name or program.name, num_qubits=program.num_qubits
    )
    sink = report.diagnostics.append
    analyzer = ProgramAnalyzer(program, hardware, sink)
    report.stats.update(analyzer.run())
    report.stats.update(
        check_bounds(program, hardware, expected or {}, sink)
    )
    report.instructions_scanned = analyzer.instructions_scanned
    report.rules_run = tuple(
        rule.code for rule in PROGRAM_RULES + BOUNDS_RULES
    )
    report.analysis_seconds = perf_counter() - start
    return report


def analyze_circuit(circuit, name: str | None = None) -> AnalysisReport:
    """Statically verify a gate-level circuit (non-pulse targets)."""
    start = perf_counter()
    report = AnalysisReport(
        artifact=name or getattr(circuit, "name", "circuit"),
        num_qubits=getattr(circuit, "num_qubits", 0),
    )
    report.stats.update(check_circuit(circuit, report.diagnostics.append))
    report.instructions_scanned = report.stats.get("circuit_instructions", 0)
    report.rules_run = tuple(rule.code for rule in CIRCUIT_RULES)
    report.analysis_seconds = perf_counter() - start
    return report


def analyze_result(result) -> AnalysisReport:
    """Statically verify a :class:`~repro.targets.result.CompilationResult`.

    FPQA results get the full pulse-IR dataflow analysis against the
    device profile they were compiled for, with their recorded metrics
    cross-checked; gate-level results get the circuit-IR checks.
    """
    name = f"{result.workload}@{result.target}"
    if result.program is not None:
        return analyze_program(
            result.program,
            hardware=result.fpqa_hardware(),
            expected={
                "num_pulses": result.num_pulses,
                "execution_seconds": result.execution_seconds,
                "eps": result.eps,
            },
            name=name,
        )
    if result.native_circuit is not None:
        return analyze_circuit(result.native_circuit, name=name)
    raise AnalysisError(
        f"result for {name} carries neither a wQasm program nor a "
        "circuit; there is nothing to analyze"
    )


def attach_analysis(result, options=None) -> AnalysisReport:
    """Analyze ``result`` and record the report on the result itself.

    The report payload lands in ``result.analysis`` (JSON-safe, so it
    rides through every result serializer, cache, and artifact store).
    Returns the live :class:`AnalysisReport`.
    """
    canonical = canonical_analyze_options(True if options is None else options)
    if canonical is None:
        raise AnalysisError("attach_analysis called with analysis disabled")
    report = analyze_result(result)
    result.analysis = report.to_dict()
    return report
