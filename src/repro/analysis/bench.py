"""Measure wLint vs wChecker speed and append to ``BENCH_lint.json``.

The static-analysis counterpart of :mod:`repro.perf.bench`: compiles a
workload grid, times the analyzer and the checker warm (best of N on the
same artifact in the same process), and appends one run record to the
repo-committed trajectory file::

    python -m repro.analysis.bench --output BENCH_lint.json --label "PR 6"

File format is :data:`repro.perf.bench.BENCH_SCHEMA_VERSION` with cells::

    {"workload": ..., "num_pulses": ..., "lint_seconds": ...,
     "checker_seconds": ..., "speedup": ...}
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from datetime import datetime, timezone

DEFAULT_WORKLOADS = ("uf20-01", "uf50-01", "uf100-01")
DEFAULT_OUTPUT = "BENCH_lint.json"


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_lint_bench(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    repeats: int = 3,
    verbose: bool = False,
) -> dict:
    """Measure the grid and return one run record (no file I/O)."""
    import repro
    from ..checker import check_program
    from .api import analyze_result

    cells = []
    for name in workloads:
        formula = repro.satlib_instance(name)
        result = repro.compile(formula, target="fpqa")
        # Warm both tiers before timing (memoized rotations, cluster
        # geometry, reconstruction caches).
        analyze_result(result)
        check_program(result.program)
        lint = _best_of(lambda: analyze_result(result), repeats)
        checker = _best_of(lambda: check_program(result.program), repeats)
        cell = {
            "workload": name,
            "num_vars": formula.num_vars,
            "num_pulses": result.num_pulses,
            "repeats": repeats,
            "lint_seconds": lint,
            "checker_seconds": checker,
            "speedup": checker / lint,
        }
        cells.append(cell)
        if verbose:
            print(
                f"[lint-bench] {name}: lint {lint * 1e3:.1f} ms, "
                f"checker {checker * 1e3:.1f} ms "
                f"({cell['speedup']:.1f}x)",
                file=sys.stderr,
            )
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
        },
        "cells": cells,
    }


def main(argv: list[str] | None = None) -> int:
    from ..perf.bench import write_bench_file

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.bench", description=__doc__
    )
    parser.add_argument(
        "--workloads", default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated SATLIB names (default %(default)s)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default=None, help="run label in the record")
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help="trajectory file to append to (default %(default)s)",
    )
    args = parser.parse_args(argv)
    run = run_lint_bench(
        tuple(w.strip() for w in args.workloads.split(",") if w.strip()),
        repeats=args.repeats,
        verbose=True,
    )
    if args.label:
        run["label"] = args.label
    path = write_bench_file(run, args.output)
    print(f"[lint-bench] appended run to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
