"""Cost-model bounds pass: recorded metrics vs the device cost model.

A compiled result carries its own claims — pulse count, execution
duration, EPS.  This pass recomputes each from the instruction stream
via the device's :class:`~repro.devices.cost.FPQACostModel` and flags
disagreements, so a tampered or stale artifact cannot smuggle in
optimistic numbers.  It also warns when the program's duration eats a
large fraction of the coherence window.
"""

from __future__ import annotations

import math

from ..devices.cost import cost_model_for
from ..fpqa.hardware import FPQAHardwareParams
from ..wqasm.program import WQasmProgram
from . import registry as R
from .diagnostics import SourceLocation
from .model import Sink

BOUNDS_RULES = (
    R.PULSE_COUNT_MISMATCH,
    R.DURATION_MISMATCH,
    R.EPS_MISMATCH,
    R.COHERENCE_BUDGET,
)

#: Relative tolerance for float metric comparisons: generous enough for
#: JSON round-trip noise, far below any real miscounting.
_REL_TOL = 1e-6

#: Duration beyond this fraction of T2 draws the coherence warning.  A
#: program longer than the coherence window itself cannot finish before
#: the qubits dephase; large-but-legitimate compiles stay below 1.0.
_T2_BUDGET_FRACTION = 1.0


def check_bounds(
    program: WQasmProgram,
    hardware: FPQAHardwareParams,
    expected: dict,
    sink: Sink,
) -> dict:
    """Cross-check ``expected`` metrics; return the recomputed values.

    ``expected`` may carry ``num_pulses``, ``execution_seconds`` and
    ``eps`` (the :class:`~repro.targets.result.CompilationResult`
    fields); missing or ``None`` entries are simply not compared.
    """
    location = SourceLocation()
    cost = cost_model_for(hardware)
    pulses = program.total_pulses
    duration_us = cost.program_duration_us(program)
    eps = cost.program_eps(program, duration_us)

    recorded_pulses = expected.get("num_pulses")
    if recorded_pulses is not None and recorded_pulses != pulses:
        sink(
            R.PULSE_COUNT_MISMATCH.diagnostic(
                f"result records {recorded_pulses} pulses but the instruction "
                f"stream contains {pulses}",
                location=location,
            )
        )
    recorded_seconds = expected.get("execution_seconds")
    if recorded_seconds is not None and not math.isclose(
        recorded_seconds, duration_us * 1e-6, rel_tol=_REL_TOL, abs_tol=1e-12
    ):
        sink(
            R.DURATION_MISMATCH.diagnostic(
                f"result records {recorded_seconds * 1e6:.3f} us execution but "
                f"the cost model derives {duration_us:.3f} us",
                location=location,
            )
        )
    recorded_eps = expected.get("eps")
    if recorded_eps is not None and not math.isclose(
        recorded_eps, eps, rel_tol=_REL_TOL, abs_tol=1e-300
    ):
        sink(
            R.EPS_MISMATCH.diagnostic(
                f"result records EPS {recorded_eps:.6g} but the cost model "
                f"derives {eps:.6g}",
                location=location,
            )
        )
    if duration_us > _T2_BUDGET_FRACTION * hardware.t2_us:
        sink(
            R.COHERENCE_BUDGET.diagnostic(
                f"program duration {duration_us:.1f} us exceeds "
                f"{_T2_BUDGET_FRACTION:.0%} of the device T2 "
                f"({hardware.t2_us:.0f} us); the program cannot finish "
                "inside the coherence window",
                location=location,
            )
        )
    return {
        "total_pulses": pulses,
        "duration_us": duration_us,
        "eps": eps,
    }
