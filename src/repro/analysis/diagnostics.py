"""Diagnostics: findings, source locations, and the analysis report.

The static analyzer (wLint) never raises on a bad program — it *reports*.
Every finding is a :class:`Diagnostic` carrying a stable rule code (see
:mod:`repro.analysis.registry`), a severity, a human-readable message,
and a :class:`SourceLocation` pointing into the wQasm operation stream.
A run's findings are collected into an :class:`AnalysisReport`, the
JSON-round-trippable artifact that rides on
:class:`~repro.CompilationResult.analysis` and the service's ``lint``
jobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Bump when the serialized report layout changes so stale payloads are
#: rejected rather than misread.
ANALYSIS_SCHEMA_VERSION = 1


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the artifact is not safe to execute (the
    ``weaver lint`` CLI exits 2); ``WARNING`` findings are suspicious but
    not provably wrong; ``INFO`` findings are observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.INFO: 0}


@dataclass(frozen=True)
class SourceLocation:
    """Where in the artifact a finding points.

    ``operation`` indexes :attr:`WQasmProgram.operations` (``-1`` = the
    setup block, ``None`` = whole program); ``instruction`` indexes into
    that operation's instruction tuple.  Circuit-IR findings use
    ``operation`` as the instruction index of the circuit.
    """

    operation: int | None = None
    instruction: int | None = None

    def __str__(self) -> str:
        if self.operation is None:
            return "program"
        where = "setup" if self.operation == -1 else f"op {self.operation}"
        if self.instruction is not None:
            where += f".{self.instruction}"
        return where

    def to_dict(self) -> dict:
        return {"operation": self.operation, "instruction": self.instruction}

    @classmethod
    def from_dict(cls, payload: dict) -> "SourceLocation":
        return cls(
            operation=payload.get("operation"),
            instruction=payload.get("instruction"),
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    #: Qubits involved, when the finding is about specific qubits.
    qubits: tuple[int, ...] = ()

    def __str__(self) -> str:
        return f"{self.code} [{self.severity.value}] {self.location}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
            "qubits": list(self.qubits),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        return cls(
            code=payload["code"],
            severity=Severity(payload["severity"]),
            message=payload["message"],
            location=SourceLocation.from_dict(payload.get("location") or {}),
            qubits=tuple(payload.get("qubits") or ()),
        )


@dataclass
class AnalysisReport:
    """Outcome of one static-analysis run over one compiled artifact."""

    artifact: str = ""
    num_qubits: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Rule codes that actually executed (provenance: a clean report is
    #: only as strong as the rules that ran).
    rules_run: tuple[str, ...] = ()
    instructions_scanned: int = 0
    analysis_seconds: float = 0.0
    #: Pass-specific extras (cluster counts, recomputed metrics, ...).
    stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """``True`` when no error-severity finding was reported."""
        return not self.errors

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def codes(self) -> set[str]:
        """The distinct rule codes that fired."""
        return {d.code for d in self.diagnostics}

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def summary(self) -> str:
        """One-line verdict for logs and CLI output."""
        if not self.diagnostics:
            return (
                f"{self.artifact or 'artifact'}: clean "
                f"({self.instructions_scanned} instructions, "
                f"{len(self.rules_run)} rules)"
            )
        return (
            f"{self.artifact or 'artifact'}: "
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} note(s)"
        )

    def raise_on_error(self) -> None:
        """Raise :class:`~repro.exceptions.VerificationError` on errors."""
        if not self.ok:
            from ..exceptions import VerificationError

            details = "; ".join(str(d) for d in self.errors[:5])
            raise VerificationError(details)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": ANALYSIS_SCHEMA_VERSION,
            "artifact": self.artifact,
            "num_qubits": self.num_qubits,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "rules_run": list(self.rules_run),
            "instructions_scanned": self.instructions_scanned,
            "analysis_seconds": self.analysis_seconds,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalysisReport":
        if payload.get("schema") != ANALYSIS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported analysis schema {payload.get('schema')!r}"
            )
        return cls(
            artifact=payload.get("artifact", ""),
            num_qubits=payload.get("num_qubits", 0),
            diagnostics=[
                Diagnostic.from_dict(d) for d in payload.get("diagnostics", [])
            ],
            rules_run=tuple(payload.get("rules_run", ())),
            instructions_scanned=payload.get("instructions_scanned", 0),
            analysis_seconds=payload.get("analysis_seconds", 0.0),
            stats=dict(payload.get("stats", {})),
        )


def format_report(report: AnalysisReport, max_findings: int = 25) -> str:
    """Render a report as the ``weaver lint`` terminal block."""
    lines = [report.summary()]
    ordered = sorted(
        report.diagnostics, key=lambda d: -d.severity.rank
    )
    for diagnostic in ordered[:max_findings]:
        lines.append(f"  {diagnostic}")
    hidden = len(ordered) - max_findings
    if hidden > 0:
        lines.append(f"  ... and {hidden} more finding(s)")
    return "\n".join(lines)
