"""Circuit-IR checks for gate-level targets.

Targets that emit no pulse program (superconducting, baseline adapters)
still produce a circuit; these structural checks give them the same
admission gate.  They are deliberately conservative — transpiled
backends legitimately leave ancilla qubits idle, so idleness is not
flagged here — to keep the analyzer's zero-false-positive contract.
"""

from __future__ import annotations

from . import registry as R
from .diagnostics import SourceLocation
from .model import Sink

CIRCUIT_RULES = (
    R.CIRCUIT_QUBIT_RANGE,
    R.CIRCUIT_DUPLICATE_OPERAND,
    R.CIRCUIT_GATE_AFTER_MEASURE,
    R.CIRCUIT_EMPTY,
)


def check_circuit(circuit, sink: Sink) -> dict:
    """Walk a :class:`~repro.circuits.QuantumCircuit` once."""
    instructions = getattr(circuit, "instructions", [])
    num_qubits = getattr(circuit, "num_qubits", 0)
    if not instructions:
        sink(
            R.CIRCUIT_EMPTY.diagnostic(
                "circuit contains no instructions", location=SourceLocation()
            )
        )
        return {"circuit_instructions": 0}
    measured: set[int] = set()
    for index, instruction in enumerate(instructions):
        location = SourceLocation(operation=index)
        name = instruction.name
        seen: set[int] = set()
        for qubit in instruction.qubits:
            if not 0 <= qubit < num_qubits:
                sink(
                    R.CIRCUIT_QUBIT_RANGE.diagnostic(
                        f"{name} references qubit {qubit} outside the "
                        f"{num_qubits}-qubit register",
                        location=location,
                        qubits=(qubit,),
                    )
                )
            if qubit in seen:
                sink(
                    R.CIRCUIT_DUPLICATE_OPERAND.diagnostic(
                        f"{name} lists qubit {qubit} twice",
                        location=location,
                        qubits=(qubit,),
                    )
                )
            seen.add(qubit)
        if name == "measure":
            measured.update(instruction.qubits)
        elif name != "barrier":
            stale = measured.intersection(instruction.qubits)
            if stale:
                sink(
                    R.CIRCUIT_GATE_AFTER_MEASURE.diagnostic(
                        f"{name} acts on already-measured qubit(s) "
                        f"{sorted(stale)}",
                        location=location,
                        qubits=tuple(sorted(stale)),
                    )
                )
    return {"circuit_instructions": len(instructions)}
