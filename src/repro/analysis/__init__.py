"""repro.analysis: the wLint static verification layer.

A compiled pulse program can be *proved* safe against the FPQA
constraint system (paper Table 1) in one linear pass, without the
wChecker's per-operation unitary reconstruction.  This package holds
the diagnostic framework (stable ``WL###`` rule codes, severities,
source locations, JSON-round-trippable reports) and the
dataflow/abstract-interpretation passes behind it:

* shuttle order preservation across ``ParallelShuttle`` groups,
* trap-occupancy dataflow (binds, transfers, readout orphans),
* qubit liveness,
* Rydberg interference sets from static geometry envelopes,
* cost-model bounds (duration / pulse count / EPS), and
* circuit-IR checks for gate-level targets.

Entry points, highest level first::

    result = repro.compile(formula, device="rubidium-baseline", analyze=True)
    result.analysis["ok"]

    report = result.analyze()            # pure; nothing recorded

    from repro.analysis import analyze_program
    report = analyze_program(program, hardware)

plus the ``weaver lint`` CLI command and the ``lint`` job kind of
:mod:`repro.service`.
"""

from .api import (
    analyze_circuit,
    analyze_program,
    analyze_result,
    attach_analysis,
    canonical_analyze_options,
)
from .diagnostics import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisReport,
    Diagnostic,
    Severity,
    SourceLocation,
    format_report,
)
from .registry import RETIRED_CODES, LintRule, all_rules, get_rule, register_rule

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisReport",
    "Diagnostic",
    "LintRule",
    "RETIRED_CODES",
    "Severity",
    "SourceLocation",
    "all_rules",
    "analyze_circuit",
    "analyze_program",
    "analyze_result",
    "attach_analysis",
    "canonical_analyze_options",
    "format_report",
    "get_rule",
    "register_rule",
]
