"""Weaver: a retargetable compiler framework for FPQA quantum architectures.

Reproduction of Kirmemis et al., CGO 2025 (arXiv:2409.07870).  The public
API centers on one retargetable entrypoint backed by a target registry:

* :func:`compile` — compile any workload (CNF formula, OpenQASM file or
  circuit) for any registered target, on any registered device profile;
* :class:`CompilerSession` — batched, cached, budget-aware compilation
  (``compile_many(..., parallel=N, devices=[...])`` fans a
  workload x target x device grid across a process pool);
* :func:`available_targets` / :func:`register_target` — the backend
  registry (``fpqa``, ``fpqa-nocompress``, ``superconducting``,
  ``atomique``, ``geyser``, ``dpqa``);
* :func:`list_devices` / :func:`get_device` / :func:`register_device` —
  the device-profile registry (:mod:`repro.devices`): declarative
  machine specs with validated hardware parameters and precomputed
  noise-aware cost models;
* :class:`CompilationService` (:mod:`repro.service`) — the async,
  multi-tenant compilation server: sharded workers with
  ``(target, device)`` cache affinity, a content-addressed
  :class:`ArtifactStore`, and a JSON-lines socket front door
  (``weaver serve`` / ``weaver submit``);
* :mod:`repro.sim` — the noise-aware execution simulator closing the
  compile->run->score loop: ``repro.compile(..., simulate=...)``,
  ``result.simulate(...)``, ``weaver simulate``, and ``sim`` service
  jobs replay the *compiled artifact* shot by shot under a Monte-Carlo
  noise model derived from the device profile, returning counts,
  sampled EPS with confidence interval, and QAOA solution quality;
* :mod:`repro.analysis` — the wLint static verification layer: one
  linear abstract-interpretation pass over the compiled artifact that
  proves constraint safety (shuttle order, trap occupancy, pulse-gate
  agreement, cost bounds) without simulation —
  ``repro.compile(..., analyze=...)``, ``result.analyze()``, ``weaver
  lint``, and ``lint`` service jobs; the cheapest tier of the evidence
  ladder (lint -> wChecker -> simulate);
* :mod:`repro.telemetry` — end-to-end observability: hierarchical span
  tracing across compile, service, and sim (``weaver trace``, Chrome
  trace-event export for Perfetto), a metrics registry with
  exponential-bucket histograms (p50/p90/p99 quantiles), and Prometheus
  text exposition — off by default and nearly free when disabled.

The paper's three components remain available underneath:

* **wQasm** (paper section 4) -- :func:`parse_wqasm`, :class:`WQasmProgram`,
  and the OpenQASM front end in :mod:`repro.qasm`;
* **wOptimizer** (section 5) -- the ``"fpqa"`` target's clause-coloring,
  color-shuttling, and gate-compression passes (:mod:`repro.passes`);
* **wChecker** (section 6) -- :class:`WChecker` / :func:`check_program`.

Quickstart::

    import repro

    formula = repro.satlib_instance("uf20-01")
    result = repro.compile(formula, target="fpqa")
    report = repro.check_program(result.program)
    assert report.ok

    # Retarget: same workload, different backend.
    sc = repro.compile(formula, target="superconducting")

    # Redevice: same pipeline, different machine.
    aquila = repro.compile(formula, target="fpqa", device="aquila-256")

    # Batched throughput with budgets and caching.
    session = repro.CompilerSession(budgets={"dpqa": 60.0})
    rows = session.compile_many(
        [formula], targets=repro.available_targets(), parallel=4
    )

The pre-registry entrypoints (:func:`compile_formula`,
``WeaverFPQACompiler``, :func:`~repro.baselines.run_with_timeout`) still
work but emit :class:`DeprecationWarning`.
"""

from .exceptions import (
    AnnotationError,
    CircuitError,
    ColoringError,
    CompilationError,
    CompilationTimeout,
    EquivalenceError,
    FPQAConstraintError,
    QasmSemanticError,
    QasmSyntaxError,
    RoutingError,
    SatError,
    SimulationError,
    TargetError,
    UnknownTargetError,
    VerificationError,
    WeaverError,
    WorkloadError,
)
from .circuits import (
    Gate,
    Instruction,
    QuantumCircuit,
    circuit_statevector,
    circuit_unitary,
    circuits_equivalent,
    measurement_distribution,
)
from .sat import (
    Clause,
    CnfFormula,
    formula_polynomial,
    parse_dimacs,
    random_ksat,
    satlib_instance,
    to_dimacs,
)
from .qaoa import QaoaParameters, qaoa_circuit
from .qasm import circuit_to_qasm, parse_qasm, qasm_to_circuit
from .wqasm import WQasmProgram, parse_wqasm
from .fpqa import FPQADevice, FPQAHardwareParams
from .passes import (
    FPQACompiler,
    WeaverFPQACompiler,
    compile_formula,
    nativize_circuit,
)
from .checker import CheckReport, WChecker, check_program
from .superconducting import SuperconductingTranspiler, washington_backend
from .metrics import program_duration_us, program_eps
from .devices import (
    DeviceProfile,
    FPQACostModel,
    cost_model_for,
    device_info,
    get_device,
    list_devices,
    register_device,
)
from .exceptions import DeviceError, DeviceSpecError, UnknownDeviceError
from .perf import OptimizationFlags, format_profile_table
from .targets import (
    CompilationResult,
    CompilerSession,
    Target,
    Workload,
    available_targets,
    coerce_workload,
    compile,
    get_target,
    register_target,
    target_info,
)

__version__ = "1.4.0"


def __getattr__(name: str):
    # The service layer (asyncio server, socket client, artifact store),
    # the execution simulator, and the static analyzer load lazily:
    # importing repro must stay cheap for one-shot compile scripts that
    # never touch them.
    if name in (
        "ArtifactStore",
        "CompilationService",
        "CompileJob",
        "ServiceClient",
        "ServiceServer",
    ):
        from . import service

        return getattr(service, name)
    if name in (
        "ExecutionResult",
        "NoiseModel",
        "StatevectorEngine",
        "simulate_circuit",
        "simulate_program",
        "simulate_result",
    ):
        from . import sim

        return getattr(sim, name)
    if name in (
        "AnalysisReport",
        "Diagnostic",
        "LintRule",
        "Severity",
        "SourceLocation",
        "analyze_circuit",
        "analyze_program",
        "analyze_result",
        "format_report",
    ):
        from . import analysis

        return getattr(analysis, name)
    if name == "telemetry":
        from . import telemetry

        return telemetry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisReport",
    "AnnotationError",
    "ArtifactStore",
    "CheckReport",
    "CircuitError",
    "Clause",
    "CnfFormula",
    "ColoringError",
    "CompilationError",
    "CompilationResult",
    "CompilationService",
    "CompilationTimeout",
    "CompileJob",
    "CompilerSession",
    "DeviceError",
    "DeviceProfile",
    "DeviceSpecError",
    "Diagnostic",
    "EquivalenceError",
    "ExecutionResult",
    "FPQACostModel",
    "FPQACompiler",
    "FPQAConstraintError",
    "FPQADevice",
    "FPQAHardwareParams",
    "Gate",
    "Instruction",
    "LintRule",
    "NoiseModel",
    "OptimizationFlags",
    "QaoaParameters",
    "QasmSemanticError",
    "QasmSyntaxError",
    "QuantumCircuit",
    "RoutingError",
    "SatError",
    "ServiceClient",
    "ServiceServer",
    "Severity",
    "SimulationError",
    "SourceLocation",
    "StatevectorEngine",
    "SuperconductingTranspiler",
    "Target",
    "TargetError",
    "UnknownDeviceError",
    "UnknownTargetError",
    "VerificationError",
    "WChecker",
    "WQasmProgram",
    "WeaverError",
    "WeaverFPQACompiler",
    "Workload",
    "WorkloadError",
    "analyze_circuit",
    "analyze_program",
    "analyze_result",
    "available_targets",
    "check_program",
    "circuit_statevector",
    "circuit_to_qasm",
    "circuit_unitary",
    "circuits_equivalent",
    "coerce_workload",
    "compile",
    "compile_formula",
    "cost_model_for",
    "device_info",
    "format_profile_table",
    "format_report",
    "formula_polynomial",
    "get_device",
    "get_target",
    "list_devices",
    "measurement_distribution",
    "nativize_circuit",
    "parse_dimacs",
    "parse_qasm",
    "parse_wqasm",
    "program_duration_us",
    "program_eps",
    "qaoa_circuit",
    "qasm_to_circuit",
    "random_ksat",
    "register_device",
    "register_target",
    "satlib_instance",
    "simulate_circuit",
    "simulate_program",
    "simulate_result",
    "target_info",
    "telemetry",
    "to_dimacs",
    "washington_backend",
]
