"""Weaver: a retargetable compiler framework for FPQA quantum architectures.

Reproduction of Kirmemis et al., CGO 2025 (arXiv:2409.07870).  The public
API mirrors the paper's three components:

* **wQasm** (paper section 4) -- :func:`parse_wqasm`, :class:`WQasmProgram`,
  and the OpenQASM front end in :mod:`repro.qasm`;
* **wOptimizer** (section 5) -- :class:`WeaverFPQACompiler` /
  :func:`compile_formula` with the clause-coloring, color-shuttling, and
  gate-compression passes;
* **wChecker** (section 6) -- :class:`WChecker` / :func:`check_program`.

Quickstart::

    from repro import satlib_instance, compile_formula, check_program

    formula = satlib_instance("uf20-01")
    result = compile_formula(formula)
    report = check_program(result.program)
    assert report.ok
"""

from .exceptions import (
    AnnotationError,
    CircuitError,
    ColoringError,
    CompilationError,
    CompilationTimeout,
    EquivalenceError,
    FPQAConstraintError,
    QasmSemanticError,
    QasmSyntaxError,
    RoutingError,
    SatError,
    SimulationError,
    VerificationError,
    WeaverError,
)
from .circuits import (
    Gate,
    Instruction,
    QuantumCircuit,
    circuit_statevector,
    circuit_unitary,
    circuits_equivalent,
    measurement_distribution,
)
from .sat import (
    Clause,
    CnfFormula,
    formula_polynomial,
    parse_dimacs,
    random_ksat,
    satlib_instance,
    to_dimacs,
)
from .qaoa import QaoaParameters, qaoa_circuit
from .qasm import circuit_to_qasm, parse_qasm, qasm_to_circuit
from .wqasm import WQasmProgram, parse_wqasm
from .fpqa import FPQADevice, FPQAHardwareParams
from .passes import WeaverFPQACompiler, compile_formula, nativize_circuit
from .checker import CheckReport, WChecker, check_program
from .superconducting import SuperconductingTranspiler, washington_backend
from .metrics import program_duration_us, program_eps

__version__ = "1.0.0"

__all__ = [
    "AnnotationError",
    "CheckReport",
    "CircuitError",
    "Clause",
    "CnfFormula",
    "ColoringError",
    "CompilationError",
    "CompilationTimeout",
    "EquivalenceError",
    "FPQAConstraintError",
    "FPQADevice",
    "FPQAHardwareParams",
    "Gate",
    "Instruction",
    "QaoaParameters",
    "QasmSemanticError",
    "QasmSyntaxError",
    "QuantumCircuit",
    "RoutingError",
    "SatError",
    "SimulationError",
    "SuperconductingTranspiler",
    "VerificationError",
    "WChecker",
    "WQasmProgram",
    "WeaverError",
    "WeaverFPQACompiler",
    "check_program",
    "circuit_statevector",
    "circuit_to_qasm",
    "circuit_unitary",
    "circuits_equivalent",
    "compile_formula",
    "formula_polynomial",
    "measurement_distribution",
    "nativize_circuit",
    "parse_dimacs",
    "parse_qasm",
    "parse_wqasm",
    "program_duration_us",
    "program_eps",
    "qaoa_circuit",
    "qasm_to_circuit",
    "random_ksat",
    "satlib_instance",
    "to_dimacs",
    "washington_backend",
]
