"""The hot-path optimization switchboard.

Every optimization that changed the *implementation* (never the emitted
program) of the FPQA compile path sits behind one boolean here, so that

* the default pipeline runs with everything on,
* ``OptimizationFlags.reference()`` replicates the legacy pipeline for
  same-machine speedup benchmarks, and
* equivalence tests can toggle one mechanism at a time and assert the
  emitted wQasm program is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizationFlags:
    """Which compiler fast paths are enabled.

    All flags preserve the emitted program exactly except
    ``closed_form_euler``, which swaps the numerically-equivalent (but not
    bit-identical) legacy SU(2)->SO(3) Euler extraction for the direct
    closed form; the wChecker verifies both to the same tolerance.
    """

    #: Derive ZYX Raman angles in closed form from the SU(2) entries
    #: instead of building the 3x3 SO(3) image via nine traces.
    closed_form_euler: bool = True
    #: Memoize ``(angles, u3 gate)`` by matrix bytes in the code generator.
    memoize_angles: bool = True
    #: Cache per-clause Raman matrix sets by (signs, weight, gamma).
    memoize_matrices: bool = True
    #: Reuse zone-move plans when the parked map repeats across layers.
    memoize_plans: bool = True
    #: Spatial-hash + dirty-tracked Rydberg cluster resolution instead of
    #: the dense O(n^2) distance matrix on every pulse.
    incremental_clusters: bool = True
    #: Record every instruction on the compiler-internal device.  The
    #: code generator already keeps the program stream itself, so its
    #: device history is pure overhead (time and unbounded memory); the
    #: wChecker's replay devices keep recording by default.
    record_history: bool = False

    @classmethod
    def reference(cls) -> "OptimizationFlags":
        """The unoptimized legacy pipeline (pre-optimization behavior)."""
        return cls(
            closed_form_euler=False,
            memoize_angles=False,
            memoize_matrices=False,
            memoize_plans=False,
            incremental_clusters=False,
            record_history=True,
        )

    @classmethod
    def coerce(cls, value) -> "OptimizationFlags":
        """Accept ``True`` / ``False`` / an instance (target option seam)."""
        if isinstance(value, cls):
            return value
        if value is True or value is None:
            return cls()
        if value is False:
            return cls.reference()
        raise TypeError(
            f"optimize= expects bool or OptimizationFlags, got {value!r}"
        )

    def but(self, **overrides) -> "OptimizationFlags":
        """Copy with selected flags replaced (test convenience)."""
        return replace(self, **overrides)
