"""Per-pass / per-primitive profiling counters.

The :class:`Profiler` is deliberately primitive-cheap: hot-path call sites
do one dict lookup and two float adds, so instrumentation stays on for
every compile (the profile is part of every ``CompilationResult``).  The
finished profile is a plain JSON-safe dict with a schema version, so it
round-trips through the result serializers unchanged.

The profiler doubles as the telemetry layer's pass-boundary hook:
when tracing is enabled (:func:`repro.telemetry.configure`), every
:meth:`Profiler.add_pass` also records a completed span under the
ambient parent — the codegen pass boundaries already instrumented for
the profile become trace spans for free.  Disabled, the hook is one
``ContextVar`` read.
"""

from __future__ import annotations

from ..telemetry.trace import current_tracer

#: Bump when the profile dict layout changes.
PROFILE_SCHEMA_VERSION = 1


class Profiler:
    """Accumulates pass timings, primitive counters, and cache hit rates."""

    __slots__ = ("passes", "primitives", "caches")

    def __init__(self) -> None:
        #: pass name -> cumulative seconds
        self.passes: dict[str, float] = {}
        #: primitive name -> [count, cumulative seconds]
        self.primitives: dict[str, list] = {}
        #: cache name -> [hits, misses]
        self.caches: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Recording (hot path: keep these tiny)
    # ------------------------------------------------------------------
    def add_pass(self, name: str, seconds: float) -> None:
        self.passes[name] = self.passes.get(name, 0.0) + seconds
        tracer = current_tracer()
        if tracer is not None:
            tracer.record(name, seconds=seconds)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        entry = self.primitives.get(name)
        if entry is None:
            self.primitives[name] = [count, seconds]
        else:
            entry[0] += count
            entry[1] += seconds

    def hit(self, name: str, count: int = 1) -> None:
        entry = self.caches.get(name)
        if entry is None:
            self.caches[name] = [count, 0]
        else:
            entry[0] += count

    def miss(self, name: str, count: int = 1) -> None:
        entry = self.caches.get(name)
        if entry is None:
            self.caches[name] = [0, count]
        else:
            entry[1] += count

    def set_cache(self, name: str, hits: int, misses: int) -> None:
        """Overwrite a cache's counters (for caches tracked elsewhere)."""
        self.caches[name] = [int(hits), int(misses)]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge_profile(self, profile: dict | None) -> None:
        """Fold a frozen profile dict into this profiler's counters.

        The cross-process aggregation path: a pool worker's counters
        ride back inside ``result.profile`` (and
        ``result.execution["profile"]``), and the parent merges them so
        fleet-wide stats see every pass and cache, not just the parent
        process's own.  Bypasses :meth:`add_pass` deliberately — merged
        history must not emit trace spans timestamped "now".  Sim
        profiles strip ``seconds`` from primitives for determinism;
        missing fields merge as zero.
        """
        if not profile:
            return
        for name, data in (profile.get("passes") or {}).items():
            self.passes[name] = self.passes.get(name, 0.0) + float(
                data.get("seconds") or 0.0
            )
        for name, data in (profile.get("primitives") or {}).items():
            entry = self.primitives.get(name)
            count = int(data.get("count") or 0)
            seconds = float(data.get("seconds") or 0.0)
            if entry is None:
                self.primitives[name] = [count, seconds]
            else:
                entry[0] += count
                entry[1] += seconds
        for name, data in (profile.get("caches") or {}).items():
            entry = self.caches.get(name)
            hits = int(data.get("hits") or 0)
            misses = int(data.get("misses") or 0)
            if entry is None:
                self.caches[name] = [hits, misses]
            else:
                entry[0] += hits
                entry[1] += misses

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def profile(self, total_seconds: float | None = None) -> dict:
        """Freeze the counters into the JSON-safe profile dict."""
        payload: dict = {
            "schema": PROFILE_SCHEMA_VERSION,
            "passes": {
                name: {"seconds": seconds} for name, seconds in self.passes.items()
            },
            "primitives": {
                name: {"count": entry[0], "seconds": entry[1]}
                for name, entry in self.primitives.items()
            },
            "caches": {
                name: {"hits": entry[0], "misses": entry[1]}
                for name, entry in self.caches.items()
            },
        }
        if total_seconds is not None:
            payload["total_seconds"] = float(total_seconds)
        return payload


def _rows(title: tuple[str, ...], rows: list[tuple[str, ...]]) -> list[str]:
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(title, *rows)
    ]
    lines = []
    for row in (title, *rows):
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return lines


def format_profile_table(profile: dict) -> str:
    """Render a profile dict as the ``--profile`` terminal table."""
    if not profile:
        return "(no profile recorded)"
    sections: list[str] = []
    passes = profile.get("passes") or {}
    if passes:
        rows = [
            (name, f"{data['seconds'] * 1e3:.2f} ms")
            for name, data in sorted(
                passes.items(), key=lambda item: -item[1]["seconds"]
            )
        ]
        sections.extend(_rows(("pass", "seconds"), rows))
    primitives = profile.get("primitives") or {}
    if primitives:
        if sections:
            sections.append("")
        rows = [
            (name, str(data["count"]), f"{data['seconds'] * 1e3:.2f} ms")
            for name, data in sorted(
                primitives.items(), key=lambda item: -item[1]["seconds"]
            )
        ]
        sections.extend(_rows(("primitive", "count", "seconds"), rows))
    caches = profile.get("caches") or {}
    if caches:
        if sections:
            sections.append("")
        rows = []
        for name, data in sorted(caches.items()):
            hits, misses = data["hits"], data["misses"]
            total = hits + misses
            rate = f"{100.0 * hits / total:.1f}%" if total else "-"
            rows.append((name, str(hits), str(misses), rate))
        sections.extend(_rows(("cache", "hits", "misses", "hit rate"), rows))
    total = profile.get("total_seconds")
    if total is not None:
        if sections:
            sections.append("")
        sections.append(f"total: {total * 1e3:.1f} ms")
    return "\n".join(sections)
