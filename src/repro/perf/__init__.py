"""Performance instrumentation for the compiler hot paths.

Industrial compiler stacks (Quilc, OpenQL) treat per-pass profiling as a
first-class subsystem; this package is Weaver's equivalent.  It has three
pieces:

* :class:`Profiler` — cheap per-pass / per-primitive counters and timers
  threaded through the :class:`~repro.passes.base.PassManager` and the
  FPQA code generator.  Every compile carries one; the result surfaces it
  as ``CompilationResult.profile`` (a JSON-safe dict) and the CLI renders
  it via ``weaver compile --profile``.
* :class:`OptimizationFlags` — the switchboard for the hot-path
  optimizations (closed-form Euler angles, angle/matrix/plan memoization,
  incremental Rydberg cluster resolution, history recording).
  ``OptimizationFlags.reference()`` replicates the unoptimized legacy
  pipeline so benchmarks can measure speedups against it on the same
  machine and equivalence tests can diff emitted programs.
* :mod:`repro.perf.bench` — the benchmark runner behind
  ``python -m repro.perf.bench``; it appends compile-time measurements
  (sizes x targets x devices, optimized vs reference) to
  ``BENCH_compile.json`` so the repo keeps a performance trajectory.

The package is rebased on :mod:`repro.telemetry`: with tracing enabled,
every :meth:`Profiler.add_pass` pass boundary also emits a trace span,
and :meth:`Profiler.merge_profile` folds worker-process profiles back
into a parent registry (the service's fleet-wide ``stats``).
"""

from .flags import OptimizationFlags
from .profile import PROFILE_SCHEMA_VERSION, Profiler, format_profile_table


def __getattr__(name: str):
    # Lazy: keeps `python -m repro.perf.bench` from double-importing the
    # bench module (runpy warns when the package eagerly imports it).
    if name in ("run_compile_bench", "write_bench_file"):
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "OptimizationFlags",
    "PROFILE_SCHEMA_VERSION",
    "Profiler",
    "format_profile_table",
    "run_compile_bench",
    "write_bench_file",
]
