"""Compile-time benchmark runner: the repo's performance trajectory.

Measures end-to-end ``repro.compile`` wall time over a grid of problem
sizes x targets x devices, in both the optimized and the reference
(legacy, unoptimized) pipelines, and appends one run record to
``BENCH_compile.json``.  Committing the file after meaningful perf work
gives future sessions before/after numbers measured on a known machine.

Usage::

    python -m repro.perf.bench                       # default grid
    python -m repro.perf.bench --sizes 50,150,250 --repeats 3
    python -m repro.perf.bench --output BENCH_compile.json --label "PR 3"

File format (``schema`` 1)::

    {"schema": 1, "runs": [
        {"timestamp": ..., "label": ..., "machine": {...},
         "cells": [{"target": "fpqa", "device": null, "num_vars": 150,
                    "num_clauses": 639, "seed": 7, "repeats": 3,
                    "optimized_seconds": ..., "reference_seconds": ...,
                    "speedup": ..., "num_pulses": ...}, ...]}]}

``reference_seconds`` is measured with
:meth:`~repro.perf.flags.OptimizationFlags.reference` — the pre-
optimization pipeline — so ``speedup`` is an apples-to-apples
same-machine before/after delta.  Non-FPQA targets have no reference
pipeline; their cells carry ``null`` there.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from .flags import OptimizationFlags

DEFAULT_SIZES = (50, 100, 150, 250)
DEFAULT_OUTPUT = "BENCH_compile.json"
BENCH_SCHEMA_VERSION = 1
#: Clause/variable ratio of the hard random 3-SAT regime (SATLIB's 4.26).
CLAUSE_RATIO = 4.26


def _time_compile(build, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``build()``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        build()
        best = min(best, time.perf_counter() - start)
    return best


def run_compile_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    targets: tuple[str, ...] = ("fpqa",),
    devices: tuple[str | None, ...] = (None,),
    seed: int = 7,
    repeats: int = 2,
    include_reference: bool = True,
    verbose: bool = False,
) -> dict:
    """Measure the grid and return one run record (no file I/O)."""
    import repro
    from ..sat.generator import random_ksat

    cells = []
    for num_vars in sizes:
        formula = random_ksat(num_vars, round(num_vars * CLAUSE_RATIO), seed=seed)
        for target in targets:
            for device in devices:
                result = repro.compile(formula, target=target, device=device)
                optimized = _time_compile(
                    lambda: repro.compile(formula, target=target, device=device),
                    repeats,
                )
                reference = None
                if include_reference and target in ("fpqa", "fpqa-nocompress"):
                    options = {"optimize": OptimizationFlags.reference()}
                    if device is not None:
                        options["device"] = device
                    reference = _time_compile(
                        lambda: repro.compile(
                            formula, target=target, target_options=options
                        ),
                        repeats,
                    )
                cell = {
                    "target": target,
                    "device": device,
                    "num_vars": num_vars,
                    "num_clauses": formula.num_clauses,
                    "seed": seed,
                    "repeats": repeats,
                    "optimized_seconds": optimized,
                    "reference_seconds": reference,
                    "speedup": (reference / optimized) if reference else None,
                    "num_pulses": result.num_pulses,
                }
                cells.append(cell)
                if verbose:
                    speedup = (
                        f"{cell['speedup']:.2f}x vs reference"
                        if cell["speedup"]
                        else "no reference"
                    )
                    print(
                        f"[bench] {target}"
                        + (f"@{device}" if device else "")
                        + f" n={num_vars}: {optimized:.3f}s ({speedup})",
                        file=sys.stderr,
                    )
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
        },
        "cells": cells,
    }


def write_bench_file(run: dict, path: str | Path = DEFAULT_OUTPUT) -> Path:
    """Append ``run`` to the trajectory file at ``path`` (creating it)."""
    path = Path(path)
    payload = {"schema": BENCH_SCHEMA_VERSION, "runs": []}
    if path.exists():
        text = path.read_text(encoding="utf-8").strip()
        if text:
            try:
                existing = json.loads(text)
            except json.JSONDecodeError:
                existing = None
            if (
                isinstance(existing, dict)
                and existing.get("schema") == BENCH_SCHEMA_VERSION
                and isinstance(existing.get("runs"), list)
            ):
                payload = existing
            else:
                # Never lose history silently: a corrupt or foreign file
                # moves aside, and the fresh run still gets written.
                backup = path.with_suffix(path.suffix + ".bak")
                backup.write_text(text + "\n", encoding="utf-8")
                print(
                    f"[bench] {path} is corrupt or has an unknown schema; "
                    f"saved it to {backup} and starting a fresh trajectory",
                    file=sys.stderr,
                )
    payload["runs"].append(run)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench", description=__doc__
    )
    parser.add_argument(
        "--sizes", default=",".join(map(str, DEFAULT_SIZES)),
        help="comma-separated variable counts (default %(default)s)",
    )
    parser.add_argument(
        "--targets", default="fpqa", help="comma-separated target names"
    )
    parser.add_argument(
        "--devices", default="",
        help="comma-separated device profiles (empty = target default)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--no-reference", action="store_true",
        help="skip the slow legacy-pipeline baseline measurements",
    )
    parser.add_argument("--label", default=None, help="tag for this run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    sizes = tuple(int(s) for s in args.sizes.split(",") if s)
    targets = tuple(t for t in args.targets.split(",") if t)
    devices = tuple(d for d in args.devices.split(",") if d) or (None,)
    run = run_compile_bench(
        sizes=sizes,
        targets=targets,
        devices=devices,
        seed=args.seed,
        repeats=args.repeats,
        include_reference=not args.no_reference,
        verbose=True,
    )
    if args.label:
        run["label"] = args.label
    path = write_bench_file(run, args.output)
    print(f"[bench] wrote {len(run['cells'])} cells to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
