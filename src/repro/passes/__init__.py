"""wOptimizer: the FPQA-specific optimization pipeline (paper §5).

The pipeline has three stages, mirroring Figure 5:

1. :class:`ClauseColoringPass` — DSatur coloring of the clause conflict
   graph so same-color clauses execute in one global Rydberg stage.
2. :class:`ColorShuttlingPass` — Algorithm 2's order-preserving shuttle
   waves that move atoms between color zones without SWAP gates.
3. :class:`GateCompressionPass` — per-clause 3-qubit gate compression
   (Figure 7), falling back to CNOT ladders when the CCZ fidelity makes
   compression unprofitable.

:class:`FPQACompiler` orchestrates them and emits a validated
:class:`repro.wqasm.WQasmProgram`; the unified entrypoint
``repro.compile(formula, target="fpqa")`` is the public way in.
"""

from .base import CompilationContext, CompilerPass, PassManager
from .native_synthesis import nativize_circuit
from .clause_coloring import ClauseColoringPass, ClausePlacement, ColoringResult
from .color_shuttling import ColorShuttlingPass, ShuttleWave, plan_waves
from .gate_compression import (
    FragmentSchedule,
    GateCompressionPass,
    compression_beneficial,
)
from .woptimizer import (
    FPQACompiler,
    WeaverCompilationResult,
    WeaverFPQACompiler,
    compile_formula,
)

__all__ = [
    "ClauseColoringPass",
    "FPQACompiler",
    "WeaverCompilationResult",
    "ClausePlacement",
    "ColorShuttlingPass",
    "ColoringResult",
    "CompilationContext",
    "CompilerPass",
    "FragmentSchedule",
    "GateCompressionPass",
    "PassManager",
    "ShuttleWave",
    "WeaverFPQACompiler",
    "compile_formula",
    "compression_beneficial",
    "nativize_circuit",
    "plan_waves",
]
