"""Clause coloring pass (paper §5.2, Algorithm 1).

Builds the clause conflict graph, colors it with DSatur, and assigns each
clause a zone slot and per-atom roles: the two lowest-index variables act
as CCX controls (``a``, ``b``) and the highest as the target (``t``),
matching :func:`repro.qaoa.compressed_clause_circuit`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coloring import clause_conflict_graph, dsatur_coloring, validate_coloring
from ..coloring.dsatur import color_classes, greedy_sequential_coloring
from ..exceptions import CompilationError
from .base import CompilationContext, CompilerPass


@dataclass(frozen=True)
class ClausePlacement:
    """Where and how one clause executes.

    ``qubits``/``signs`` are ordered (a, b, t) for 3-literal clauses,
    (a, b) for 2-literal clauses, and (t,) for unit clauses; signs are
    ``+1.0`` for positive literals.
    """

    clause_index: int
    color: int
    slot: int
    qubits: tuple[int, ...]
    signs: tuple[float, ...]
    weight: float = 1.0

    @property
    def arity(self) -> int:
        return len(self.qubits)

    @property
    def controls(self) -> tuple[int, ...]:
        """The atoms held in AOD traps during zone execution."""
        if self.arity == 3:
            return self.qubits[:2]
        if self.arity == 2:
            return self.qubits
        return ()

    @property
    def target(self) -> int | None:
        """The atom held in the SLM slot trap (none for 2-literal clauses)."""
        if self.arity == 3:
            return self.qubits[2]
        if self.arity == 1:
            return self.qubits[0]
        return None


@dataclass
class ColoringResult:
    """Output of the clause coloring stage."""

    colors: list[int]
    groups: list[list[int]]
    placements: list[ClausePlacement]
    num_colors: int

    def group_placements(self, color: int) -> list[ClausePlacement]:
        return [self.placements[idx] for idx in self.groups[color]]


class ClauseColoringPass(CompilerPass):
    """Assign clauses to parallel execution groups via graph coloring."""

    name = "clause-coloring"

    def __init__(self, algorithm: str = "dsatur"):
        if algorithm not in ("dsatur", "greedy"):
            raise CompilationError(f"unknown coloring algorithm {algorithm!r}")
        self.algorithm = algorithm

    def run(self, context: CompilationContext) -> None:
        formula = context.formula
        if not formula.is_3sat():
            raise CompilationError(
                "wOptimizer targets MAX-3SAT; a clause exceeds three literals"
            )
        graph = clause_conflict_graph(formula)
        if self.algorithm == "dsatur":
            colors = dsatur_coloring(graph)
        else:
            colors = greedy_sequential_coloring(graph)
        validate_coloring(graph, colors)
        groups = color_classes(colors)
        placements: list[ClausePlacement | None] = [None] * len(formula.clauses)
        for color, members in enumerate(groups):
            for slot, clause_index in enumerate(members):
                clause = formula.clauses[clause_index]
                lits = sorted(clause.literals, key=abs)
                qubits = tuple(abs(lit) - 1 for lit in lits)
                signs = tuple(1.0 if lit > 0 else -1.0 for lit in lits)
                placements[clause_index] = ClausePlacement(
                    clause_index=clause_index,
                    color=color,
                    slot=slot,
                    qubits=qubits,
                    signs=signs,
                    weight=clause.weight,
                )
        result = ColoringResult(
            colors=colors,
            groups=groups,
            placements=[p for p in placements if p is not None],
            num_colors=len(groups),
        )
        if len(result.placements) != len(formula.clauses):
            raise CompilationError("internal error: clause lost during placement")
        context.properties["coloring"] = result
        context.stats.setdefault(self.name, {}).update(
            {
                "num_clauses": len(formula.clauses),
                "num_colors": result.num_colors,
                "conflict_edges": graph.num_edges,
                "max_group": max((len(g) for g in groups), default=0),
            }
        )
