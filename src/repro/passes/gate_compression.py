"""3-qubit gate compression pass (paper §5.4, Figure 7).

Decides whether each clause's cost fragment should use the native-CCZ
compressed form (2 CCZ + 2 CZ pulses plus Raman rotations) or the plain
CNOT-ladder form (10 CZ pulses and extra shuttling), based on the hardware
fidelity parameters: "the compression stage first determines whether using
the compression is beneficial" (§5.4).

The module also centralizes the per-clause Raman angle algebra shared by
the code generator and the wChecker tests.  All matrices were derived in
:mod:`repro.qaoa.cost` and are re-verified against ``exp(-i*gamma*P_C)``
by the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..circuits.gates import gate_matrix
from ..fpqa.hardware import FPQAHardwareParams
from .base import CompilationContext, CompilerPass
from .clause_coloring import ClausePlacement

_H = gate_matrix("h")

#: Raman (single-qubit) pulses per 3-literal clause in each mode, used by
#: the benefit estimate below.
RAMANS_COMPRESSED_3LIT = 8
RAMANS_LADDER_3LIT = 13
#: Entangling pulses per 3-literal clause: 2 CCZ + 2 CZ vs 10 CZ.
PULSES_COMPRESSED = (2, 2)  # (ccz, cz)
PULSES_LADDER = (0, 10)


def fragment_fidelity_compressed(hardware: FPQAHardwareParams) -> float:
    """Estimated success probability of one compressed clause fragment."""
    return (
        hardware.fidelity_ccz ** PULSES_COMPRESSED[0]
        * hardware.fidelity_cz ** PULSES_COMPRESSED[1]
        * hardware.fidelity_raman_local**RAMANS_COMPRESSED_3LIT
    )


def fragment_fidelity_ladder(hardware: FPQAHardwareParams) -> float:
    """Estimated success probability of one CNOT-ladder clause fragment."""
    return (
        hardware.fidelity_cz ** PULSES_LADDER[1]
        * hardware.fidelity_raman_local**RAMANS_LADDER_3LIT
    )


def compression_beneficial(hardware: FPQAHardwareParams) -> bool:
    """Whether CCZ compression beats the CZ ladder on this hardware."""
    return fragment_fidelity_compressed(hardware) >= fragment_fidelity_ladder(hardware)


@dataclass(frozen=True)
class FragmentSchedule:
    """The compression decision plus its fidelity evidence."""

    use_compression: bool
    fidelity_compressed: float
    fidelity_ladder: float


class GateCompressionPass(CompilerPass):
    """Choose the per-clause lowering mode from hardware fidelities."""

    name = "gate-compression"

    def run(self, context: CompilationContext) -> None:
        hardware = context.hardware
        compressed = fragment_fidelity_compressed(hardware)
        ladder = fragment_fidelity_ladder(hardware)
        if context.compression_override is not None:
            use_compression = context.compression_override
        else:
            use_compression = compressed >= ladder
        schedule = FragmentSchedule(
            use_compression=use_compression,
            fidelity_compressed=compressed,
            fidelity_ladder=ladder,
        )
        context.properties["fragments"] = schedule
        context.stats.setdefault(self.name, {}).update(
            {
                "use_compression": use_compression,
                "fidelity_compressed": compressed,
                "fidelity_ladder": ladder,
            }
        )


# ----------------------------------------------------------------------
# Raman pulse algebra for clause fragments
# ----------------------------------------------------------------------
def _rz(angle: float) -> np.ndarray:
    return gate_matrix("rz", (angle,))


def _rx(angle: float) -> np.ndarray:
    return gate_matrix("rx", (angle,))


def control_flip_needed(sign: float) -> bool:
    """Whether a control with literal ``sign`` needs X conjugation.

    Derived in :mod:`repro.qaoa.cost`: the CCX sandwich needs the effective
    Z sign ``f = -s``, so positive literals are conjugated.
    """
    return sign > 0


def _build_compressed(
    signs: tuple[float, ...], gamma: float
) -> dict[str, np.ndarray | None]:
    sa, sb, st = signs
    x = gate_matrix("x")
    out: dict[str, np.ndarray | None] = {
        "ctrl_pre_a": x if control_flip_needed(sa) else None,
        "ctrl_pre_b": x if control_flip_needed(sb) else None,
        "target_pre": _H,
        "target_mid": _H @ _rz(-gamma * st / 2.0) @ _H,
        "target_post": _rz(gamma * st / 2.0) @ _H,
        "ctrl_post_a": _rz(gamma * sa / 4.0) @ (x if control_flip_needed(sa) else np.eye(2)),
        "ctrl_post_b": _rz(gamma * sb / 4.0) @ (x if control_flip_needed(sb) else np.eye(2)),
        "b_pre": _H,
        "b_mid": _rx(gamma * sa * sb / 4.0),
        "b_post": _H,
    }
    return out


def _build_ladder(signs: tuple[float, ...], gamma: float) -> dict[str, np.ndarray]:
    sa, sb, st = signs
    return {
        "pair_b_pre": _H,
        "pair_b_mid": _rx(gamma * sa * sb / 4.0),
        "pair_b_post": _H,
        "cubic_b_side": _H,  # both sides of each CX(a, b) CZ pulse
        "cubic_t_pre": _H,
        "cubic_t_mid": _rx(gamma * sa * sb * st / 4.0),
        "cubic_t_post": _H,
        "bt_t_pre": _H,
        "bt_t_mid": _rx(gamma * sb * st / 4.0),
        "bt_t_post": _H,
        "at_t_pre": _H,
        "at_t_mid": _rx(gamma * sa * st / 4.0),
        "at_t_post": _H,
        "lin_a": _rz(gamma * sa / 4.0),
        "lin_b": _rz(gamma * sb / 4.0),
        "lin_t": _rz(gamma * st / 4.0),
    }


def _build_pair(signs: tuple[float, ...], gamma: float) -> dict[str, np.ndarray]:
    sa, sb = signs
    return {
        "b_pre": _H,
        "b_mid": _rx(gamma * sa * sb / 2.0),
        "b_post": _rz(gamma * sb / 2.0) @ _H,
        "a_post": _rz(gamma * sa / 2.0),
    }


_BUILDERS = {
    "compressed": _build_compressed,
    "ladder": _build_ladder,
    "pair": _build_pair,
}

#: Total cache misses of :func:`cached_clause_matrices` (the body only
#: runs on a miss); callers snapshot it around a call to learn whether
#: that call hit, without paying for ``cache_info()`` on the hot path.
clause_matrix_misses = 0


@lru_cache(maxsize=4096)
def cached_clause_matrices(
    mode: str, signs: tuple[float, ...], effective_gamma: float
) -> dict[str, np.ndarray | None]:
    """Clause Raman matrices, cached by everything they depend on.

    The matrix sets are pure functions of (literal signs, weight*gamma) —
    the placement's geometry plays no role — and a formula uses only a
    handful of distinct sign patterns, so across layers and placements the
    same sets recur dozens of times.  The cache persists across compiles
    (the inputs fully determine the outputs).  Treat the returned dict and
    its arrays as read-only: they are shared between all callers.
    """
    global clause_matrix_misses
    clause_matrix_misses += 1
    return _BUILDERS[mode](signs, effective_gamma)


def compressed_raman_matrices(
    placement: ClausePlacement, gamma: float
) -> dict[str, np.ndarray | None]:
    """Raman pulse matrices for one 3-literal clause, compressed mode.

    Keys: ``ctrl_pre_a/b`` (X flip or None), ``target_pre`` (H),
    ``target_mid`` (between the CCZ pulses), ``target_post``,
    ``ctrl_post_a/b``, ``b_pre``/``b_mid``/``b_post`` (CZ-ladder stage).
    """
    # gamma scaled by the clause weight: weighted MAX-SAT
    return _build_compressed(placement.signs, gamma * placement.weight)


def ladder_raman_matrices(
    placement: ClausePlacement, gamma: float
) -> dict[str, np.ndarray]:
    """Raman pulse matrices for one 3-literal clause, CNOT-ladder mode.

    The zone executor visits stances ``pair -> bt -> pair -> bt -> at`` and
    needs: quad(a,b) on the pair stance, the cubic term opened/closed by
    ``CX(a,b)`` with its inner ``CX(b,t) RZ CX(b,t)`` on the bt stance,
    then quad(b,t) and quad(a,t) on hover stances, plus linear RZ pulses.
    """
    return _build_ladder(placement.signs, gamma * placement.weight)


def pair_raman_matrices(
    placement: ClausePlacement, gamma: float
) -> dict[str, np.ndarray]:
    """Raman pulse matrices for a 2-literal clause (CZ-ladder pair)."""
    return _build_pair(placement.signs, gamma * placement.weight)


def unit_raman_matrix(placement: ClausePlacement, gamma: float) -> np.ndarray:
    """Raman pulse matrix for a unit clause: a single RZ."""
    (s,) = placement.signs
    return _rz(gamma * placement.weight * s)
