"""The Weaver FPQA compiler: pass pipeline plus code generation.

Given a MAX-3SAT formula and QAOA parameters, this module runs the three
wOptimizer passes (clause coloring, color shuttling, gate compression) and
then *executes* the resulting plan against the :class:`FPQADevice` state
machine while recording every instruction, so the emitted
:class:`WQasmProgram` is physically validated by construction: every
transfer distance, AOD ordering constraint, and Rydberg cluster shape was
checked as the program was generated.  Each Rydberg pulse is additionally
cross-checked against the cluster set the plan intended — a compiler
self-check that the wChecker later repeats independently.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter

import numpy as np

from ..circuits import Instruction, QuantumCircuit
from ..circuits.euler import zyx_euler_angles, zyx_euler_angles_so3
from ..circuits.gates import Gate, gate_matrix, make_gate, u3_from_matrix
from ..exceptions import CompilationError
from ..fpqa.device import FPQADevice
from ..fpqa.geometry import ZoneGeometry, position_key, zone_layout
from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)
from ..qaoa.builder import QaoaParameters, qaoa_circuit
from ..sat.cnf import CnfFormula
from ..wqasm.program import AnnotatedOperation, WQasmProgram
from .base import CompilationContext, PassManager
from .clause_coloring import ClauseColoringPass, ClausePlacement, ColoringResult
from .color_shuttling import (
    ColorShuttlingPass,
    ShuttleWave,
    ZoneMovePlan,
    plan_zone_moves,
)
from ..perf import OptimizationFlags
from . import gate_compression
from .gate_compression import (
    FragmentSchedule,
    GateCompressionPass,
    cached_clause_matrices,
    compressed_raman_matrices,
    ladder_raman_matrices,
    pair_raman_matrices,
    unit_raman_matrix,
)

Position = tuple[float, float]

_H = gate_matrix("h")

_UNCACHED_MATRIX_BUILDERS = {
    "compressed": compressed_raman_matrices,
    "ladder": ladder_raman_matrices,
    "pair": pair_raman_matrices,
}


@lru_cache(maxsize=8)
def _cluster_gate(size: int) -> Gate:
    """The CZ/CCZ/MCZ gate a Rydberg cluster of ``size`` atoms applies."""
    name = "cz" if size == 2 else ("ccz" if size == 3 else "mcz")
    return make_gate(name, num_qubits=size)


class ZoneLayoutPass:
    """Size the zone grid from the coloring (between coloring and shuttling).

    Packs zones into a near-square grid so shuttle travel distances stay
    short, with the diagonal shear of Figure 5 between grid rows.  Skipped
    when the caller supplied explicit geometry.
    """

    name = "zone-layout"

    def run(self, context: CompilationContext) -> None:
        coloring: ColoringResult = context.require("coloring")
        if not context.auto_geometry:
            return
        zones_per_row = max(1, math.isqrt(max(coloring.num_colors, 1)))
        slots_per_zone = max(
            (len(group) for group in coloring.groups), default=1
        )
        context.geometry = zone_layout(
            context.hardware,
            zones_per_row=zones_per_row,
            slots_per_zone=max(slots_per_zone, 1),
        )
        context.stats.setdefault(self.name, {}).update(
            {"zones_per_row": zones_per_row, "slots_per_zone": slots_per_zone}
        )


@dataclass
class WeaverCompilationResult:
    """Everything the evaluation harness needs from one compilation."""

    program: WQasmProgram
    context: CompilationContext
    native_circuit: QuantumCircuit
    compile_seconds: float
    #: JSON-safe per-pass / per-primitive performance profile.
    profile: dict | None = None

    @property
    def stats(self) -> dict:
        return self.context.stats


# Shared with the device's SLM index: one rounding rule for every
# position-keyed lookup (see repro.fpqa.geometry.position_key).
_position_key = position_key


class _CodeGenerator:
    """Drives the FPQA device and records the wQasm program."""

    def __init__(
        self,
        context: CompilationContext,
        coloring: ColoringResult,
        schedule: FragmentSchedule,
        flags: OptimizationFlags | None = None,
    ):
        self.context = context
        self.coloring = coloring
        self.schedule = schedule
        self.geometry = context.geometry
        self.hardware = context.hardware
        self.formula = context.formula
        self.num_qubits = context.formula.num_vars
        self.flags = flags or OptimizationFlags()
        self.profiler = context.profiler
        self.device = FPQADevice(
            context.hardware,
            record_history=self.flags.record_history,
            incremental_clusters=self.flags.incremental_clusters,
        )
        self.operations: list[AnnotatedOperation] = []
        self.pending: list[FPQAInstruction] = []
        self.trap_index: dict[tuple[float, float], int] = {}
        self.column_of: dict[int, int] = {}
        self.park_xs: list[float] = []
        self._angle_fn = (
            zyx_euler_angles if self.flags.closed_form_euler else zyx_euler_angles_so3
        )
        #: matrix bytes -> ((x, y, z), u3 gate); the same handful of
        #: matrices (H, rx(2*beta), per-clause pre/mid/post) recur dozens
        #: of times per layer, so angle extraction runs ~once per distinct
        #: matrix instead of once per pulse.
        self._raman_cache: dict[bytes, tuple[tuple[float, float, float], Gate]] | None = (
            {} if self.flags.memoize_angles else None
        )
        #: (matrix bytes, qubit) -> (RamanLocal pulse, logical gate tuple);
        #: one level above the angle cache: the whole immutable operation.
        self._local_op_cache: dict[tuple[bytes, int], tuple] | None = (
            {} if self.flags.memoize_angles else None
        )
        #: matrix bytes -> (RamanGlobal pulse, ready logical gate tuple).
        self._global_gates_cache: dict[bytes, tuple] = {}

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------
    def _emit_move(self, instruction: FPQAInstruction) -> None:
        start = perf_counter()
        self.device.apply(instruction)
        self.pending.append(instruction)
        self.profiler.add(
            "transfer" if type(instruction) is Transfer else "shuttle",
            perf_counter() - start,
        )

    def _finish_op(
        self, pulse: FPQAInstruction, gates: tuple[Instruction, ...]
    ) -> None:
        instructions = tuple(self.pending) + (pulse,)
        self.pending.clear()
        self.operations.append(AnnotatedOperation(instructions, gates))

    def _flush_pending(self) -> None:
        if self.pending:
            self.operations.append(AnnotatedOperation(tuple(self.pending), ()))
            self.pending.clear()

    def _raman_parts(
        self, matrix: np.ndarray, key: bytes | None = None
    ) -> tuple[tuple[float, float, float], Gate]:
        """(Euler angles, logical u3 gate) for ``matrix``, memoized."""
        cache = self._raman_cache
        if cache is None:
            return self._angle_fn(matrix), u3_from_matrix(matrix)
        if key is None:
            key = matrix.tobytes()
        parts = cache.get(key)
        if parts is None:
            parts = (self._angle_fn(matrix), u3_from_matrix(matrix))
            cache[key] = parts
            self.profiler.miss("raman_angles")
        else:
            self.profiler.hit("raman_angles")
        return parts

    def _emit_raman_local(self, qubit: int, matrix: np.ndarray) -> None:
        start = perf_counter()
        if self._local_op_cache is None:
            (x, y, z), gate = self._raman_parts(matrix)
            instruction = RamanLocal(qubit, x, y, z)
            gates = (Instruction(gate, (qubit,)),)
        else:
            # Both the pulse and its logical annotation are pure values of
            # (matrix, qubit); reuse whole immutable operation parts.
            matrix_key = matrix.tobytes()
            entry = self._local_op_cache.get((matrix_key, qubit))
            if entry is None:
                (x, y, z), gate = self._raman_parts(matrix, key=matrix_key)
                entry = (RamanLocal(qubit, x, y, z), (Instruction(gate, (qubit,)),))
                self._local_op_cache[(matrix_key, qubit)] = entry
            else:
                self.profiler.hit("raman_angles")
            instruction, gates = entry
        self.device.apply(instruction)
        self._finish_op(instruction, gates)
        self.profiler.add("raman_local", perf_counter() - start)

    def _emit_raman_global(self, matrix: np.ndarray) -> None:
        start = perf_counter()
        if self._raman_cache is None:
            (x, y, z), gate = self._raman_parts(matrix)
            instruction = RamanGlobal(x, y, z)
            gates = tuple(
                Instruction(gate, (qubit,)) for qubit in range(self.num_qubits)
            )
        else:
            key = matrix.tobytes()
            entry = self._global_gates_cache.get(key)
            if entry is None:
                (x, y, z), gate = self._raman_parts(matrix, key=key)
                entry = (
                    RamanGlobal(x, y, z),
                    tuple(
                        Instruction(gate, (qubit,))
                        for qubit in range(self.num_qubits)
                    ),
                )
                self._global_gates_cache[key] = entry
            else:
                self.profiler.hit("raman_angles")
            instruction, gates = entry
        self.device.apply(instruction)
        self._finish_op(instruction, gates)
        self.profiler.add("raman_global", perf_counter() - start)

    def _emit_rydberg(self, expected: set[frozenset[int]]) -> None:
        start = perf_counter()
        instruction = RydbergPulse()
        clusters = self.device.apply(instruction)
        got = {frozenset(cluster.qubits) for cluster in clusters}
        if got != expected:
            raise CompilationError(
                f"Rydberg pulse produced clusters {sorted(map(sorted, got))}, "
                f"plan intended {sorted(map(sorted, expected))}"
            )
        gates = tuple(
            Instruction(_cluster_gate(cluster.size), tuple(sorted(cluster.qubits)))
            for cluster in clusters
        )
        self._finish_op(instruction, gates)
        self.profiler.add("rydberg", perf_counter() - start)

    # ------------------------------------------------------------------
    # Movement primitives
    # ------------------------------------------------------------------
    def _row_loaded(self) -> bool:
        return bool(self.device.aod_atoms)

    def _park_columns(self) -> None:
        moves = []
        loaded_cols = {col for col, _ in self.device.aod_atoms}
        for index, park_x in enumerate(self.park_xs):
            delta = park_x - self.device.aod_col_x[index]
            if abs(delta) > 1e-9:
                moves.append(
                    ShuttleMove("column", index, delta, loaded=index in loaded_cols)
                )
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))

    def _align_columns(self, xs: list[float]) -> None:
        """Send columns ``0..len(xs)-1`` to ``xs`` (must be sorted)."""
        self._park_columns()
        moves = []
        loaded_cols = {col for col, _ in self.device.aod_atoms}
        for index, x in enumerate(xs):
            delta = x - self.device.aod_col_x[index]
            if abs(delta) > 1e-9:
                moves.append(
                    ShuttleMove("column", index, delta, loaded=index in loaded_cols)
                )
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))

    def _row_to(self, y: float) -> None:
        delta = y - self.device.aod_row_y[0]
        if abs(delta) > 1e-9:
            self._emit_move(
                Shuttle(ShuttleMove("row", 0, delta, loaded=self._row_loaded()))
            )

    def _transfer(self, trap_position: Position, column: int) -> None:
        key = _position_key(trap_position)
        if key not in self.trap_index:
            raise CompilationError(f"no SLM trap at {trap_position}")
        self._emit_move(Transfer(self.trap_index[key], column, 0))

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def generate(self, measure: bool) -> WQasmProgram:
        placements = self.coloring.placements
        layers_plans = self._plan_layers()
        setup = self._setup_device(layers_plans)
        # QAOA initialization: Hadamard on every qubit via one global pulse.
        self._emit_raman_global(_H)
        for layer, (gamma, beta) in enumerate(
            zip(self.context.parameters.gammas, self.context.parameters.betas)
        ):
            plans = layers_plans[layer]
            for color in range(self.coloring.num_colors):
                for wave in plans[color].waves:
                    self._run_wave(wave)
                self._execute_zone(color, gamma)
            # Mixer: RX(2*beta) on every qubit via one global pulse.
            self._emit_raman_global(gate_matrix("rx", (2.0 * beta,)))
        self._flush_pending()
        program = WQasmProgram(
            num_qubits=self.num_qubits,
            setup=setup,
            operations=self.operations,
            measured=measure,
            name=f"weaver-{self.formula.name}",
        )
        return program

    def _plan_layers(self) -> list[list[ZoneMovePlan]]:
        parked = {
            var: self.geometry.home_position(var, self.num_qubits)
            for var in range(self.num_qubits)
        }
        layers = []
        #: frozen parked map -> (plans, parked map after the layer).  The
        #: zone plan is a pure function of where the atoms start, so once
        #: the parked map returns to a layer-start state already seen
        #: (always true from layer 2 on: every layer visits the zones in
        #: the same order), the remaining layers reuse the first plan.
        cache: dict[tuple, tuple[list[ZoneMovePlan], dict[int, Position]]] | None = (
            {} if self.flags.memoize_plans else None
        )
        for _ in range(self.context.parameters.num_layers):
            if cache is not None:
                key = tuple(sorted(parked.items()))
                hit = cache.get(key)
                if hit is not None:
                    self.profiler.hit("zone_plans")
                    plans, parked = hit
                    layers.append(plans)
                    continue
                self.profiler.miss("zone_plans")
                plans, parked = plan_zone_moves(
                    self.coloring,
                    self.geometry,
                    parked,
                    self.hardware.min_trap_spacing_um,
                )
                cache[key] = (plans, parked)
            else:
                plans, parked = plan_zone_moves(
                    self.coloring,
                    self.geometry,
                    parked,
                    self.hardware.min_trap_spacing_um,
                )
            layers.append(plans)
        return layers

    def _setup_device(
        self, layers_plans: list[list[ZoneMovePlan]]
    ) -> tuple[FPQAInstruction, ...]:
        positions: list[Position] = []

        def add_trap(position: Position) -> None:
            key = _position_key(position)
            if key not in self.trap_index:
                self.trap_index[key] = len(positions)
                positions.append(position)

        for var in range(self.num_qubits):
            add_trap(self.geometry.home_position(var, self.num_qubits))
        for placement in self.coloring.placements:
            color, slot = placement.color, placement.slot
            if placement.arity == 3:
                add_trap(self.geometry.target_position(color, slot))
            if placement.arity in (2, 3):
                stage = self.geometry.stage_positions(color, slot)
                add_trap(stage[0])
                add_trap(stage[1])

        num_columns = 1
        for plans in layers_plans:
            for plan in plans:
                for wave in plan.waves:
                    num_columns = max(num_columns, len(wave))
        for color in range(self.coloring.num_colors):
            group = self.coloring.group_placements(color)
            three = sum(1 for p in group if p.arity == 3)
            two = sum(1 for p in group if p.arity == 2)
            num_columns = max(num_columns, 2 * three, 2 * two)

        max_x = max(p[0] for p in positions)
        min_y = min(p[1] for p in positions)
        park_x0 = max_x + 2.0 * self.hardware.safe_spacing_um
        spacing = 2.0 * self.hardware.min_trap_spacing_um
        self.park_xs = [park_x0 + i * spacing for i in range(num_columns)]
        row_y = min_y - 2.0 * self.hardware.safe_spacing_um

        setup: list[FPQAInstruction] = [
            SlmInit(tuple(positions)),
            AodInit(tuple(self.park_xs), (row_y,)),
        ]
        for var in range(self.num_qubits):
            home = self.geometry.home_position(var, self.num_qubits)
            setup.append(BindAtom(qubit=var, slm_index=self.trap_index[_position_key(home)]))
        for instruction in setup:
            self.device.apply(instruction)
        return tuple(setup)

    # ------------------------------------------------------------------
    # Waves
    # ------------------------------------------------------------------
    def _run_wave(self, wave: ShuttleWave) -> None:
        self._align_columns([source[0] for source in wave.sources])
        by_source_y: dict[float, list[int]] = {}
        for index, source in enumerate(wave.sources):
            by_source_y.setdefault(source[1], []).append(index)
        for y in sorted(by_source_y):
            self._row_to(y)
            for index in by_source_y[y]:
                self._transfer(wave.sources[index], index)
        moves = []
        for index, (source, dest) in enumerate(zip(wave.sources, wave.destinations)):
            delta = dest[0] - source[0]
            if abs(delta) > 1e-9:
                moves.append(ShuttleMove("column", index, delta, loaded=True))
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))
        by_dest_y: dict[float, list[int]] = {}
        for index, dest in enumerate(wave.destinations):
            by_dest_y.setdefault(dest[1], []).append(index)
        for y in sorted(by_dest_y):
            self._row_to(y)
            for index in by_dest_y[y]:
                self._transfer(wave.destinations[index], index)

    # ------------------------------------------------------------------
    # Zone execution
    # ------------------------------------------------------------------
    def _clause_matrices(
        self, mode: str, placement: ClausePlacement, gamma: float
    ) -> dict[str, np.ndarray | None]:
        """Per-clause Raman matrix set, cached by (signs, weight*gamma)."""
        if not self.flags.memoize_matrices:
            return _UNCACHED_MATRIX_BUILDERS[mode](placement, gamma)
        before = gate_compression.clause_matrix_misses
        matrices = cached_clause_matrices(
            mode, placement.signs, gamma * placement.weight
        )
        if gate_compression.clause_matrix_misses > before:
            self.profiler.miss("clause_matrices")
        else:
            self.profiler.hit("clause_matrices")
        return matrices

    def _execute_zone(self, color: int, gamma: float) -> None:
        group = self.coloring.group_placements(color)
        three = [p for p in group if p.arity == 3]
        two = [p for p in group if p.arity == 2]
        one = [p for p in group if p.arity == 1]
        for placement in one:
            self._emit_raman_local(
                placement.qubits[0], unit_raman_matrix(placement, gamma)
            )
        if three:
            self._pickup_controls(color, three)
            if self.schedule.use_compression:
                self._zone_compressed(color, three, gamma)
            else:
                self._zone_ladder(color, three, gamma)
            self._drop_controls(color, three)
        if two:
            self._zone_pairs(color, two, gamma)

    def _control_stage_sites(
        self, color: int, placements: list[ClausePlacement]
    ) -> list[tuple[int, Position]]:
        """(atom, stage trap) for every control, sorted by x."""
        sites: list[tuple[int, Position]] = []
        for placement in placements:
            stage = self.geometry.stage_positions(color, placement.slot)
            sites.append((placement.controls[0], stage[0]))
            sites.append((placement.controls[1], stage[1]))
        sites.sort(key=lambda item: item[1][0])
        return sites

    def _pickup_controls(self, color: int, placements: list[ClausePlacement]) -> None:
        sites = self._control_stage_sites(color, placements)
        self._align_columns([pos[0] for _, pos in sites])
        self._row_to(self.geometry.stage_row_y(color))
        for column, (atom, pos) in enumerate(sites):
            self.column_of[atom] = column
            self._transfer(pos, column)

    def _drop_controls(self, color: int, placements: list[ClausePlacement]) -> None:
        self._set_stance(color, placements, "stage")
        for placement in placements:
            stage = self.geometry.stage_positions(color, placement.slot)
            for atom, pos in zip(placement.controls, stage):
                self._transfer(pos, self.column_of.pop(atom))

    def _stance_positions(
        self, color: int, placement: ClausePlacement, stance: str
    ) -> tuple[Position, Position]:
        if stance == "stage":
            return self.geometry.stage_positions(color, placement.slot)
        if stance == "tri":
            return self.geometry.control_positions(color, placement.slot)
        if stance == "pair":
            return self.geometry.pair_positions(color, placement.slot)
        if stance == "bt":
            return self.geometry.bt_positions(color, placement.slot)
        if stance == "at":
            return self.geometry.at_positions(color, placement.slot)
        raise CompilationError(f"unknown stance {stance!r}")

    def _set_stance(
        self, color: int, placements: list[ClausePlacement], stance: str
    ) -> None:
        moves = []
        row_y: float | None = None
        for placement in placements:
            targets = self._stance_positions(color, placement, stance)
            for atom, (x, y) in zip(placement.controls, targets):
                row_y = y
                column = self.column_of[atom]
                delta = x - self.device.aod_col_x[column]
                if abs(delta) > 1e-9:
                    moves.append(ShuttleMove("column", column, delta, loaded=True))
        if row_y is not None:
            delta = row_y - self.device.aod_row_y[0]
            if abs(delta) > 1e-9:
                moves.append(ShuttleMove("row", 0, delta, loaded=True))
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))

    # --- compressed mode ------------------------------------------------
    def _zone_compressed(
        self, color: int, placements: list[ClausePlacement], gamma: float
    ) -> None:
        matrices = {
            p.clause_index: self._clause_matrices("compressed", p, gamma)
            for p in placements
        }
        triangles = {frozenset(p.qubits) for p in placements}
        pairs = {frozenset(p.controls) for p in placements}
        self._set_stance(color, placements, "tri")
        for p in placements:
            m = matrices[p.clause_index]
            if m["ctrl_pre_a"] is not None:
                self._emit_raman_local(p.controls[0], m["ctrl_pre_a"])
            if m["ctrl_pre_b"] is not None:
                self._emit_raman_local(p.controls[1], m["ctrl_pre_b"])
            self._emit_raman_local(p.target, m["target_pre"])
        self._emit_rydberg(triangles)
        for p in placements:
            self._emit_raman_local(p.target, matrices[p.clause_index]["target_mid"])
        self._emit_rydberg(triangles)
        for p in placements:
            m = matrices[p.clause_index]
            self._emit_raman_local(p.target, m["target_post"])
            self._emit_raman_local(p.controls[0], m["ctrl_post_a"])
            self._emit_raman_local(p.controls[1], m["ctrl_post_b"])
        self._set_stance(color, placements, "pair")
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_pre"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_mid"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_post"])

    # --- ladder (uncompressed) mode --------------------------------------
    def _zone_ladder(
        self, color: int, placements: list[ClausePlacement], gamma: float
    ) -> None:
        matrices = {
            p.clause_index: self._clause_matrices("ladder", p, gamma)
            for p in placements
        }
        pairs = {frozenset(p.controls) for p in placements}
        bt_pairs = {frozenset((p.qubits[1], p.qubits[2])) for p in placements}
        at_pairs = {frozenset((p.qubits[0], p.qubits[2])) for p in placements}

        def ladder(
            stance_pairs: set[frozenset[int]],
            role: int,
            pre: str,
            mid: str,
            post: str,
        ) -> None:
            for p in placements:
                self._emit_raman_local(p.qubits[role], matrices[p.clause_index][pre])
            self._emit_rydberg(stance_pairs)
            for p in placements:
                self._emit_raman_local(p.qubits[role], matrices[p.clause_index][mid])
            self._emit_rydberg(stance_pairs)
            for p in placements:
                self._emit_raman_local(p.qubits[role], matrices[p.clause_index][post])

        self._set_stance(color, placements, "pair")
        # quad(a, b)
        ladder(pairs, 1, "pair_b_pre", "pair_b_mid", "pair_b_post")
        # cubic opening CX(a, b)
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        # cubic inner CX(b, t) RZ CX(b, t)
        self._set_stance(color, placements, "bt")
        ladder(bt_pairs, 2, "cubic_t_pre", "cubic_t_mid", "cubic_t_post")
        # cubic closing CX(a, b)
        self._set_stance(color, placements, "pair")
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        # quad(b, t) and quad(a, t) on the hover stances
        self._set_stance(color, placements, "bt")
        ladder(bt_pairs, 2, "bt_t_pre", "bt_t_mid", "bt_t_post")
        self._set_stance(color, placements, "at")
        ladder(at_pairs, 2, "at_t_pre", "at_t_mid", "at_t_post")
        # linear terms
        for p in placements:
            m = matrices[p.clause_index]
            self._emit_raman_local(p.qubits[0], m["lin_a"])
            self._emit_raman_local(p.qubits[1], m["lin_b"])
            self._emit_raman_local(p.qubits[2], m["lin_t"])

    # --- 2-literal clauses ------------------------------------------------
    def _zone_pairs(
        self, color: int, placements: list[ClausePlacement], gamma: float
    ) -> None:
        sites = self._control_stage_sites(color, placements)
        self._align_columns([pos[0] for _, pos in sites])
        self._row_to(self.geometry.stage_row_y(color))
        for column, (atom, pos) in enumerate(sites):
            self.column_of[atom] = column
            self._transfer(pos, column)
        self._set_stance(color, placements, "pair")
        matrices = {
            p.clause_index: self._clause_matrices("pair", p, gamma)
            for p in placements
        }
        pairs = {frozenset(p.controls) for p in placements}
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_pre"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_mid"])
        self._emit_rydberg(pairs)
        for p in placements:
            m = matrices[p.clause_index]
            self._emit_raman_local(p.controls[1], m["b_post"])
            self._emit_raman_local(p.controls[0], m["a_post"])
        self._drop_controls(color, placements)


class FPQACompiler:
    """The FPQA pipeline: MAX-3SAT formula -> validated wQasm program.

    This is the implementation behind the ``"fpqa"`` target; prefer
    ``repro.compile(formula, target="fpqa")`` in user code.
    """

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        geometry: ZoneGeometry | None = None,
        coloring_algorithm: str = "dsatur",
        compression: bool | None = None,
        optimize: bool | OptimizationFlags = True,
    ):
        self.hardware = hardware or FPQAHardwareParams()
        self._auto_geometry = geometry is None
        self.geometry = geometry or zone_layout(self.hardware)
        self.coloring_algorithm = coloring_algorithm
        self.compression = compression
        #: Hot-path optimization switchboard; ``False`` replicates the
        #: unoptimized legacy pipeline (see repro.perf.OptimizationFlags).
        self.flags = OptimizationFlags.coerce(optimize)

    def compile(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        measure: bool = True,
    ) -> WeaverCompilationResult:
        """Compile ``formula`` to an FPQA program (the paper's FPQA path)."""
        start = time.perf_counter()
        parameters = parameters or QaoaParameters()
        context = CompilationContext(
            formula=formula,
            parameters=parameters,
            hardware=self.hardware,
            geometry=self.geometry,
            auto_geometry=self._auto_geometry,
            compression_override=self.compression,
        )
        manager = PassManager(
            [
                ClauseColoringPass(self.coloring_algorithm),
                ZoneLayoutPass(),
                ColorShuttlingPass(),
                GateCompressionPass(),
            ]
        )
        manager.run(context)
        coloring: ColoringResult = context.require("coloring")
        schedule: FragmentSchedule = context.require("fragments")
        profiler = context.profiler
        generator = _CodeGenerator(context, coloring, schedule, flags=self.flags)
        codegen_start = time.perf_counter()
        program = generator.generate(measure=measure)
        profiler.add_pass("codegen", time.perf_counter() - codegen_start)
        native_start = time.perf_counter()
        native = qaoa_circuit(formula, parameters, measure=False)
        profiler.add_pass("reference-circuit", time.perf_counter() - native_start)
        profiler.set_cache(
            "rydberg_clusters",
            hits=generator.device.cluster_cache_hits,
            misses=generator.device.cluster_resolutions,
        )
        elapsed = time.perf_counter() - start
        context.stats.setdefault("total", {})["seconds"] = elapsed
        profile = profiler.profile(total_seconds=elapsed)
        return WeaverCompilationResult(
            program=program,
            context=context,
            native_circuit=native,
            compile_seconds=elapsed,
            profile=profile,
        )


class WeaverFPQACompiler(FPQACompiler):
    """Deprecated alias of :class:`FPQACompiler`.

    Kept so pre-registry code keeps working; new code should go through
    ``repro.compile(formula, target="fpqa")`` or
    ``repro.get_target("fpqa")``.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "WeaverFPQACompiler is deprecated; use "
            "repro.compile(formula, target='fpqa') or repro.targets.FPQATarget",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def compile_formula(
    formula: CnfFormula,
    parameters: QaoaParameters | None = None,
    hardware: FPQAHardwareParams | None = None,
    compression: bool | None = None,
    measure: bool = True,
) -> WeaverCompilationResult:
    """Deprecated wrapper kept for the pre-registry API.

    Equivalent to ``repro.compile(formula, target="fpqa")`` except for the
    richer legacy result type; new code should use the unified entrypoint.
    """
    warnings.warn(
        "compile_formula is deprecated; use repro.compile(formula, target='fpqa')",
        DeprecationWarning,
        stacklevel=2,
    )
    compiler = FPQACompiler(hardware=hardware, compression=compression)
    return compiler.compile(formula, parameters, measure=measure)
