"""The Weaver FPQA compiler: pass pipeline plus code generation.

Given a MAX-3SAT formula and QAOA parameters, this module runs the three
wOptimizer passes (clause coloring, color shuttling, gate compression) and
then *executes* the resulting plan against the :class:`FPQADevice` state
machine while recording every instruction, so the emitted
:class:`WQasmProgram` is physically validated by construction: every
transfer distance, AOD ordering constraint, and Rydberg cluster shape was
checked as the program was generated.  Each Rydberg pulse is additionally
cross-checked against the cluster set the plan intended — a compiler
self-check that the wChecker later repeats independently.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..circuits import Instruction, QuantumCircuit
from ..circuits.euler import raman_angles_for
from ..circuits.gates import gate_matrix, make_gate, u3_from_matrix
from ..exceptions import CompilationError
from ..fpqa.device import FPQADevice
from ..fpqa.geometry import ZoneGeometry, zone_layout
from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)
from ..qaoa.builder import QaoaParameters, qaoa_circuit
from ..sat.cnf import CnfFormula
from ..wqasm.program import AnnotatedOperation, WQasmProgram
from .base import CompilationContext, PassManager
from .clause_coloring import ClauseColoringPass, ClausePlacement, ColoringResult
from .color_shuttling import (
    ColorShuttlingPass,
    ShuttleWave,
    ZoneMovePlan,
    plan_zone_moves,
)
from .gate_compression import (
    FragmentSchedule,
    GateCompressionPass,
    compressed_raman_matrices,
    ladder_raman_matrices,
    pair_raman_matrices,
    unit_raman_matrix,
)

Position = tuple[float, float]

_H = gate_matrix("h")


class ZoneLayoutPass:
    """Size the zone grid from the coloring (between coloring and shuttling).

    Packs zones into a near-square grid so shuttle travel distances stay
    short, with the diagonal shear of Figure 5 between grid rows.  Skipped
    when the caller supplied explicit geometry.
    """

    name = "zone-layout"

    def run(self, context: CompilationContext) -> None:
        coloring: ColoringResult = context.require("coloring")
        if not context.auto_geometry:
            return
        zones_per_row = max(1, math.isqrt(max(coloring.num_colors, 1)))
        slots_per_zone = max(
            (len(group) for group in coloring.groups), default=1
        )
        context.geometry = zone_layout(
            context.hardware,
            zones_per_row=zones_per_row,
            slots_per_zone=max(slots_per_zone, 1),
        )
        context.stats.setdefault(self.name, {}).update(
            {"zones_per_row": zones_per_row, "slots_per_zone": slots_per_zone}
        )


@dataclass
class WeaverCompilationResult:
    """Everything the evaluation harness needs from one compilation."""

    program: WQasmProgram
    context: CompilationContext
    native_circuit: QuantumCircuit
    compile_seconds: float

    @property
    def stats(self) -> dict:
        return self.context.stats


def _position_key(position: Position) -> tuple[float, float]:
    return (round(position[0], 6), round(position[1], 6))


class _CodeGenerator:
    """Drives the FPQA device and records the wQasm program."""

    def __init__(
        self,
        context: CompilationContext,
        coloring: ColoringResult,
        schedule: FragmentSchedule,
    ):
        self.context = context
        self.coloring = coloring
        self.schedule = schedule
        self.geometry = context.geometry
        self.hardware = context.hardware
        self.formula = context.formula
        self.num_qubits = context.formula.num_vars
        self.device = FPQADevice(context.hardware)
        self.operations: list[AnnotatedOperation] = []
        self.pending: list[FPQAInstruction] = []
        self.trap_index: dict[tuple[float, float], int] = {}
        self.column_of: dict[int, int] = {}
        self.park_xs: list[float] = []

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------
    def _emit_move(self, instruction: FPQAInstruction) -> None:
        self.device.apply(instruction)
        self.pending.append(instruction)

    def _finish_op(
        self, pulse: FPQAInstruction, gates: tuple[Instruction, ...]
    ) -> None:
        instructions = tuple(self.pending) + (pulse,)
        self.pending.clear()
        self.operations.append(AnnotatedOperation(instructions, gates))

    def _flush_pending(self) -> None:
        if self.pending:
            self.operations.append(AnnotatedOperation(tuple(self.pending), ()))
            self.pending.clear()

    def _emit_raman_local(self, qubit: int, matrix: np.ndarray) -> None:
        x, y, z = raman_angles_for(matrix)
        instruction = RamanLocal(qubit, x, y, z)
        self.device.apply(instruction)
        gate = u3_from_matrix(matrix)
        self._finish_op(instruction, (Instruction(gate, (qubit,)),))

    def _emit_raman_global(self, matrix: np.ndarray) -> None:
        x, y, z = raman_angles_for(matrix)
        instruction = RamanGlobal(x, y, z)
        self.device.apply(instruction)
        gate = u3_from_matrix(matrix)
        gates = tuple(
            Instruction(gate, (qubit,)) for qubit in range(self.num_qubits)
        )
        self._finish_op(instruction, gates)

    def _emit_rydberg(self, expected: set[frozenset[int]]) -> None:
        instruction = RydbergPulse()
        clusters = self.device.apply(instruction)
        got = {frozenset(cluster.qubits) for cluster in clusters}
        if got != expected:
            raise CompilationError(
                f"Rydberg pulse produced clusters {sorted(map(sorted, got))}, "
                f"plan intended {sorted(map(sorted, expected))}"
            )
        gates = []
        for cluster in clusters:
            name = "cz" if cluster.size == 2 else ("ccz" if cluster.size == 3 else "mcz")
            gates.append(
                Instruction(
                    make_gate(name, num_qubits=cluster.size), tuple(sorted(cluster.qubits))
                )
            )
        self._finish_op(instruction, tuple(gates))

    # ------------------------------------------------------------------
    # Movement primitives
    # ------------------------------------------------------------------
    def _column_loaded(self, index: int) -> bool:
        return any(col == index for col, _ in self.device.aod_atoms)

    def _row_loaded(self) -> bool:
        return bool(self.device.aod_atoms)

    def _park_columns(self) -> None:
        moves = []
        for index, park_x in enumerate(self.park_xs):
            delta = park_x - self.device.aod_col_x[index]
            if abs(delta) > 1e-9:
                moves.append(
                    ShuttleMove("column", index, delta, loaded=self._column_loaded(index))
                )
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))

    def _align_columns(self, xs: list[float]) -> None:
        """Send columns ``0..len(xs)-1`` to ``xs`` (must be sorted)."""
        self._park_columns()
        moves = []
        for index, x in enumerate(xs):
            delta = x - self.device.aod_col_x[index]
            if abs(delta) > 1e-9:
                moves.append(
                    ShuttleMove("column", index, delta, loaded=self._column_loaded(index))
                )
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))

    def _row_to(self, y: float) -> None:
        delta = y - self.device.aod_row_y[0]
        if abs(delta) > 1e-9:
            self._emit_move(
                Shuttle(ShuttleMove("row", 0, delta, loaded=self._row_loaded()))
            )

    def _transfer(self, trap_position: Position, column: int) -> None:
        key = _position_key(trap_position)
        if key not in self.trap_index:
            raise CompilationError(f"no SLM trap at {trap_position}")
        self._emit_move(Transfer(self.trap_index[key], column, 0))

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def generate(self, measure: bool) -> WQasmProgram:
        placements = self.coloring.placements
        layers_plans = self._plan_layers()
        setup = self._setup_device(layers_plans)
        # QAOA initialization: Hadamard on every qubit via one global pulse.
        self._emit_raman_global(_H)
        for layer, (gamma, beta) in enumerate(
            zip(self.context.parameters.gammas, self.context.parameters.betas)
        ):
            plans = layers_plans[layer]
            for color in range(self.coloring.num_colors):
                for wave in plans[color].waves:
                    self._run_wave(wave)
                self._execute_zone(color, gamma)
            # Mixer: RX(2*beta) on every qubit via one global pulse.
            self._emit_raman_global(gate_matrix("rx", (2.0 * beta,)))
        self._flush_pending()
        program = WQasmProgram(
            num_qubits=self.num_qubits,
            setup=setup,
            operations=self.operations,
            measured=measure,
            name=f"weaver-{self.formula.name}",
        )
        return program

    def _plan_layers(self) -> list[list[ZoneMovePlan]]:
        parked = {
            var: self.geometry.home_position(var, self.num_qubits)
            for var in range(self.num_qubits)
        }
        layers = []
        for _ in range(self.context.parameters.num_layers):
            plans, parked = plan_zone_moves(
                self.coloring,
                self.geometry,
                parked,
                self.hardware.min_trap_spacing_um,
            )
            layers.append(plans)
        return layers

    def _setup_device(
        self, layers_plans: list[list[ZoneMovePlan]]
    ) -> tuple[FPQAInstruction, ...]:
        positions: list[Position] = []

        def add_trap(position: Position) -> None:
            key = _position_key(position)
            if key not in self.trap_index:
                self.trap_index[key] = len(positions)
                positions.append(position)

        for var in range(self.num_qubits):
            add_trap(self.geometry.home_position(var, self.num_qubits))
        for placement in self.coloring.placements:
            color, slot = placement.color, placement.slot
            if placement.arity == 3:
                add_trap(self.geometry.target_position(color, slot))
            if placement.arity in (2, 3):
                stage = self.geometry.stage_positions(color, slot)
                add_trap(stage[0])
                add_trap(stage[1])

        num_columns = 1
        for plans in layers_plans:
            for plan in plans:
                for wave in plan.waves:
                    num_columns = max(num_columns, len(wave))
        for color in range(self.coloring.num_colors):
            group = self.coloring.group_placements(color)
            three = sum(1 for p in group if p.arity == 3)
            two = sum(1 for p in group if p.arity == 2)
            num_columns = max(num_columns, 2 * three, 2 * two)

        max_x = max(p[0] for p in positions)
        min_y = min(p[1] for p in positions)
        park_x0 = max_x + 2.0 * self.hardware.safe_spacing_um
        spacing = 2.0 * self.hardware.min_trap_spacing_um
        self.park_xs = [park_x0 + i * spacing for i in range(num_columns)]
        row_y = min_y - 2.0 * self.hardware.safe_spacing_um

        setup: list[FPQAInstruction] = [
            SlmInit(tuple(positions)),
            AodInit(tuple(self.park_xs), (row_y,)),
        ]
        for var in range(self.num_qubits):
            home = self.geometry.home_position(var, self.num_qubits)
            setup.append(BindAtom(qubit=var, slm_index=self.trap_index[_position_key(home)]))
        for instruction in setup:
            self.device.apply(instruction)
        return tuple(setup)

    # ------------------------------------------------------------------
    # Waves
    # ------------------------------------------------------------------
    def _run_wave(self, wave: ShuttleWave) -> None:
        self._align_columns([source[0] for source in wave.sources])
        by_source_y: dict[float, list[int]] = {}
        for index, source in enumerate(wave.sources):
            by_source_y.setdefault(source[1], []).append(index)
        for y in sorted(by_source_y):
            self._row_to(y)
            for index in by_source_y[y]:
                self._transfer(wave.sources[index], index)
        moves = []
        for index, (source, dest) in enumerate(zip(wave.sources, wave.destinations)):
            delta = dest[0] - source[0]
            if abs(delta) > 1e-9:
                moves.append(ShuttleMove("column", index, delta, loaded=True))
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))
        by_dest_y: dict[float, list[int]] = {}
        for index, dest in enumerate(wave.destinations):
            by_dest_y.setdefault(dest[1], []).append(index)
        for y in sorted(by_dest_y):
            self._row_to(y)
            for index in by_dest_y[y]:
                self._transfer(wave.destinations[index], index)

    # ------------------------------------------------------------------
    # Zone execution
    # ------------------------------------------------------------------
    def _execute_zone(self, color: int, gamma: float) -> None:
        group = self.coloring.group_placements(color)
        three = [p for p in group if p.arity == 3]
        two = [p for p in group if p.arity == 2]
        one = [p for p in group if p.arity == 1]
        for placement in one:
            self._emit_raman_local(
                placement.qubits[0], unit_raman_matrix(placement, gamma)
            )
        if three:
            self._pickup_controls(color, three)
            if self.schedule.use_compression:
                self._zone_compressed(color, three, gamma)
            else:
                self._zone_ladder(color, three, gamma)
            self._drop_controls(color, three)
        if two:
            self._zone_pairs(color, two, gamma)

    def _control_stage_sites(
        self, color: int, placements: list[ClausePlacement]
    ) -> list[tuple[int, Position]]:
        """(atom, stage trap) for every control, sorted by x."""
        sites: list[tuple[int, Position]] = []
        for placement in placements:
            stage = self.geometry.stage_positions(color, placement.slot)
            sites.append((placement.controls[0], stage[0]))
            sites.append((placement.controls[1], stage[1]))
        sites.sort(key=lambda item: item[1][0])
        return sites

    def _pickup_controls(self, color: int, placements: list[ClausePlacement]) -> None:
        sites = self._control_stage_sites(color, placements)
        self._align_columns([pos[0] for _, pos in sites])
        self._row_to(self.geometry.stage_row_y(color))
        for column, (atom, pos) in enumerate(sites):
            self.column_of[atom] = column
            self._transfer(pos, column)

    def _drop_controls(self, color: int, placements: list[ClausePlacement]) -> None:
        self._set_stance(color, placements, "stage")
        for placement in placements:
            stage = self.geometry.stage_positions(color, placement.slot)
            for atom, pos in zip(placement.controls, stage):
                self._transfer(pos, self.column_of.pop(atom))

    def _stance_positions(
        self, color: int, placement: ClausePlacement, stance: str
    ) -> tuple[Position, Position]:
        if stance == "stage":
            return self.geometry.stage_positions(color, placement.slot)
        if stance == "tri":
            return self.geometry.control_positions(color, placement.slot)
        if stance == "pair":
            return self.geometry.pair_positions(color, placement.slot)
        if stance == "bt":
            return self.geometry.bt_positions(color, placement.slot)
        if stance == "at":
            return self.geometry.at_positions(color, placement.slot)
        raise CompilationError(f"unknown stance {stance!r}")

    def _set_stance(
        self, color: int, placements: list[ClausePlacement], stance: str
    ) -> None:
        moves = []
        row_y: float | None = None
        for placement in placements:
            targets = self._stance_positions(color, placement, stance)
            for atom, (x, y) in zip(placement.controls, targets):
                row_y = y
                column = self.column_of[atom]
                delta = x - self.device.aod_col_x[column]
                if abs(delta) > 1e-9:
                    moves.append(ShuttleMove("column", column, delta, loaded=True))
        if row_y is not None:
            delta = row_y - self.device.aod_row_y[0]
            if abs(delta) > 1e-9:
                moves.append(ShuttleMove("row", 0, delta, loaded=True))
        if moves:
            self._emit_move(ParallelShuttle(tuple(moves)))

    # --- compressed mode ------------------------------------------------
    def _zone_compressed(
        self, color: int, placements: list[ClausePlacement], gamma: float
    ) -> None:
        matrices = {
            p.clause_index: compressed_raman_matrices(p, gamma) for p in placements
        }
        triangles = {frozenset(p.qubits) for p in placements}
        pairs = {frozenset(p.controls) for p in placements}
        self._set_stance(color, placements, "tri")
        for p in placements:
            m = matrices[p.clause_index]
            if m["ctrl_pre_a"] is not None:
                self._emit_raman_local(p.controls[0], m["ctrl_pre_a"])
            if m["ctrl_pre_b"] is not None:
                self._emit_raman_local(p.controls[1], m["ctrl_pre_b"])
            self._emit_raman_local(p.target, m["target_pre"])
        self._emit_rydberg(triangles)
        for p in placements:
            self._emit_raman_local(p.target, matrices[p.clause_index]["target_mid"])
        self._emit_rydberg(triangles)
        for p in placements:
            m = matrices[p.clause_index]
            self._emit_raman_local(p.target, m["target_post"])
            self._emit_raman_local(p.controls[0], m["ctrl_post_a"])
            self._emit_raman_local(p.controls[1], m["ctrl_post_b"])
        self._set_stance(color, placements, "pair")
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_pre"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_mid"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_post"])

    # --- ladder (uncompressed) mode --------------------------------------
    def _zone_ladder(
        self, color: int, placements: list[ClausePlacement], gamma: float
    ) -> None:
        matrices = {
            p.clause_index: ladder_raman_matrices(p, gamma) for p in placements
        }
        pairs = {frozenset(p.controls) for p in placements}
        bt_pairs = {frozenset((p.qubits[1], p.qubits[2])) for p in placements}
        at_pairs = {frozenset((p.qubits[0], p.qubits[2])) for p in placements}

        def ladder(
            stance_pairs: set[frozenset[int]],
            role: int,
            pre: str,
            mid: str,
            post: str,
        ) -> None:
            for p in placements:
                self._emit_raman_local(p.qubits[role], matrices[p.clause_index][pre])
            self._emit_rydberg(stance_pairs)
            for p in placements:
                self._emit_raman_local(p.qubits[role], matrices[p.clause_index][mid])
            self._emit_rydberg(stance_pairs)
            for p in placements:
                self._emit_raman_local(p.qubits[role], matrices[p.clause_index][post])

        self._set_stance(color, placements, "pair")
        # quad(a, b)
        ladder(pairs, 1, "pair_b_pre", "pair_b_mid", "pair_b_post")
        # cubic opening CX(a, b)
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        # cubic inner CX(b, t) RZ CX(b, t)
        self._set_stance(color, placements, "bt")
        ladder(bt_pairs, 2, "cubic_t_pre", "cubic_t_mid", "cubic_t_post")
        # cubic closing CX(a, b)
        self._set_stance(color, placements, "pair")
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.qubits[1], matrices[p.clause_index]["cubic_b_side"])
        # quad(b, t) and quad(a, t) on the hover stances
        self._set_stance(color, placements, "bt")
        ladder(bt_pairs, 2, "bt_t_pre", "bt_t_mid", "bt_t_post")
        self._set_stance(color, placements, "at")
        ladder(at_pairs, 2, "at_t_pre", "at_t_mid", "at_t_post")
        # linear terms
        for p in placements:
            m = matrices[p.clause_index]
            self._emit_raman_local(p.qubits[0], m["lin_a"])
            self._emit_raman_local(p.qubits[1], m["lin_b"])
            self._emit_raman_local(p.qubits[2], m["lin_t"])

    # --- 2-literal clauses ------------------------------------------------
    def _zone_pairs(
        self, color: int, placements: list[ClausePlacement], gamma: float
    ) -> None:
        sites = self._control_stage_sites(color, placements)
        self._align_columns([pos[0] for _, pos in sites])
        self._row_to(self.geometry.stage_row_y(color))
        for column, (atom, pos) in enumerate(sites):
            self.column_of[atom] = column
            self._transfer(pos, column)
        self._set_stance(color, placements, "pair")
        matrices = {
            p.clause_index: pair_raman_matrices(p, gamma) for p in placements
        }
        pairs = {frozenset(p.controls) for p in placements}
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_pre"])
        self._emit_rydberg(pairs)
        for p in placements:
            self._emit_raman_local(p.controls[1], matrices[p.clause_index]["b_mid"])
        self._emit_rydberg(pairs)
        for p in placements:
            m = matrices[p.clause_index]
            self._emit_raman_local(p.controls[1], m["b_post"])
            self._emit_raman_local(p.controls[0], m["a_post"])
        self._drop_controls(color, placements)


class FPQACompiler:
    """The FPQA pipeline: MAX-3SAT formula -> validated wQasm program.

    This is the implementation behind the ``"fpqa"`` target; prefer
    ``repro.compile(formula, target="fpqa")`` in user code.
    """

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        geometry: ZoneGeometry | None = None,
        coloring_algorithm: str = "dsatur",
        compression: bool | None = None,
    ):
        self.hardware = hardware or FPQAHardwareParams()
        self._auto_geometry = geometry is None
        self.geometry = geometry or zone_layout(self.hardware)
        self.coloring_algorithm = coloring_algorithm
        self.compression = compression

    def compile(
        self,
        formula: CnfFormula,
        parameters: QaoaParameters | None = None,
        measure: bool = True,
    ) -> WeaverCompilationResult:
        """Compile ``formula`` to an FPQA program (the paper's FPQA path)."""
        start = time.perf_counter()
        parameters = parameters or QaoaParameters()
        context = CompilationContext(
            formula=formula,
            parameters=parameters,
            hardware=self.hardware,
            geometry=self.geometry,
            auto_geometry=self._auto_geometry,
            compression_override=self.compression,
        )
        manager = PassManager(
            [
                ClauseColoringPass(self.coloring_algorithm),
                ZoneLayoutPass(),
                ColorShuttlingPass(),
                GateCompressionPass(),
            ]
        )
        manager.run(context)
        coloring: ColoringResult = context.require("coloring")
        schedule: FragmentSchedule = context.require("fragments")
        generator = _CodeGenerator(context, coloring, schedule)
        program = generator.generate(measure=measure)
        native = qaoa_circuit(formula, parameters, measure=False)
        elapsed = time.perf_counter() - start
        context.stats.setdefault("total", {})["seconds"] = elapsed
        return WeaverCompilationResult(
            program=program,
            context=context,
            native_circuit=native,
            compile_seconds=elapsed,
        )


class WeaverFPQACompiler(FPQACompiler):
    """Deprecated alias of :class:`FPQACompiler`.

    Kept so pre-registry code keeps working; new code should go through
    ``repro.compile(formula, target="fpqa")`` or
    ``repro.get_target("fpqa")``.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "WeaverFPQACompiler is deprecated; use "
            "repro.compile(formula, target='fpqa') or repro.targets.FPQATarget",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def compile_formula(
    formula: CnfFormula,
    parameters: QaoaParameters | None = None,
    hardware: FPQAHardwareParams | None = None,
    compression: bool | None = None,
    measure: bool = True,
) -> WeaverCompilationResult:
    """Deprecated wrapper kept for the pre-registry API.

    Equivalent to ``repro.compile(formula, target="fpqa")`` except for the
    richer legacy result type; new code should use the unified entrypoint.
    """
    warnings.warn(
        "compile_formula is deprecated; use repro.compile(formula, target='fpqa')",
        DeprecationWarning,
        stacklevel=2,
    )
    compiler = FPQACompiler(hardware=hardware, compression=compression)
    return compiler.compile(formula, parameters, measure=measure)
