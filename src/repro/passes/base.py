"""Pass framework: context object, pass interface, pass manager.

Extensibility is Weaver's first design goal (§3.1 Challenge #1): new
FPQA capabilities should slot in as additional passes.  A pass reads and
writes fields of the shared :class:`CompilationContext` and records
statistics; the :class:`PassManager` runs passes in order and aggregates
timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import CompilationError
from ..fpqa.geometry import ZoneGeometry
from ..fpqa.hardware import FPQAHardwareParams
from ..perf.profile import Profiler
from ..qaoa.builder import QaoaParameters
from ..sat.cnf import CnfFormula


@dataclass
class CompilationContext:
    """Mutable state threaded through the wOptimizer passes."""

    formula: CnfFormula
    parameters: QaoaParameters
    hardware: FPQAHardwareParams
    geometry: ZoneGeometry
    #: Whether a layout pass may replace ``geometry`` with a coloring-aware
    #: grid layout (False when the caller supplied explicit geometry).
    auto_geometry: bool = True
    #: Force compression on/off; ``None`` lets the pass decide from the
    #: hardware fidelities (§5.4).
    compression_override: bool | None = None
    #: Results deposited by passes, keyed by well-known names.
    properties: dict[str, Any] = field(default_factory=dict)
    #: Per-pass statistics (counts, durations) for reporting.
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Per-pass / per-primitive performance instrumentation (always cheap
    #: enough to leave on; surfaced as ``CompilationResult.profile``).
    profiler: Profiler = field(default_factory=Profiler)

    def require(self, key: str) -> Any:
        """Fetch a property a previous pass must have produced."""
        if key not in self.properties:
            raise CompilationError(
                f"pass ordering error: property {key!r} has not been produced"
            )
        return self.properties[key]


class CompilerPass:
    """Base class for wOptimizer passes."""

    #: Human-readable pass name (used in stats and error messages).
    name = "pass"

    def run(self, context: CompilationContext) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a pass pipeline, timing each stage."""

    def __init__(self, passes: list[CompilerPass]):
        if not passes:
            raise CompilationError("pass manager needs at least one pass")
        self.passes = list(passes)

    def run(self, context: CompilationContext) -> CompilationContext:
        for compiler_pass in self.passes:
            start = time.perf_counter()
            compiler_pass.run(context)
            elapsed = time.perf_counter() - start
            context.stats.setdefault(compiler_pass.name, {})["seconds"] = elapsed
            context.profiler.add_pass(compiler_pass.name, elapsed)
        return context
