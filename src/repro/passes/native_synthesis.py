"""Hardware-agnostic native gate synthesis (Figure 3, "Native Gate Synthesis").

Rewrites an arbitrary circuit into the basis ``{U3, CZ}`` shared by the
superconducting and FPQA paths (§7: "setting the appropriate basis gate
set, B = {U3, CZ}").  Multi-qubit gates are expanded through standard
decompositions; consecutive single-qubit gates on the same qubit are fused
into one ``U3``.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits import QuantumCircuit
from ..circuits.gates import u3_from_matrix
from ..exceptions import CompilationError

_NATIVE_BASIS = ("u3", "cz")


def _ccz_with_cz_and_u3(circuit: QuantumCircuit, a: int, b: int, c: int) -> None:
    """Standard 6-CX Toffoli skeleton, rewritten for a CCZ with CZ links.

    ``CCZ = H_c . CCX . H_c`` and each ``CX(x, y) = H_y CZ(x, y) H_y``; the
    Hadamard pairs around the target collapse, yielding six CZ gates plus
    single-qubit rotations.
    """
    t = math.pi / 4.0

    def h(q: int) -> None:
        circuit.u3(math.pi / 2.0, 0.0, math.pi, q)

    def rz(angle: float, q: int) -> None:
        circuit.u3(0.0, 0.0, angle, q)

    def cx(x: int, y: int) -> None:
        h(y)
        circuit.cz(x, y)
        h(y)

    # CCX(a, b, c) with the outer H_c pair removed gives CCZ directly.
    cx(b, c)
    rz(-t, c)
    cx(a, c)
    rz(t, c)
    cx(b, c)
    rz(-t, c)
    cx(a, c)
    rz(t, b)
    rz(t, c)
    cx(a, b)
    rz(t, a)
    rz(-t, b)
    cx(a, b)


def nativize_circuit(circuit: QuantumCircuit, fuse: bool = True) -> QuantumCircuit:
    """Rewrite ``circuit`` into the ``{U3, CZ}`` native basis."""
    native = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, name=f"{circuit.name}-native"
    )
    for inst in circuit.instructions:
        name = inst.name
        if name in ("barrier", "measure", "reset"):
            native.instructions.append(inst)
            continue
        qubits = inst.qubits
        if len(qubits) == 1:
            gate = u3_from_matrix(inst.gate.matrix())
            native.append(gate, qubits)
            continue
        if name == "cz":
            native.cz(*qubits)
            continue
        if name == "cx":
            control, target = qubits
            native.u3(math.pi / 2.0, 0.0, math.pi, target)
            native.cz(control, target)
            native.u3(math.pi / 2.0, 0.0, math.pi, target)
            continue
        if name == "swap":
            a, b = qubits
            for control, target in ((a, b), (b, a), (a, b)):
                native.u3(math.pi / 2.0, 0.0, math.pi, target)
                native.cz(control, target)
                native.u3(math.pi / 2.0, 0.0, math.pi, target)
            continue
        if name == "rzz":
            a, b = qubits
            (theta,) = inst.params
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            native.cz(a, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            native.u3(0.0, 0.0, theta, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            native.cz(a, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            continue
        if name == "cp":
            a, b = qubits
            (lam,) = inst.params
            # CP(lam) = RZ(lam/2)_a RZ(lam/2)_b exp(i lam/4 Z Z) — compile
            # via the ladder with an extra frame of single-qubit phases.
            native.u3(0.0, 0.0, lam / 2.0, a)
            native.u3(0.0, 0.0, lam / 2.0, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            native.cz(a, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            native.u3(0.0, 0.0, -lam / 2.0, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            native.cz(a, b)
            native.u3(math.pi / 2.0, 0.0, math.pi, b)
            continue
        if name == "ccz":
            _ccz_with_cz_and_u3(native, *qubits)
            continue
        if name == "ccx":
            a, b, c = qubits
            native.u3(math.pi / 2.0, 0.0, math.pi, c)
            _ccz_with_cz_and_u3(native, a, b, c)
            native.u3(math.pi / 2.0, 0.0, math.pi, c)
            continue
        raise CompilationError(f"no native synthesis rule for gate {name!r}")
    if fuse:
        native = fuse_single_qubit_runs(native)
    return native


def fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse consecutive single-qubit unitaries on each qubit into one U3.

    Fusions that reduce to the identity are dropped entirely.
    """
    fused = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if np.allclose(matrix * np.exp(-1j * np.angle(matrix[0, 0] or 1.0)), np.eye(2), atol=1e-10):
            return
        fused.append(u3_from_matrix(matrix), (qubit,))

    for inst in circuit.instructions:
        if inst.gate.is_unitary and len(inst.qubits) == 1:
            qubit = inst.qubits[0]
            matrix = inst.gate.matrix()
            pending[qubit] = matrix @ pending.get(qubit, np.eye(2, dtype=complex))
            continue
        for qubit in inst.qubits:
            flush(qubit)
        fused.instructions.append(inst)
    for qubit in list(pending):
        flush(qubit)
    return fused
