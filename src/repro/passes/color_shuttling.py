"""Color shuttling pass (paper §5.3, Algorithm 2).

Between color zones, atoms move from their parked positions to the next
zone's sites.  Movement uses the AOD: a carrier row plus one column per
moving atom.  Because AOD rows/columns may never cross (Table 1), atoms
can only move *in parallel* when their left-to-right order is the same at
the source and the destination; Algorithm 2 therefore partitions the move
set into order-preserving *waves*, greedily extracting, in destination
order, chains of atoms whose source order matches.

Each wave executes as: park the columns, align wave columns over the
sorted source positions, dip the carrier row to each distinct source
height and transfer the atoms in, glide the columns to the destination
positions, then drop targets into slot traps and controls into stage
traps.  The AOD is empty between waves, which keeps every alignment
trivially order-safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import CompilationError
from .base import CompilationContext, CompilerPass
from .clause_coloring import ColoringResult

Position = tuple[float, float]


@dataclass(frozen=True)
class ShuttleWave:
    """One order-preserving parallel move of atoms (Algorithm 2's ``W``)."""

    atoms: tuple[int, ...]
    sources: tuple[Position, ...]
    destinations: tuple[Position, ...]

    def __post_init__(self) -> None:
        xs_src = [p[0] for p in self.sources]
        xs_dst = [p[0] for p in self.destinations]
        if sorted(xs_src) != xs_src or any(
            b <= a for a, b in zip(xs_src, xs_src[1:])
        ):
            raise CompilationError("wave sources are not strictly x-ordered")
        if any(b <= a for a, b in zip(xs_dst, xs_dst[1:])):
            raise CompilationError("wave destinations are not strictly x-ordered")

    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def max_travel_um(self) -> float:
        return max(
            max(abs(sx - dx), abs(sy - dy))
            for (sx, sy), (dx, dy) in zip(self.sources, self.destinations)
        )


def plan_waves(
    sources: dict[int, Position],
    destinations: dict[int, Position],
    min_gap_um: float = 0.0,
) -> list[ShuttleWave]:
    """Partition a move set into order-preserving waves (Algorithm 2).

    Atoms are visited in destination x-order; each wave greedily absorbs
    every not-yet-scheduled atom whose source x exceeds the previous wave
    member's source x ("order between a_i and a_j is same in S and F").
    ``min_gap_um`` additionally enforces the minimum AOD column spacing
    between wave members at both endpoints, so one column per atom can sit
    over every source and every destination simultaneously.
    """
    if set(sources) != set(destinations):
        raise CompilationError("sources and destinations disagree on the move set")
    pending = sorted(destinations, key=lambda atom: destinations[atom][0])
    dest_xs = [destinations[a][0] for a in pending]
    if len(set(dest_xs)) != len(dest_xs):
        raise CompilationError("two atoms share a destination x coordinate")
    waves: list[ShuttleWave] = []
    while pending:
        wave_atoms: list[int] = []
        last_source_x = float("-inf")
        last_dest_x = float("-inf")
        remaining: list[int] = []
        for atom in pending:
            source_x = sources[atom][0]
            dest_x = destinations[atom][0]
            gap_ok = (
                source_x >= last_source_x + max(min_gap_um, 1e-9)
                and dest_x >= last_dest_x + max(min_gap_um, 1e-9)
            )
            if gap_ok:
                wave_atoms.append(atom)
                last_source_x = source_x
                last_dest_x = dest_x
            else:
                remaining.append(atom)
        if not wave_atoms:
            raise CompilationError(
                "wave planning stalled: atoms closer than the minimum column gap"
            )
        waves.append(
            ShuttleWave(
                atoms=tuple(wave_atoms),
                sources=tuple(sources[a] for a in wave_atoms),
                destinations=tuple(destinations[a] for a in wave_atoms),
            )
        )
        pending = remaining
    return waves


def reorder_groups_for_shuttling(
    coloring: ColoringResult,
    geometry,
    home: dict[int, Position],
) -> None:
    """Fix clause order and atom roles to maximize parallel shuttling.

    §5.3: "the implementation of the shuttling instruction ... is trivial
    if the order of clauses within a color is fixed before compilation
    time."  Two free choices make Algorithm 2's waves wide; both are set
    from where each atom is parked *when its zone begins*:

    * clauses within a color are ordered left-to-right by the mean parked
      x of their atoms, and
    * within each clause the leftmost parked atom becomes control ``a``,
      the middle one the target, and the rightmost control ``b`` — the
      destination x-order of a slot is exactly ``a < t < b``.

    Both choices only permute symmetric roles (the CCZ/CZ fragments are
    re-derived from the reordered signs), so correctness is untouched;
    the wChecker re-verifies the emitted program regardless.  Must run
    exactly once, before any planning, because it rewrites placements.
    """
    from .clause_coloring import ClausePlacement

    parked = dict(home)
    for color, group in enumerate(coloring.groups):
        def mean_x(clause_index: int) -> float:
            placement = coloring.placements[clause_index]
            return sum(parked[q][0] for q in placement.qubits) / len(placement.qubits)

        ordered = sorted(group, key=mean_x)
        coloring.groups[color] = ordered
        for slot, clause_index in enumerate(ordered):
            placement = coloring.placements[clause_index]
            sign_of = dict(zip(placement.qubits, placement.signs))
            by_x = sorted(placement.qubits, key=lambda q: parked[q][0])
            if placement.arity == 3:
                # (a, b, t) with a leftmost, t middle, b rightmost.
                new_qubits = (by_x[0], by_x[2], by_x[1])
            else:
                new_qubits = tuple(by_x)
            coloring.placements[clause_index] = ClausePlacement(
                clause_index=clause_index,
                color=color,
                slot=slot,
                qubits=new_qubits,
                signs=tuple(sign_of[q] for q in new_qubits),
                weight=placement.weight,
            )
        parked.update(zone_destinations(coloring, geometry, color))


def zone_destinations(
    coloring: ColoringResult, geometry, color: int
) -> dict[int, Position]:
    """SLM parking destinations of every atom used by zone ``color``.

    Unit clauses need only a local Raman pulse, which reaches an atom
    anywhere, so their atoms are not moved at all.
    """
    destinations: dict[int, Position] = {}
    for placement in coloring.group_placements(color):
        if placement.arity == 1:
            continue
        stage = geometry.stage_positions(color, placement.slot)
        if placement.arity == 3:
            a, b, t = placement.qubits
            destinations[a] = stage[0]
            destinations[b] = stage[1]
            destinations[t] = geometry.target_position(color, placement.slot)
        else:
            a, b = placement.qubits
            destinations[a] = stage[0]
            destinations[b] = stage[1]
    return destinations


def plan_zone_moves(
    coloring: ColoringResult,
    geometry,
    parked: dict[int, Position],
    min_gap_um: float = 0.0,
) -> tuple[list["ZoneMovePlan"], dict[int, Position]]:
    """Plan the waves for every color starting from ``parked`` positions.

    Returns the per-zone plans and the final parked map (needed to chain
    QAOA layers: layer ``p+1`` starts where layer ``p`` left the atoms).
    """
    parked = dict(parked)
    plans: list[ZoneMovePlan] = []
    for color in range(coloring.num_colors):
        destinations = zone_destinations(coloring, geometry, color)
        moving = {
            atom: pos for atom, pos in destinations.items() if parked[atom] != pos
        }
        waves = plan_waves(
            {atom: parked[atom] for atom in moving}, moving, min_gap_um
        )
        plans.append(ZoneMovePlan(color=color, waves=waves))
        parked.update(destinations)
    return plans, parked


@dataclass
class ZoneMovePlan:
    """All waves required to populate one color zone."""

    color: int
    waves: list[ShuttleWave]

    @property
    def num_moved_atoms(self) -> int:
        return sum(len(w) for w in self.waves)


class ColorShuttlingPass(CompilerPass):
    """Compute the static shuttle plan for every color zone.

    Positions are fully deterministic given the coloring, so the plan is
    computed up front: the pass tracks where each atom is parked after each
    zone and derives the Algorithm-2 waves for the next one.  The code
    generator later replays this plan on the device.
    """

    name = "color-shuttling"

    def run(self, context: CompilationContext) -> None:
        coloring: ColoringResult = context.require("coloring")
        geometry = context.geometry
        num_vars = context.formula.num_vars
        home: dict[int, Position] = {
            var: geometry.home_position(var, num_vars) for var in range(num_vars)
        }
        reorder_groups_for_shuttling(coloring, geometry, home)
        plans, parked = plan_zone_moves(
            coloring, geometry, home, context.hardware.min_trap_spacing_um
        )
        context.properties["shuttle_plan"] = plans
        context.properties["final_parked"] = parked
        context.stats.setdefault(self.name, {}).update(
            {
                "total_waves": sum(len(p.waves) for p in plans),
                "total_moved_atoms": sum(p.num_moved_atoms for p in plans),
                "max_wave": max(
                    (len(w) for p in plans for w in p.waves), default=0
                ),
            }
        )
