"""Tracing-overhead benchmark runner -> ``BENCH_telemetry.json``.

Measures end-to-end ``repro.compile`` wall time on a uf-sized random
3-SAT instance with tracing disabled and enabled, and appends one run
record to the trajectory file.  The committed numbers back the <5%
overhead acceptance bar (also pinned live by
``benchmarks/test_telemetry_overhead.py``).

Usage::

    python -m repro.telemetry.bench
    python -m repro.telemetry.bench --sizes 100 --repeats 5 --label "PR 7"

File format (``schema`` 1): same run-record envelope as
``BENCH_compile.json``, with cells of the form::

    {"num_vars": 100, "seed": 7, "repeats": 3,
     "disabled_seconds": ..., "enabled_seconds": ...,
     "overhead_ratio": ..., "spans": ...}
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from datetime import datetime, timezone

from ..perf.bench import CLAUSE_RATIO, write_bench_file
from .trace import configure

DEFAULT_SIZES = (100,)
DEFAULT_OUTPUT = "BENCH_telemetry.json"


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_overhead_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = 7,
    repeats: int = 3,
    verbose: bool = False,
) -> dict:
    """Measure disabled vs enabled tracing and return one run record."""
    import repro
    from ..sat.generator import random_ksat

    cells = []
    for num_vars in sizes:
        formula = random_ksat(num_vars, round(num_vars * CLAUSE_RATIO), seed=seed)
        repro.compile(formula, target="fpqa")  # warm every cache once
        configure(enabled=False)
        disabled = _best_of(lambda: repro.compile(formula, target="fpqa"), repeats)
        tracer = configure(enabled=True)
        try:
            enabled = _best_of(lambda: repro.compile(formula, target="fpqa"), repeats)
            spans = len(tracer.export())
        finally:
            configure(enabled=False)
        cell = {
            "num_vars": num_vars,
            "num_clauses": formula.num_clauses,
            "seed": seed,
            "repeats": repeats,
            "disabled_seconds": disabled,
            "enabled_seconds": enabled,
            "overhead_ratio": enabled / disabled,
            "spans": spans,
        }
        cells.append(cell)
        if verbose:
            print(
                f"[telemetry-bench] n={num_vars}: off {disabled:.3f}s, "
                f"on {enabled:.3f}s (x{cell['overhead_ratio']:.3f}, "
                f"{spans} spans)",
                file=sys.stderr,
            )
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
        },
        "cells": cells,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.bench", description=__doc__
    )
    parser.add_argument(
        "--sizes", default=",".join(map(str, DEFAULT_SIZES)),
        help="comma-separated variable counts (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default=None, help="tag for this run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    sizes = tuple(int(s) for s in args.sizes.split(",") if s)
    run = run_overhead_bench(sizes=sizes, seed=args.seed, repeats=args.repeats, verbose=True)
    if args.label:
        run["label"] = args.label
    path = write_bench_file(run, args.output)
    print(
        f"[telemetry-bench] wrote {len(run['cells'])} cells to {path}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
