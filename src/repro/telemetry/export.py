"""Exporters: Chrome trace-event JSON, Prometheus text, JSON-lines spans.

``chrome_trace`` produces the Trace Event Format (the ``traceEvents``
array of ``"ph": "X"`` complete events) that Perfetto and
``chrome://tracing`` load directly; every span's ids ride along in the
event ``args`` so :func:`spans_from_chrome_trace` can rebuild the tree
from a saved file.  ``prometheus_text`` renders a
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot in the
text exposition format (cumulative ``_bucket{le=...}`` series, ``_sum``,
``_count``) for scraping.  The JSON-lines sink is the raw form: one
span dict per line, append-friendly.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .metrics import MetricsRegistry, bucket_upper


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(spans: list[dict]) -> dict:
    """Spans -> a Chrome trace-event payload (Perfetto-loadable).

    Timestamps rebase to the earliest span start (microseconds from
    zero), so the monotonic-clock origin never leaks into the file.
    """
    events: list[dict] = []
    starts = [s["start"] for s in spans if s.get("start") is not None]
    base = min(starts) if starts else 0.0
    seen_processes: set[int] = set()
    for span in spans:
        start = span.get("start")
        end = span.get("end")
        if start is None or end is None:
            continue
        pid = int(span.get("pid") or 0)
        if pid not in seen_processes:
            seen_processes.add(pid)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"weaver (pid {pid})"},
                }
            )
        args = dict(span.get("attrs") or {})
        args["trace"] = span.get("trace")
        args["span"] = span.get("span")
        args["parent"] = span.get("parent")
        events.append(
            {
                "ph": "X",
                "name": str(span.get("name")),
                "cat": "weaver",
                "ts": (start - base) * 1e6,
                "dur": max(end - start, 0.0) * 1e6,
                "pid": pid,
                "tid": int(span.get("tid") or 0),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: dict) -> int:
    """Check a Chrome trace payload's schema; returns the complete-event
    count.  Raises ``ValueError`` with a specific complaint otherwise —
    the helper both the test suite and the CI smoke step call.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload needs a 'traceEvents' array")
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"traceEvents[{i}] has no phase ('ph')")
        if ph == "M":
            continue
        if ph != "X":
            raise ValueError(f"traceEvents[{i}] has unexpected phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"traceEvents[{i}] has no name")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"traceEvents[{i}].{field} must be a non-negative number"
                )
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"traceEvents[{i}].{field} must be an integer")
        complete += 1
    if complete == 0:
        raise ValueError("trace has no complete ('X') events")
    return complete


def spans_from_chrome_trace(payload: dict) -> list[dict]:
    """Rebuild span dicts from a saved Chrome trace (for summarizing)."""
    spans: list[dict] = []
    for event in payload.get("traceEvents") or []:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        attrs = {
            k: v for k, v in args.items() if k not in ("trace", "span", "parent")
        }
        start = float(event.get("ts") or 0.0) / 1e6
        spans.append(
            {
                "name": event.get("name"),
                "trace": args.get("trace"),
                "span": args.get("span"),
                "parent": args.get("parent"),
                "start": start,
                "end": start + float(event.get("dur") or 0.0) / 1e6,
                "pid": event.get("pid"),
                "tid": event.get("tid"),
                "attrs": attrs,
            }
        )
    return spans


# ----------------------------------------------------------------------
# JSON-lines span sink
# ----------------------------------------------------------------------
def write_spans_jsonl(spans: list[dict], path: str | Path) -> Path:
    """Append spans to ``path``, one JSON object per line."""
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span, separators=(",", ":")) + "\n")
    return path


def read_spans_jsonl(path: str | Path) -> list[dict]:
    """Load a JSON-lines span file (skipping blank/corrupt lines)."""
    spans: list[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if isinstance(payload, dict):
            spans.append(payload)
    return spans


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, namespace: str) -> str:
    return _NAME_RE.sub("_", f"{namespace}_{name}" if namespace else name)


def _label_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_NAME_RE.sub("_", str(k))}="{v}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def prometheus_text(
    metrics: MetricsRegistry | dict, namespace: str = "weaver"
) -> str:
    """Render a registry (or its ``to_dict`` payload) for a scraper."""
    payload = metrics.to_dict() if isinstance(metrics, MetricsRegistry) else metrics
    lines: list[str] = []
    typed: set[str] = set()
    for row in payload.get("series") or []:
        kind = row.get("kind")
        labels = row.get("labels") or {}
        if kind == "counter":
            name = _metric_name(str(row["name"]), namespace) + "_total"
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_label_text(labels)} {row.get('value', 0)}")
        elif kind == "gauge":
            name = _metric_name(str(row["name"]), namespace)
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_label_text(labels)} {row.get('value', 0)}")
        elif kind == "histogram":
            name = _metric_name(str(row["name"]), namespace)
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} histogram")
            cumulative = int(row.get("zeros") or 0)
            if cumulative:
                lines.append(
                    f"{name}_bucket{_label_text(labels, {'le': '0.0'})} {cumulative}"
                )
            buckets = row.get("buckets") or {}
            for index in sorted(int(i) for i in buckets):
                cumulative += int(buckets[str(index)])
                le = f"{bucket_upper(index):.9g}"
                lines.append(
                    f"{name}_bucket{_label_text(labels, {'le': le})} {cumulative}"
                )
            count = int(row.get("count") or 0)
            lines.append(
                f"{name}_bucket{_label_text(labels, {'le': '+Inf'})} {count}"
            )
            lines.append(f"{name}_sum{_label_text(labels)} {row.get('sum', 0.0)}")
            lines.append(f"{name}_count{_label_text(labels)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")
