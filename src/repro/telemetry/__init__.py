"""End-to-end observability: span tracing, metrics, and exporters.

The telemetry layer underneath :mod:`repro.perf`, the service, and the
simulator.  Three pieces:

* :mod:`~repro.telemetry.trace` — hierarchical spans with a no-op fast
  path, ambient nesting via ``ContextVar``, and cross-process stitching
  (``span`` / ``configure`` / ``current_context`` / ``adopt_context``);
* :mod:`~repro.telemetry.metrics` — counters, gauges, and
  exponential-bucket histograms with p50/p90/p99 estimates
  (:class:`MetricsRegistry`), mergeable across processes;
* :mod:`~repro.telemetry.export` / :mod:`~repro.telemetry.summary` —
  Chrome trace-event JSON (Perfetto), Prometheus text exposition,
  JSON-lines spans, and the terminal tree/table renderings behind
  ``weaver trace`` and ``weaver top``.

Quickstart::

    from repro import telemetry

    tracer = telemetry.configure(enabled=True)
    result = repro.compile(formula, target="fpqa", simulate=True)
    print(telemetry.format_trace_tree(tracer.export()))
    payload = telemetry.chrome_trace(tracer.export())   # open in Perfetto
"""

from .trace import (
    NOOP_SPAN,
    SPAN_SCHEMA_VERSION,
    Span,
    SpanContext,
    Tracer,
    adopt_context,
    configure,
    current_context,
    current_tracer,
    pop_tracer,
    push_tracer,
    span,
    span_context,
    tracing_enabled,
)
from .metrics import (
    BASE,
    METRICS_SCHEMA_VERSION,
    QUANTILES,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
    get_metrics,
    reset_metrics,
)
from .export import (
    chrome_trace,
    prometheus_text,
    read_spans_jsonl,
    spans_from_chrome_trace,
    validate_chrome_trace,
    write_spans_jsonl,
)
from .summary import format_metrics_table, format_trace_tree

__all__ = [
    "BASE",
    "NOOP_SPAN",
    "METRICS_SCHEMA_VERSION",
    "QUANTILES",
    "SPAN_SCHEMA_VERSION",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "adopt_context",
    "bucket_index",
    "bucket_upper",
    "chrome_trace",
    "configure",
    "current_context",
    "current_tracer",
    "format_metrics_table",
    "format_trace_tree",
    "get_metrics",
    "pop_tracer",
    "prometheus_text",
    "push_tracer",
    "read_spans_jsonl",
    "reset_metrics",
    "span",
    "span_context",
    "spans_from_chrome_trace",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_spans_jsonl",
]
