"""Hierarchical span tracing: the causal skeleton of a request.

A *span* is one timed operation — ``compile.fpqa``, ``service.queue.wait``,
``sim.run`` — with monotonic start/end timestamps, attributes, and a
parent link.  Spans belonging to one request share a *trace id*, so a
service job that crosses the socket, the shard queue, and a worker
process still renders as a single tree.

Design constraints, in order:

1. **Cheap when off.**  Tracing is disabled by default; the only cost a
   hot path pays is one ``ContextVar`` read plus a ``None`` check, and
   ``span(...)`` returns a shared no-op object.  The compile pipeline,
   the simulator, and the service are instrumented unconditionally and
   rely on this fast path (pinned by ``benchmarks/test_telemetry_overhead``).
2. **Ambient nesting.**  The current span lives in a ``ContextVar``:
   ``with span("a"): with span("b"): ...`` links ``b`` under ``a`` with
   no plumbing, per-thread and per-asyncio-task.
3. **Cross-process stitching.**  A span's identity serializes to a
   small context dict (:func:`current_context`); a pool worker adopts it
   (:func:`adopt_context`) into a worker-local :class:`Tracer` pushed
   via :func:`push_tracer`, and ships its finished spans back as plain
   dicts for the parent to :meth:`Tracer.ingest`.  Timestamps are
   ``time.monotonic()`` — on Linux the clock is system-wide, so spans
   recorded in different processes still order correctly.

Finished spans are stored as JSON-safe dicts (one representation for
export, ingest, and the wire), bounded by ``max_spans`` so a long-lived
server cannot grow without limit.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from contextvars import ContextVar
from typing import Iterable, Iterator

#: Bump when the exported span-dict layout changes.
SPAN_SCHEMA_VERSION = 1

#: Finished spans kept per tracer; beyond it the newest are dropped
#: (and counted), so tracing a long-running server stays bounded.
DEFAULT_MAX_SPANS = 100_000

#: The ambient (innermost open) span of the current thread/task.  Holds
#: either a live :class:`Span` or a :class:`SpanContext` adopted from
#: another process.
_current_span: ContextVar = ContextVar("repro_current_span", default=None)

#: Per-context tracer override (pool/thread workers push their own
#: tracer here so concurrently-traced work never interleaves), falling
#: back to the process-global tracer set by :func:`configure`.
_tracer_var: ContextVar = ContextVar("repro_tracer", default=None)

_global_tracer: "Tracer | None" = None


def _new_id() -> str:
    return os.urandom(8).hex()


class SpanContext:
    """A span's serializable identity: enough to parent remote children."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed operation; usable as a context manager for ambient
    nesting, or driven explicitly via :meth:`Tracer.start` /
    :meth:`Tracer.finish` (the service's async job spans)."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "end", "attributes", "pid", "tid",
        "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        attributes: dict | None = None,
        start: float | None = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start = time.monotonic() if start is None else start
        self.end: float | None = None
        self.attributes = dict(attributes) if attributes else {}
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._tracer = tracer
        self._token = None

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def finish(self, end: float | None = None) -> None:
        """Close an explicitly-managed span (see :meth:`Tracer.start`)."""
        self._tracer.finish(self, end=end)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attributes,
        }

    # -- context-manager protocol: ambient nesting ---------------------
    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self._tracer.finish(self)


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled.

    Reentrant and stateless, so one singleton serves every call site.
    """

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans (as JSON-safe dicts) for one recording.

    Thread-safe: the compile pipeline runs spans from executor threads
    while the service loop records job spans on the same tracer.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self.max_spans = max_spans
        self.spans: list[dict] = []
        self.dropped = 0
        self._lock = threading.Lock()

    # -- creating spans -------------------------------------------------
    def _resolve_parent(self, parent) -> tuple[str, str | None]:
        """(trace_id, parent_id) from an explicit or ambient parent."""
        if parent is None:
            parent = _current_span.get()
        if parent is None:
            return _new_id(), None
        return parent.trace_id, parent.span_id

    def span(self, name: str, parent=None, **attributes) -> Span:
        """A new span (use ``with``); ``parent`` overrides the ambient one."""
        trace_id, parent_id = self._resolve_parent(parent)
        return Span(self, name, trace_id, parent_id, attributes or None)

    def start(self, name: str, parent=None, attributes: dict | None = None) -> Span:
        """An explicitly-managed span: finish it with :meth:`finish`.

        Never touches the ambient ``ContextVar`` — the right tool for
        async lifecycles (a job span stays open across many event-loop
        turns without leaking into unrelated tasks).
        """
        trace_id, parent_id = self._resolve_parent(parent)
        return Span(self, name, trace_id, parent_id, attributes)

    def record(
        self,
        name: str,
        seconds: float | None = None,
        start: float | None = None,
        end: float | None = None,
        parent=None,
        attributes: dict | None = None,
    ) -> None:
        """Record an already-completed operation as a span.

        Used where the duration is known after the fact: the Profiler's
        pass hook (``seconds`` elapsed, ending now) and the service's
        retroactive queue-wait spans (explicit ``start``/``end`` on the
        same monotonic clock).
        """
        if end is None:
            end = time.monotonic()
        if start is None:
            start = end - (seconds or 0.0)
        span = Span(self, name, "", None, attributes, start=start)
        span.trace_id, span.parent_id = self._resolve_parent(parent)
        span.end = end
        self._store(span.to_dict())

    # -- collecting spans -----------------------------------------------
    def finish(self, span: Span, end: float | None = None) -> None:
        if span.end is None:
            span.end = time.monotonic() if end is None else end
        self._store(span.to_dict())

    def _store(self, payload: dict) -> None:
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(payload)
            else:
                self.dropped += 1

    def ingest(self, spans: Iterable[dict]) -> None:
        """Merge finished spans shipped back from another process."""
        for payload in spans:
            if isinstance(payload, dict):
                self._store(payload)

    def export(self) -> list[dict]:
        """The finished spans so far, oldest first (a copy)."""
        with self._lock:
            return list(self.spans)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped = 0


# ----------------------------------------------------------------------
# Module-level switchboard
# ----------------------------------------------------------------------
def configure(enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS) -> Tracer | None:
    """Turn process-global tracing on (returning the live tracer) or off."""
    global _global_tracer
    _global_tracer = Tracer(max_spans=max_spans) if enabled else None
    return _global_tracer


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled.

    The context-local override (:func:`push_tracer`) wins over the
    global one, so worker-scoped recordings stay isolated.
    """
    tracer = _tracer_var.get()
    if tracer is not None:
        return tracer
    return _global_tracer


def tracing_enabled() -> bool:
    return current_tracer() is not None


def span(name: str, parent=None, **attributes):
    """The one-call instrumentation point: a context-manager span.

    Returns the shared no-op when tracing is disabled — the only cost a
    call site pays by default.
    """
    tracer = current_tracer()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, parent=parent, **attributes)


def push_tracer(tracer: Tracer):
    """Install a context-local tracer; returns the token for :func:`pop_tracer`.

    Executor threads and pool workers do not inherit the caller's
    context, so a traced worker pushes its own tracer explicitly and
    ships the spans back by value.
    """
    return _tracer_var.set(tracer)


def pop_tracer(token) -> None:
    _tracer_var.reset(token)


def span_context(span_like) -> dict:
    """A span's identity as a wire-safe dict (protocol ``trace`` field)."""
    return {"trace": span_like.trace_id, "span": span_like.span_id}


def current_context() -> dict | None:
    """The ambient span's context dict, or ``None`` (also when disabled).

    This is what crosses process and socket boundaries: the receiver
    adopts it and its spans join the sender's trace.
    """
    if current_tracer() is None:
        return None
    current = _current_span.get()
    if current is None:
        return None
    return span_context(current)


@contextlib.contextmanager
def adopt_context(ctx: dict | None) -> Iterator[None]:
    """Treat a remote context dict as the ambient parent for this block."""
    if not ctx or current_tracer() is None:
        yield
        return
    trace_id = ctx.get("trace")
    parent_id = ctx.get("span")
    if not isinstance(trace_id, str) or not isinstance(parent_id, str):
        yield
        return
    token = _current_span.set(SpanContext(trace_id, parent_id))
    try:
        yield
    finally:
        _current_span.reset(token)
