"""Counters, gauges, and exponential-bucket histograms.

The :class:`MetricsRegistry` replaces the ad-hoc stat dicts the service
grew organically: every series is ``(name, labels)``-keyed, JSON-safe
via :meth:`~MetricsRegistry.to_dict`, and mergeable across processes
via :meth:`~MetricsRegistry.merge` (the cross-fleet aggregation the
``stats`` op needs).

Histograms use exponential buckets with growth factor ``BASE`` (about
1.19 — four buckets per doubling), so a latency distribution spanning
microseconds to minutes needs ~100 integer counters and any quantile
estimate is off by at most one bucket width (~9% relative, and clamped
to the observed min/max).  That trade — tiny fixed memory, bounded
relative error — is the standard production histogram design
(Prometheus native histograms, HdrHistogram).
"""

from __future__ import annotations

import math
import threading

#: Bump when the registry payload layout changes.
METRICS_SCHEMA_VERSION = 1

#: Histogram bucket growth factor: 2**0.25, four buckets per doubling.
BASE = 2 ** 0.25
_LOG_BASE = math.log(BASE)

#: Quantiles reported in every histogram payload.
QUANTILES = (0.5, 0.9, 0.99)


def bucket_index(value: float) -> int:
    """The bucket holding ``value``: index ``i`` covers [BASE^i, BASE^(i+1))."""
    return math.floor(math.log(value) / _LOG_BASE + 1e-9)


def bucket_upper(index: int) -> float:
    """The exclusive upper bound of bucket ``index``."""
    return BASE ** (index + 1)


class Histogram:
    """Exponential-bucket histogram with streaming quantile estimates."""

    __slots__ = ("count", "total", "minimum", "maximum", "zeros", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        #: observations <= 0 (e.g. a zero-length wait) get their own slot.
        self.zeros = 0
        #: bucket index -> observation count.
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (0..1); ``None`` when empty.

        Walks the cumulative counts to the target rank and returns the
        geometric midpoint of the landing bucket, clamped to the exact
        observed extremes — so p0/p100 are exact and everything between
        is within one bucket width of the true value.
        """
        if self.count == 0:
            return None
        rank = q * (self.count - 1)
        cumulative = self.zeros
        if rank < cumulative:
            return 0.0 if self.minimum is None else max(self.minimum, 0.0)
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if rank < cumulative:
                estimate = BASE ** (index + 0.5)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def to_dict(self) -> dict:
        payload = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "zeros": self.zeros,
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
        }
        payload["quantiles"] = {
            f"p{int(q * 100)}": self.quantile(q) for q in QUANTILES
        }
        return payload

    def merge(self, payload: dict) -> None:
        """Fold another histogram's :meth:`to_dict` payload into this one."""
        self.count += int(payload.get("count") or 0)
        self.total += float(payload.get("sum") or 0.0)
        self.zeros += int(payload.get("zeros") or 0)
        for bound in ("min", "max"):
            value = payload.get(bound)
            if value is None:
                continue
            current = self.minimum if bound == "min" else self.maximum
            if current is None:
                better = value
            else:
                better = min(current, value) if bound == "min" else max(current, value)
            if bound == "min":
                self.minimum = better
            else:
                self.maximum = better
        for index, n in (payload.get("buckets") or {}).items():
            index = int(index)
            self.buckets[index] = self.buckets.get(index, 0) + int(n)


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Named, labeled metric series: counters, gauges, histograms.

    Thread-safe (the simulator observes from executor threads while the
    service loop updates its own series).  A name is bound to one kind
    on first use; reusing it as a different kind raises — silently
    coercing would corrupt dashboards.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (name, labels) -> ("counter"|"gauge", float) | ("histogram", Histogram)
        self._series: dict[tuple, list] = {}

    def _entry(self, name: str, labels: dict, kind: str) -> list:
        key = _series_key(name, labels)
        entry = self._series.get(key)
        if entry is None:
            entry = [kind, Histogram() if kind == "histogram" else 0.0]
            self._series[key] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {entry[0]}, not a {kind}"
            )
        return entry

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        with self._lock:
            entry = self._entry(name, labels, "counter")
            entry[1] += value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        with self._lock:
            entry = self._entry(name, labels, "gauge")
            entry[1] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        with self._lock:
            entry = self._entry(name, labels, "histogram")
            entry[1].observe(value)

    # -- reading --------------------------------------------------------
    def value(self, name: str, **labels) -> float | None:
        """A counter/gauge's current value (``None`` if absent)."""
        with self._lock:
            entry = self._series.get(_series_key(name, labels))
            if entry is None or entry[0] == "histogram":
                return None
            return entry[1]

    def histogram(self, name: str, **labels) -> Histogram | None:
        with self._lock:
            entry = self._series.get(_series_key(name, labels))
            if entry is None or entry[0] != "histogram":
                return None
            return entry[1]

    def quantile(self, name: str, q: float, **labels) -> float | None:
        hist = self.histogram(name, **labels)
        return hist.quantile(q) if hist is not None else None

    def to_dict(self) -> dict:
        """JSON-safe snapshot: the ``metrics`` section of service stats."""
        with self._lock:
            series = []
            for (name, labels), (kind, value) in sorted(self._series.items()):
                row = {"name": name, "labels": dict(labels), "kind": kind}
                if kind == "histogram":
                    row.update(value.to_dict())
                else:
                    row["value"] = value
                series.append(row)
        return {"schema": METRICS_SCHEMA_VERSION, "series": series}

    def merge(self, payload: dict | None) -> None:
        """Fold another registry's :meth:`to_dict` payload into this one.

        Counters and histogram counts add; gauges take the incoming
        value (last writer wins — they are point-in-time readings).
        The cross-process aggregation path: worker registries serialize,
        the parent merges.
        """
        if not payload:
            return
        for row in payload.get("series") or []:
            name = row.get("name")
            kind = row.get("kind")
            labels = row.get("labels") or {}
            if not isinstance(name, str) or kind not in (
                "counter", "gauge", "histogram"
            ):
                continue
            with self._lock:
                entry = self._entry(name, labels, kind)
                if kind == "counter":
                    entry[1] += float(row.get("value") or 0.0)
                elif kind == "gauge":
                    entry[1] = float(row.get("value") or 0.0)
                else:
                    entry[1].merge(row)

    def clear(self) -> None:
        with self._lock:
            self._series.clear()


#: Process-global registry: ambient sinks (the simulator's shots/sec)
#: record here; the service owns its own registry instance.
_global_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _global_registry


def reset_metrics() -> None:
    _global_registry.clear()
