"""Terminal renderings: the trace tree and the metrics table.

Both feed the CLI (``weaver trace``, ``weaver top``, ``weaver submit
--stats``, the ``weaver serve`` shutdown report) and deliberately mirror
the existing ``format_profile_table`` aesthetic: plain aligned text, no
box-drawing dependencies.
"""

from __future__ import annotations


def _duration_ms(span: dict) -> float:
    start = span.get("start") or 0.0
    end = span.get("end")
    return max((end - start) * 1e3, 0.0) if end is not None else 0.0


def format_trace_tree(spans: list[dict], max_spans: int = 200) -> str:
    """Render spans as an indented tree, children under parents.

    Spans whose parent is unknown (roots, or remote parents whose span
    never shipped back) render at top level.  Sibling order is start
    time; cross-process children carry a ``[pid N]`` marker.
    """
    if not spans:
        return "(no spans recorded)"
    by_id = {s.get("span"): s for s in spans if s.get("span")}
    children: dict[str | None, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for group in children.values():
        group.sort(key=lambda s: s.get("start") or 0.0)
    roots.sort(key=lambda s: s.get("start") or 0.0)

    lines: list[str] = []
    truncated = [False]

    def render(span: dict, depth: int, root_pid) -> None:
        if len(lines) >= max_spans:
            truncated[0] = True
            return
        marker = ""
        if root_pid is not None and span.get("pid") not in (None, root_pid):
            marker = f"  [pid {span['pid']}]"
        attrs = span.get("attrs") or {}
        error = f"  !{attrs['error']}" if "error" in attrs else ""
        lines.append(
            f"{'  ' * depth}{span.get('name')}  "
            f"{_duration_ms(span):.2f} ms{marker}{error}"
        )
        for child in children.get(span.get("span"), []):
            render(child, depth + 1, root_pid)

    for root in roots:
        render(root, 0, root.get("pid"))
    if truncated[0]:
        lines.append(f"... ({len(spans)} spans total)")
    return "\n".join(lines)


def _rows(title: tuple[str, ...], rows: list[tuple[str, ...]]) -> list[str]:
    widths = [
        max(len(str(cell)) for cell in column) for column in zip(title, *rows)
    ]
    lines = []
    for row in (title, *rows):
        lines.append(
            "  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return lines


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    return f"{value * 1e3:.1f} ms" if value < 10 else f"{value:.2f} s"


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def format_metrics_table(metrics: dict) -> str:
    """Render a registry snapshot (``MetricsRegistry.to_dict``) as text.

    Histograms get one row each with count and p50/p90/p99 — the view
    the acceptance criteria name (p50/p99 job latency, queue depth).
    """
    series = (metrics or {}).get("series") or []
    if not series:
        return "(no metrics recorded)"
    scalar_rows: list[tuple[str, ...]] = []
    histogram_rows: list[tuple[str, ...]] = []
    for row in series:
        name = f"{row.get('name')}{_label_suffix(row.get('labels') or {})}"
        if row.get("kind") == "histogram":
            # Series named *_seconds render as durations; anything else
            # (rates like sim.shots_per_second) as plain numbers.
            fmt = (
                _fmt_seconds
                if "seconds" in str(row.get("name"))
                and not str(row.get("name")).endswith("per_second")
                else _fmt_value
            )
            quantiles = row.get("quantiles") or {}
            histogram_rows.append(
                (
                    name,
                    str(row.get("count", 0)),
                    fmt(quantiles.get("p50")),
                    fmt(quantiles.get("p90")),
                    fmt(quantiles.get("p99")),
                    fmt(row.get("max")),
                )
            )
        else:
            scalar_rows.append((name, _fmt_value(row.get("value"))))
    sections: list[str] = []
    if scalar_rows:
        sections.extend(_rows(("metric", "value"), scalar_rows))
    if histogram_rows:
        if sections:
            sections.append("")
        sections.extend(
            _rows(
                ("histogram", "count", "p50", "p90", "p99", "max"),
                histogram_rows,
            )
        )
    return "\n".join(sections)
