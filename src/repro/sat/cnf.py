"""CNF formula representation in DIMACS literal convention.

A literal is a nonzero integer: ``+v`` is variable ``v`` (1-based), ``-v``
its negation.  This matches both DIMACS files and the paper's clause lists,
e.g. ``[[-1, -2, -3], [4, -5, 6], [3, 5, -6]]`` in Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..exceptions import SatError


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals, e.g. ``(¬x0 ∨ ¬x1 ∨ ¬x2)``.

    ``weight`` supports *weighted* MAX-SAT (the "general QAOA circuits"
    extension of §5): the clause's cost-Hamiltonian contribution scales by
    it.  Plain MAX-3SAT uses the default weight 1.
    """

    literals: tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.literals:
            raise SatError("empty clause")
        if any(lit == 0 for lit in self.literals):
            raise SatError("literal 0 is reserved as the DIMACS terminator")
        if len({abs(lit) for lit in self.literals}) != len(self.literals):
            raise SatError(f"clause {self.literals} repeats a variable")
        if self.weight <= 0:
            raise SatError(f"clause weight must be positive, got {self.weight}")

    @property
    def variables(self) -> frozenset[int]:
        """The (1-based) variables this clause mentions."""
        return frozenset(abs(lit) for lit in self.literals)

    def is_satisfied(self, assignment: Sequence[bool]) -> bool:
        """Evaluate under ``assignment`` (``assignment[v-1]`` is var ``v``)."""
        for lit in self.literals:
            value = assignment[abs(lit) - 1]
            if (lit > 0) == value:
                return True
        return False

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self):
        return iter(self.literals)

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        parts = [f"¬x{abs(l) - 1}" if l < 0 else f"x{l - 1}" for l in self.literals]
        return "(" + " ∨ ".join(parts) + ")"


def clause_shares_variable(a: Clause, b: Clause) -> bool:
    """Whether two clauses mention a common variable (Algorithm 1 edge)."""
    return bool(a.variables & b.variables)


@dataclass
class CnfFormula:
    """A CNF formula: ``num_vars`` variables and a clause list.

    Instances are the input format of the wOptimizer (§5): Weaver compiles
    the QAOA cost Hamiltonian of the MAX-3SAT problem this formula encodes.
    """

    num_vars: int
    clauses: list[Clause] = field(default_factory=list)
    name: str = "formula"

    def __post_init__(self) -> None:
        if self.num_vars < 1:
            raise SatError("formula needs at least one variable")
        normalized = []
        for clause in self.clauses:
            if not isinstance(clause, Clause):
                clause = Clause(tuple(clause))
            if max(clause.variables) > self.num_vars:
                raise SatError(
                    f"clause {clause.literals} references variable beyond "
                    f"num_vars={self.num_vars}"
                )
            normalized.append(clause)
        self.clauses = normalized

    @classmethod
    def from_lists(
        cls, clause_lists: Iterable[Sequence[int]], num_vars: int | None = None,
        name: str = "formula",
    ) -> "CnfFormula":
        """Build from raw literal lists, inferring ``num_vars`` if omitted."""
        clauses = [Clause(tuple(lits)) for lits in clause_lists]
        if not clauses and num_vars is None:
            raise SatError("cannot infer num_vars from an empty clause list")
        if num_vars is None:
            num_vars = max(max(c.variables) for c in clauses)
        return cls(num_vars=num_vars, clauses=clauses, name=name)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def max_clause_size(self) -> int:
        return max((len(c) for c in self.clauses), default=0)

    def is_3sat(self) -> bool:
        """Whether every clause has at most three literals."""
        return self.max_clause_size <= 3

    def num_satisfied(self, assignment: Sequence[bool]) -> int:
        """How many clauses ``assignment`` satisfies (the MAX-SAT objective)."""
        if len(assignment) != self.num_vars:
            raise SatError(
                f"assignment length {len(assignment)} != num_vars {self.num_vars}"
            )
        return sum(1 for c in self.clauses if c.is_satisfied(assignment))

    def weighted_satisfied(self, assignment: Sequence[bool]) -> float:
        """Total weight of satisfied clauses (weighted MAX-SAT objective)."""
        if len(assignment) != self.num_vars:
            raise SatError(
                f"assignment length {len(assignment)} != num_vars {self.num_vars}"
            )
        return sum(c.weight for c in self.clauses if c.is_satisfied(assignment))

    def variables_used(self) -> frozenset[int]:
        used: set[int] = set()
        for clause in self.clauses:
            used |= clause.variables
        return frozenset(used)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self):
        return iter(self.clauses)

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return " ∧ ".join(str(c) for c in self.clauses)
