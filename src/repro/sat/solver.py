"""Classical SAT/MAX-SAT solvers used by examples and tests.

These replace the PySAT oracle of the original artifact: a small DPLL
decision procedure, a WalkSAT local-search MAX-SAT heuristic, and an
exhaustive MAX-SAT solver for validating QAOA output on small instances.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SatError
from ..rng import as_generator
from .cnf import CnfFormula


def count_satisfied(formula: CnfFormula, assignment: list[bool]) -> int:
    """Number of satisfied clauses (alias of the formula method)."""
    return formula.num_satisfied(assignment)


def dpll_satisfiable(formula: CnfFormula) -> list[bool] | None:
    """DPLL with unit propagation; returns a model or ``None`` (UNSAT)."""
    clauses = [list(c.literals) for c in formula.clauses]
    assignment: dict[int, bool] = {}

    def propagate(clauses: list[list[int]], assignment: dict[int, bool]):
        changed = True
        while changed:
            changed = False
            next_clauses = []
            for clause in clauses:
                unassigned = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    if var in assignment:
                        if (lit > 0) == assignment[var]:
                            satisfied = True
                            break
                    else:
                        unassigned.append(lit)
                if satisfied:
                    continue
                if not unassigned:
                    return None  # conflict
                if len(unassigned) == 1:
                    lit = unassigned[0]
                    assignment[abs(lit)] = lit > 0
                    changed = True
                else:
                    next_clauses.append(unassigned)
            clauses = next_clauses
        return clauses

    def search(clauses: list[list[int]], assignment: dict[int, bool]) -> bool:
        reduced = propagate(clauses, assignment)
        if reduced is None:
            return False
        if not reduced:
            return True
        # Branch on the most frequent variable in the remaining clauses.
        counts: dict[int, int] = {}
        for clause in reduced:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        var = max(counts, key=counts.get)
        for value in (True, False):
            trail = dict(assignment)
            trail[var] = value
            if search(reduced, trail):
                assignment.clear()
                assignment.update(trail)
                return True
        return False

    if not search(clauses, assignment):
        return None
    return [assignment.get(v, False) for v in range(1, formula.num_vars + 1)]


def walksat(
    formula: CnfFormula,
    max_flips: int = 10_000,
    noise: float = 0.5,
    seed: int | np.random.Generator = 0,
) -> tuple[list[bool], int]:
    """WalkSAT local search; returns (best assignment, clauses satisfied).

    Used by examples to cross-check the quality of QAOA samples against a
    strong classical heuristic.
    """
    if not 0.0 <= noise <= 1.0:
        raise SatError("noise must be in [0, 1]")
    rng = as_generator(seed)
    assignment = list(rng.integers(0, 2, size=formula.num_vars) == 1)
    best = list(assignment)
    best_score = formula.num_satisfied(assignment)
    for _ in range(max_flips):
        unsatisfied = [c for c in formula.clauses if not c.is_satisfied(assignment)]
        if not unsatisfied:
            return assignment, formula.num_clauses
        clause = unsatisfied[rng.integers(0, len(unsatisfied))]
        if rng.random() < noise:
            var = abs(clause.literals[rng.integers(0, len(clause.literals))])
        else:
            # Greedy: flip the variable that satisfies the most clauses.
            var, var_score = 0, -1
            for lit in clause.literals:
                candidate = abs(lit)
                assignment[candidate - 1] = not assignment[candidate - 1]
                score = formula.num_satisfied(assignment)
                assignment[candidate - 1] = not assignment[candidate - 1]
                if score > var_score:
                    var, var_score = candidate, score
        assignment[var - 1] = not assignment[var - 1]
        score = formula.num_satisfied(assignment)
        if score > best_score:
            best, best_score = list(assignment), score
    return best, best_score


def brute_force_max_sat(formula: CnfFormula) -> tuple[list[bool], int]:
    """Exhaustive MAX-SAT over all assignments (small ``num_vars`` only)."""
    if formula.num_vars > 22:
        raise SatError(
            f"brute force over {formula.num_vars} variables is intractable"
        )
    best_assignment: list[bool] = [False] * formula.num_vars
    best_score = -1
    for mask in range(2**formula.num_vars):
        assignment = [(mask >> i) & 1 == 1 for i in range(formula.num_vars)]
        score = formula.num_satisfied(assignment)
        if score > best_score:
            best_assignment, best_score = assignment, score
            if best_score == formula.num_clauses:
                break
    return best_assignment, best_score
