"""MAX-3SAT substrate: CNF formulas, DIMACS I/O, SATLIB-style workloads.

Replaces the PySAT dependency of the original artifact (§7) and the SATLIB
benchmark download (§8.1): formulas are represented natively and benchmark
instances are generated as seeded uniform random 3-SAT with the exact
variable/clause shapes of the SATLIB ``uf*`` suites.
"""

from .cnf import Clause, CnfFormula, clause_shares_variable
from .dimacs import parse_dimacs, to_dimacs
from .generator import SATLIB_SHAPES, random_ksat, satlib_instance
from .polynomial import IsingPolynomial, clause_polynomial, formula_polynomial
from .solver import (
    brute_force_max_sat,
    count_satisfied,
    dpll_satisfiable,
    walksat,
)

__all__ = [
    "Clause",
    "CnfFormula",
    "IsingPolynomial",
    "SATLIB_SHAPES",
    "brute_force_max_sat",
    "clause_polynomial",
    "clause_shares_variable",
    "count_satisfied",
    "dpll_satisfiable",
    "formula_polynomial",
    "parse_dimacs",
    "random_ksat",
    "satlib_instance",
    "to_dimacs",
    "walksat",
]
