"""Seeded uniform random 3-SAT generator with SATLIB ``uf*`` shapes.

The paper benchmarks on the SATLIB suites ``uf20`` … ``uf250`` (§8.1, §A.3.2),
which are uniform random 3-SAT at the satisfiability phase transition.  The
suites fix the clause count per variable count; we reproduce those shapes
exactly and derive a deterministic seed from the instance name, so
``satlib_instance("uf20-01")`` is reproducible across runs and machines.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..exceptions import SatError
from ..rng import as_generator
from .cnf import Clause, CnfFormula

#: (num_vars -> num_clauses) for the SATLIB uniform-random-3-SAT suites the
#: paper evaluates: uf20-91, uf50-218, uf75-325, uf100-430, uf150-645,
#: uf250-1065.
SATLIB_SHAPES: dict[int, int] = {
    20: 91,
    50: 218,
    75: 325,
    100: 430,
    150: 645,
    250: 1065,
}


def _seed_from_name(name: str) -> int:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int | np.random.Generator = 0,
    name: str | None = None,
) -> CnfFormula:
    """Uniform random k-SAT: distinct variables per clause, random signs.

    Exact duplicate clauses are rejected and resampled, matching the
    standard SATLIB generation procedure.  ``seed`` accepts an integer
    or a ``numpy.random.Generator``.
    """
    if k > num_vars:
        raise SatError(f"cannot draw {k} distinct variables out of {num_vars}")
    rng = as_generator(seed)
    seen: set[tuple[int, ...]] = set()
    clauses: list[Clause] = []
    max_attempts = 1000 * num_clauses + 1000
    attempts = 0
    while len(clauses) < num_clauses:
        attempts += 1
        if attempts > max_attempts:
            raise SatError(
                f"could not generate {num_clauses} distinct clauses over "
                f"{num_vars} variables"
            )
        variables = rng.choice(num_vars, size=k, replace=False) + 1
        signs = rng.integers(0, 2, size=k) * 2 - 1
        literals = tuple(sorted(int(v * s) for v, s in zip(variables, signs)))
        if literals in seen:
            continue
        seen.add(literals)
        clauses.append(Clause(literals))
    label = name or f"random-{k}sat-{num_vars}-{num_clauses}"
    return CnfFormula(num_vars=num_vars, clauses=clauses, name=label)


def satlib_instance(name: str) -> CnfFormula:
    """A SATLIB-shaped instance by canonical name, e.g. ``"uf20-01"``.

    The shape (variables, clauses) follows :data:`SATLIB_SHAPES`; the clause
    content is seeded uniform random 3-SAT derived deterministically from
    ``name``.  This substitutes for downloading the SATLIB archive (see
    DESIGN.md §3).
    """
    if not name.startswith("uf"):
        raise SatError(f"unknown SATLIB family in {name!r} (expected 'uf...')")
    body = name[2:]
    parts = body.split("-")
    try:
        num_vars = int(parts[0])
    except (ValueError, IndexError) as exc:
        raise SatError(f"malformed SATLIB instance name {name!r}") from exc
    if num_vars not in SATLIB_SHAPES:
        raise SatError(
            f"no SATLIB shape for {num_vars} variables "
            f"(known: {sorted(SATLIB_SHAPES)})"
        )
    num_clauses = SATLIB_SHAPES[num_vars]
    return random_ksat(
        num_vars,
        num_clauses,
        k=3,
        seed=_seed_from_name(name),
        name=name,
    )


def satlib_suite(num_vars: int, count: int = 10) -> list[CnfFormula]:
    """The ``count`` instances ``uf<N>-01`` … ``uf<N>-<count>`` (§8.1)."""
    return [satlib_instance(f"uf{num_vars}-{i:02d}") for i in range(1, count + 1)]
