"""Boolean-to-Ising polynomial conversion for MAX-3SAT cost Hamiltonians.

The paper (§5, Figure 5) represents each clause's objective as a Boolean
polynomial of degree at most three; the QAOA phase separator then turns each
monomial into a Z-rotation surrounded by a CNOT ladder (Figure 6).

Derivation.  A clause ``C`` with literals ``l_i`` over variables ``v_i`` is
*unsatisfied* iff every literal is false, so its penalty indicator is

    P_C(x) = prod_i (1 - l_i(x)).

Substituting ``x = (1 - z) / 2`` (with ``z = ±1`` the eigenvalue of ``Z``)
each factor becomes ``(1 + s_i z_i)/2`` where ``s_i = +1`` for a positive
literal and ``-1`` for a negated one.  Expanding the product yields a
polynomial over Z-monomials with coefficients ``±1/2^k``.  The cost
Hamiltonian minimized by QAOA is ``H = sum_C P_C``.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..exceptions import SatError
from .cnf import Clause, CnfFormula

#: A monomial key: sorted tuple of 0-based qubit/variable indices.
Monomial = tuple[int, ...]


@dataclass
class IsingPolynomial:
    """A real polynomial over Z-monomials, ``sum_m coeff[m] * prod Z_i``.

    Keys are sorted tuples of 0-based variable indices; the empty tuple is
    the constant term (a global phase in QAOA, tracked but not compiled).
    """

    num_vars: int
    coefficients: dict[Monomial, float] = field(default_factory=dict)

    def add_term(self, variables: Sequence[int], coefficient: float) -> None:
        """Accumulate ``coefficient`` onto the monomial over ``variables``."""
        key = tuple(sorted(variables))
        if len(set(key)) != len(key):
            raise SatError(f"monomial {variables} repeats a variable")
        if key and max(key) >= self.num_vars:
            raise SatError(f"monomial {key} out of range for {self.num_vars} vars")
        new = self.coefficients.get(key, 0.0) + coefficient
        if abs(new) < 1e-15:
            self.coefficients.pop(key, None)
        else:
            self.coefficients[key] = new

    def terms(self, min_degree: int = 0) -> list[tuple[Monomial, float]]:
        """Monomial/coefficient pairs sorted by (degree, indices)."""
        items = [
            (mono, coeff)
            for mono, coeff in self.coefficients.items()
            if len(mono) >= min_degree
        ]
        items.sort(key=lambda kv: (len(kv[0]), kv[0]))
        return items

    @property
    def degree(self) -> int:
        return max((len(m) for m in self.coefficients), default=0)

    @property
    def constant(self) -> float:
        return self.coefficients.get((), 0.0)

    def evaluate(self, assignment: Sequence[bool]) -> float:
        """Evaluate at a Boolean assignment (``True`` -> ``z = -1``)."""
        if len(assignment) != self.num_vars:
            raise SatError(
                f"assignment length {len(assignment)} != num_vars {self.num_vars}"
            )
        z = [(-1.0 if bit else 1.0) for bit in assignment]
        total = 0.0
        for mono, coeff in self.coefficients.items():
            prod = coeff
            for var in mono:
                prod *= z[var]
            total += prod
        return total

    def __add__(self, other: "IsingPolynomial") -> "IsingPolynomial":
        if other.num_vars != self.num_vars:
            raise SatError("cannot add polynomials over different variable counts")
        out = IsingPolynomial(self.num_vars, dict(self.coefficients))
        for mono, coeff in other.coefficients.items():
            out.add_term(mono, coeff)
        return out

    def __len__(self) -> int:
        return len(self.coefficients)


def clause_polynomial(clause: Clause, num_vars: int) -> IsingPolynomial:
    """Penalty polynomial ``w_C * P_C`` of one clause.

    ``P_C`` is 1 iff the clause is unsatisfied; the clause weight scales
    the whole polynomial (plain MAX-3SAT has weight 1).  For the paper's
    example clause ``(¬x0 ∨ ¬x1 ∨ ¬x2)`` this returns the expansion of
    ``x0*x1*x2`` in Z variables.
    """
    poly = IsingPolynomial(num_vars)
    signs = {abs(lit) - 1: (1.0 if lit > 0 else -1.0) for lit in clause.literals}
    variables = sorted(signs)
    k = len(variables)
    scale = clause.weight * 0.5**k
    for r in range(k + 1):
        for subset in itertools.combinations(variables, r):
            coeff = scale
            for var in subset:
                coeff *= signs[var]
            poly.add_term(subset, coeff)
    return poly


def formula_polynomial(formula: CnfFormula) -> IsingPolynomial:
    """Cost Hamiltonian ``H = sum_C P_C`` counting unsatisfied clauses.

    ``H`` evaluated at an assignment equals the number of unsatisfied
    clauses, so minimizing ``H`` maximizes satisfied clauses.
    """
    total = IsingPolynomial(formula.num_vars)
    for clause in formula.clauses:
        total = total + clause_polynomial(clause, formula.num_vars)
    return total
