"""DIMACS CNF reader/writer (the SATLIB interchange format)."""

from __future__ import annotations

from ..exceptions import SatError
from .cnf import Clause, CnfFormula


def parse_dimacs(text: str, name: str = "dimacs") -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`.

    Accepts the SATLIB dialect: ``c`` comment lines, a single
    ``p cnf <vars> <clauses>`` header, clauses as 0-terminated integer
    sequences possibly spanning several lines, and an optional trailing
    ``%`` / ``0`` block (present in the SATLIB ``uf*`` files).
    """
    num_vars: int | None = None
    declared_clauses: int | None = None
    literals: list[int] = []
    clauses: list[Clause] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):
            break
        if line.startswith("p"):
            if num_vars is not None:
                raise SatError("duplicate DIMACS problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"malformed problem line: {line!r}")
            try:
                num_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise SatError(f"malformed problem line: {line!r}") from exc
            continue
        if num_vars is None:
            raise SatError("clause data before the DIMACS problem line")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise SatError(f"invalid literal token {token!r}") from exc
            if lit == 0:
                if literals:
                    clauses.append(Clause(tuple(literals)))
                    literals = []
            else:
                literals.append(lit)
    if literals:
        # SATLIB files sometimes omit the final terminator.
        clauses.append(Clause(tuple(literals)))
    if num_vars is None:
        raise SatError("missing DIMACS problem line")
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise SatError(
            f"problem line declares {declared_clauses} clauses, found {len(clauses)}"
        )
    return CnfFormula(num_vars=num_vars, clauses=clauses, name=name)


def to_dimacs(formula: CnfFormula, comment: str | None = None) -> str:
    """Serialize a formula to DIMACS CNF text."""
    lines = []
    if comment:
        for chunk in comment.splitlines():
            lines.append(f"c {chunk}")
    lines.append(f"p cnf {formula.num_vars} {formula.num_clauses}")
    for clause in formula.clauses:
        lines.append(" ".join(str(lit) for lit in clause.literals) + " 0")
    return "\n".join(lines) + "\n"
