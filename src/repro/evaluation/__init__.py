"""Evaluation harness regenerating every table and figure of paper §8."""

from .workloads import (
    FIXED_SIZE_INSTANCES,
    SCALING_SIZES,
    load_workload,
    scaling_instances,
)
from .runner import DEFAULT_BUDGETS, EvaluationConfig, ResultStore
from .figures import (
    fig8a_compilation_fixed,
    fig8b_compilation_scaling,
    fig10a_complexity,
    fig10b_pulses,
    fig10c_ccz_threshold,
    fig11a_execution_fixed,
    fig11b_execution_scaling,
    fig12a_eps_fixed,
    fig12b_eps_scaling,
)
from .tables import table2_complexity
from .reporting import format_table, format_value
from .sim_validation import VALIDATION_Z, eps_cross_validation

__all__ = [
    "DEFAULT_BUDGETS",
    "EvaluationConfig",
    "FIXED_SIZE_INSTANCES",
    "ResultStore",
    "SCALING_SIZES",
    "VALIDATION_Z",
    "eps_cross_validation",
    "fig10a_complexity",
    "fig10b_pulses",
    "fig10c_ccz_threshold",
    "fig11a_execution_fixed",
    "fig11b_execution_scaling",
    "fig12a_eps_fixed",
    "fig12b_eps_scaling",
    "fig8a_compilation_fixed",
    "fig8b_compilation_scaling",
    "format_table",
    "format_value",
    "load_workload",
    "scaling_instances",
    "table2_complexity",
]

