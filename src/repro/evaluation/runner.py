"""Evaluation runner: compile (compiler x workload) cells with budgets.

The paper's experiment harness runs each compiler over the benchmark suite
under a 20-hour timeout (§8.1).  At laptop scale the default budget is 60
seconds — the same compilers hit it in the same places (Geyser and DPQA
above 20 variables).  Every run is cached in the :class:`ResultStore`, so
all figures derive from a single compile of each cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import ALL_COMPILERS
from ..baselines.base import BaselineCompiler, BaselineResult, run_with_timeout
from .workloads import (
    FIXED_SIZE_INSTANCES,
    SCALING_SIZES,
    load_workload,
    scaling_instances,
)

#: Per-compiler compile budgets in seconds.  Mirrors the paper's single
#: 20 h budget, scaled to laptop runs; Geyser and DPQA genuinely exceed it
#: beyond 20 variables.
DEFAULT_BUDGETS: dict[str, float] = {
    "weaver": 300.0,
    "atomique": 300.0,
    "superconducting": 600.0,
    "geyser": 60.0,
    "dpqa": 60.0,
}

#: The superconducting backend has 127 qubits; the paper stops that
#: baseline at 100 variables (Fig. 8 caption).
SUPERCONDUCTING_MAX_VARS = 127

#: Sizes at which the exponential/quadratic compilers are actually
#: attempted; beyond the first timeout size they are recorded as timed out
#: without burning the budget again (monotone work growth).
ATTEMPT_LIMIT = {"geyser": 50, "dpqa": 50}


@dataclass
class EvaluationConfig:
    """Knobs for a full evaluation sweep."""

    compilers: tuple[str, ...] = (
        "superconducting",
        "atomique",
        "weaver",
        "dpqa",
        "geyser",
    )
    fixed_instances: tuple[str, ...] = FIXED_SIZE_INSTANCES
    scaling_sizes: tuple[int, ...] = SCALING_SIZES
    instances_per_size: int = 3
    budgets: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_BUDGETS))


class ResultStore:
    """Cache of (compiler, workload) -> :class:`BaselineResult`."""

    def __init__(self, config: EvaluationConfig | None = None):
        self.config = config or EvaluationConfig()
        self.results: dict[tuple[str, str], BaselineResult] = {}
        self._instances: dict[str, BaselineCompiler] = {}

    def _compiler(self, name: str) -> BaselineCompiler:
        if name not in self._instances:
            if name not in ALL_COMPILERS:
                raise KeyError(f"unknown compiler {name!r}")
            self._instances[name] = ALL_COMPILERS[name]()
        return self._instances[name]

    def run(self, compiler: str, workload: str) -> BaselineResult:
        """Compile one cell (cached)."""
        key = (compiler, workload)
        if key in self.results:
            return self.results[key]
        formula = load_workload(workload)
        limit = ATTEMPT_LIMIT.get(compiler)
        if limit is not None and formula.num_vars > limit:
            result = BaselineResult(
                compiler=compiler,
                workload=workload,
                num_vars=formula.num_vars,
                num_clauses=formula.num_clauses,
                compile_seconds=self.config.budgets.get(compiler, 60.0),
                timed_out=True,
            )
        elif (
            compiler == "superconducting"
            and formula.num_vars > SUPERCONDUCTING_MAX_VARS
        ):
            result = BaselineResult(
                compiler=compiler,
                workload=workload,
                num_vars=formula.num_vars,
                num_clauses=formula.num_clauses,
                error="exceeds 127-qubit backend",
            )
        else:
            result = run_with_timeout(
                self._compiler(compiler),
                formula,
                budget_seconds=self.config.budgets.get(compiler),
            )
        self.results[key] = result
        return result

    # ------------------------------------------------------------------
    def fixed_size_results(self, compiler: str) -> list[BaselineResult]:
        """All ten uf20 cells for one compiler (Figures 8a/11a/12a)."""
        return [self.run(compiler, name) for name in self.config.fixed_instances]

    def scaling_results(
        self, compiler: str, num_vars: int
    ) -> list[BaselineResult]:
        """The cells of one scaling data point (Figures 8b/10b/11b/12b)."""
        names = scaling_instances(num_vars, self.config.instances_per_size)
        return [self.run(compiler, name) for name in names]


def mean_of(values: list[float | None]) -> float | None:
    """Mean of the non-``None`` entries, or ``None`` if empty."""
    usable = [v for v in values if v is not None]
    if not usable:
        return None
    return sum(usable) / len(usable)
