"""Evaluation runner: compile (compiler x workload) cells with budgets.

The paper's experiment harness runs each compiler over the benchmark suite
under a 20-hour timeout (§8.1).  At laptop scale the default budget is 60
seconds — the same compilers hit it in the same places (Geyser and DPQA
above 20 variables).  Every run is cached in the :class:`ResultStore`, so
all figures derive from a single compile of each cell, and a store can be
persisted to JSON so interrupted sweeps resume instead of recompiling.

Since the target-registry redesign the runner is a thin veneer over
:mod:`repro.targets`: each evaluation "compiler" name resolves to a
registered target, and rows are the unified results viewed as legacy
:class:`BaselineResult` records (the shape the figure code consumes).
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..baselines.base import BaselineResult
from ..targets.base import Target
from ..targets.registry import get_target
from ..targets.workload import Workload
from .workloads import (
    FIXED_SIZE_INSTANCES,
    SCALING_SIZES,
    load_workload,
    scaling_instances,
)

#: Per-compiler compile budgets in seconds.  Mirrors the paper's single
#: 20 h budget, scaled to laptop runs; Geyser and DPQA genuinely exceed it
#: beyond 20 variables.
DEFAULT_BUDGETS: dict[str, float] = {
    "weaver": 300.0,
    "atomique": 300.0,
    "superconducting": 600.0,
    "geyser": 60.0,
    "dpqa": 60.0,
}

#: The superconducting backend has 127 qubits; the paper stops that
#: baseline at 100 variables (Fig. 8 caption).
SUPERCONDUCTING_MAX_VARS = 127

#: Sizes at which the exponential/quadratic compilers are actually
#: attempted; beyond the first timeout size they are recorded as timed out
#: without burning the budget again (monotone work growth).
ATTEMPT_LIMIT = {"geyser": 50, "dpqa": 50}


@dataclass
class EvaluationConfig:
    """Knobs for a full evaluation sweep."""

    compilers: tuple[str, ...] = (
        "superconducting",
        "atomique",
        "weaver",
        "dpqa",
        "geyser",
    )
    fixed_instances: tuple[str, ...] = FIXED_SIZE_INSTANCES
    scaling_sizes: tuple[int, ...] = SCALING_SIZES
    instances_per_size: int = 3
    budgets: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_BUDGETS))
    #: Device profiles for the device-sweep axis (empty = skip the sweep).
    #: Each name must be registered in :mod:`repro.devices`.
    devices: tuple[str, ...] = ()


class ResultStore:
    """Cache of (compiler, workload) -> :class:`BaselineResult`.

    ``compiler`` keys are evaluation names; each resolves to a registered
    target (``"weaver"`` is the registry alias of ``"fpqa"``).
    """

    def __init__(
        self,
        config: EvaluationConfig | None = None,
        autosave_path: str | Path | None = None,
    ):
        self.config = config or EvaluationConfig()
        self.results: dict[tuple[str, str], BaselineResult] = {}
        self._targets: dict[str, Target] = {}
        #: When set, every freshly-compiled cell rewrites this JSON file,
        #: so even a mid-sweep interrupt loses at most the cell in flight.
        self.autosave_path = Path(autosave_path) if autosave_path else None

    def _target(self, name: str, device: str | None = None) -> Target:
        key = name if device is None else f"{name}@{device}"
        if key not in self._targets:
            options = {} if device is None else {"device": device}
            self._targets[key] = get_target(name, **options)
        return self._targets[key]

    def run(
        self, compiler: str, workload: str, device: str | None = None
    ) -> BaselineResult:
        """Compile one cell (cached).

        ``device`` selects a registered device profile for device-aware
        compilers (the fpqa and superconducting paths); the cell is then
        keyed and recorded as ``compiler@device``, so device-sweep rows
        persist and resume alongside the plain grid.
        """
        label = compiler if device is None else f"{compiler}@{device}"
        key = (label, workload)
        if key in self.results:
            return self.results[key]
        formula = load_workload(workload)
        limit = ATTEMPT_LIMIT.get(compiler)
        if limit is not None and formula.num_vars > limit:
            result = BaselineResult(
                compiler=label,
                workload=workload,
                num_vars=formula.num_vars,
                num_clauses=formula.num_clauses,
                compile_seconds=self.config.budgets.get(compiler, 60.0),
                timed_out=True,
            )
        elif (
            compiler == "superconducting"
            and device is None
            and formula.num_vars > SUPERCONDUCTING_MAX_VARS
        ):
            result = BaselineResult(
                compiler=label,
                workload=workload,
                num_vars=formula.num_vars,
                num_clauses=formula.num_clauses,
                error="exceeds 127-qubit backend",
            )
        else:
            unified = self._target(compiler, device).compile(
                Workload.from_formula(formula, name=workload),
                budget_seconds=self.config.budgets.get(compiler),
                on_error="result",
            )
            result = unified.to_baseline_result(compiler=label)
        self.results[key] = result
        if self.autosave_path is not None:
            self.save(self.autosave_path)
        return result

    # ------------------------------------------------------------------
    # Persistence: JSON round trip so sweeps resume across runs
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write every cached cell to ``path`` as JSON; returns the count.

        The write is atomic (temp file + rename): this file is rewritten
        after every cell during autosave, and an interrupt mid-write must
        never corrupt the store a resume depends on.
        """
        path = Path(path)
        payload = {
            "format": "weaver-result-store",
            "version": 1,
            "results": [row.to_dict() for row in self.results.values()],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        return len(self.results)

    def load(self, path: str | Path) -> int:
        """Merge previously-saved cells; returns how many were loaded.

        Loaded cells are keyed by (compiler, workload) exactly like live
        runs, so a subsequent sweep recompiles only the missing cells.
        A truncated/corrupt store is treated as empty (with a warning)
        rather than aborting the sweep it was meant to resume.
        """
        path = Path(path)
        if not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            warnings.warn(
                f"result store {path} is unreadable ({exc}); starting fresh",
                stacklevel=2,
            )
            return 0
        if payload.get("format") != "weaver-result-store":
            raise ValueError(f"{path} is not a saved result store")
        count = 0
        for row in payload.get("results", ()):
            result = BaselineResult.from_dict(row)
            self.results[(result.compiler, result.workload)] = result
            count += 1
        return count

    # ------------------------------------------------------------------
    def fixed_size_results(self, compiler: str) -> list[BaselineResult]:
        """All ten uf20 cells for one compiler (Figures 8a/11a/12a)."""
        return [self.run(compiler, name) for name in self.config.fixed_instances]

    def scaling_results(
        self, compiler: str, num_vars: int
    ) -> list[BaselineResult]:
        """The cells of one scaling data point (Figures 8b/10b/11b/12b)."""
        names = scaling_instances(num_vars, self.config.instances_per_size)
        return [self.run(compiler, name) for name in names]

    def device_sweep_results(
        self, device: str, compiler: str = "weaver"
    ) -> list[BaselineResult]:
        """The fixed-suite cells of one device (the device-sweep axis)."""
        return [
            self.run(compiler, name, device=device)
            for name in self.config.fixed_instances
        ]


def mean_of(values: list[float | None]) -> float | None:
    """Mean of the non-``None`` entries, or ``None`` if empty."""
    usable = [v for v in values if v is not None]
    if not usable:
        return None
    return sum(usable) / len(usable)
