"""Benchmark workloads (paper §8.1): SATLIB-shaped MAX-3SAT instances.

Two experiment families: ten fixed-size 20-variable instances
(``uf20-01`` … ``uf20-10``), and a scaling sweep over 20–250 variables
with several instances per size averaged per data point.
"""

from __future__ import annotations

from functools import lru_cache

from ..sat.cnf import CnfFormula
from ..sat.generator import SATLIB_SHAPES, satlib_instance

#: The ten fixed-size instances of Figures 8(a), 11(a), 12(a).
FIXED_SIZE_INSTANCES: tuple[str, ...] = tuple(
    f"uf20-{i:02d}" for i in range(1, 11)
)

#: The variable-size sweep of Figures 8(b), 10, 11(b), 12(b).
SCALING_SIZES: tuple[int, ...] = (20, 50, 75, 100, 150, 250)


@lru_cache(maxsize=None)
def load_workload(name: str) -> CnfFormula:
    """Load (generate deterministically) a workload by SATLIB-style name."""
    return satlib_instance(name)


def scaling_instances(num_vars: int, count: int = 3) -> list[str]:
    """Instance names for one scaling data point (paper averages 10)."""
    if num_vars not in SATLIB_SHAPES:
        raise ValueError(f"no SATLIB shape for {num_vars} variables")
    return [f"uf{num_vars}-{i:02d}" for i in range(1, count + 1)]
