"""Per-figure data generators (paper §8, Figures 8 and 10-12).

Each function returns rows of plain dictionaries — the same series the
paper plots — leaving presentation to callers (the benchmark harness
prints them with :mod:`repro.evaluation.reporting`).  Timed-out cells are
reported as ``None`` values with ``timed_out=True`` — the "X" marks in the
paper's figures.
"""

from __future__ import annotations

import numpy as np

from ..fpqa.hardware import FPQAHardwareParams
from ..metrics.complexity import (
    atomique_steps,
    dpqa_log10_steps,
    geyser_steps,
    qiskit_steps,
    weaver_steps,
)
from ..qaoa.builder import qaoa_circuit
from ..targets.builtin import FPQATarget
from ..targets.workload import Workload
from .runner import ResultStore, mean_of
from .workloads import load_workload


def _metric_cell(result, attribute: str):
    if result.timed_out or result.error:
        return None
    return getattr(result, attribute)


def _fixed_rows(store: ResultStore, attribute: str, compilers) -> list[dict]:
    rows = []
    for workload in store.config.fixed_instances:
        row: dict = {"workload": workload}
        for compiler in compilers:
            row[compiler] = _metric_cell(store.run(compiler, workload), attribute)
        rows.append(row)
    mean_row: dict = {"workload": "Mean"}
    for compiler in compilers:
        mean_row[compiler] = mean_of([row[compiler] for row in rows])
    rows.append(mean_row)
    return rows


def _scaling_rows(store: ResultStore, attribute: str, compilers) -> list[dict]:
    rows = []
    for num_vars in store.config.scaling_sizes:
        row: dict = {"num_vars": num_vars}
        for compiler in compilers:
            cells = [
                _metric_cell(result, attribute)
                for result in store.scaling_results(compiler, num_vars)
            ]
            row[compiler] = mean_of(cells)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 8: compilation time
# ----------------------------------------------------------------------
def fig8a_compilation_fixed(store: ResultStore) -> list[dict]:
    """Fig. 8(a): compile seconds for the ten uf20 instances + mean."""
    return _fixed_rows(store, "compile_seconds", store.config.compilers)


def fig8b_compilation_scaling(store: ResultStore) -> list[dict]:
    """Fig. 8(b): compile seconds vs variable count (X = timeout)."""
    return _scaling_rows(store, "compile_seconds", store.config.compilers)


# ----------------------------------------------------------------------
# Figure 10(a): complexity comparison (analytic step counts)
# ----------------------------------------------------------------------
def fig10a_complexity(sizes: tuple[int, ...] = (20, 50, 75, 100, 150, 250)) -> list[dict]:
    """Fig. 10(a)/Table 2 curves: step counts per compiler vs size.

    ``K`` (circuit operation count) is measured from the actual QAOA
    circuits, like the paper fits Geyser's complexity from real circuits.
    DPQA's column is log10 (the raw value overflows past ~30 variables).
    """
    rows = []
    for num_vars in sizes:
        formula = load_workload(f"uf{num_vars}-01")
        num_ops = qaoa_circuit(formula).size
        rows.append(
            {
                "num_vars": num_vars,
                "num_ops_K": num_ops,
                "superconducting": qiskit_steps(num_vars),
                "atomique": atomique_steps(num_vars),
                "weaver": weaver_steps(num_vars),
                "geyser": geyser_steps(num_ops),
                "dpqa_log10": dpqa_log10_steps(num_ops),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 10(b): number of pulses
# ----------------------------------------------------------------------
def fig10b_pulses(store: ResultStore) -> list[dict]:
    """Fig. 10(b): mean pulse counts vs size for the FPQA compilers."""
    compilers = [c for c in store.config.compilers if c != "superconducting"]
    return _scaling_rows(store, "num_pulses", compilers)


# ----------------------------------------------------------------------
# Figure 10(c): CCZ fidelity threshold
# ----------------------------------------------------------------------
def fig10c_ccz_threshold(
    store: ResultStore,
    fidelities: tuple[float, ...] = (
        0.980, 0.983, 0.986, 0.989, 0.992, 0.995, 0.997, 0.999, 0.9995,
    ),
) -> dict:
    """Fig. 10(c): Weaver EPS as a function of CCZ fidelity.

    Baselines do not use CCZ gates, so their EPS is flat; the threshold is
    the smallest swept fidelity at which Weaver's mean EPS over the uf20
    suite exceeds every baseline's (the paper reports 0.9916).
    """
    baselines = {}
    for compiler in store.config.compilers:
        if compiler in ("weaver", "geyser"):
            continue  # Geyser's EPS is excluded (§8.4)
        cells = [
            _metric_cell(result, "eps")
            for result in store.fixed_size_results(compiler)
        ]
        baselines[compiler] = mean_of(cells)
    sweep = []
    for fidelity in fidelities:
        hardware = FPQAHardwareParams().with_overrides(fidelity_ccz=fidelity)
        target = FPQATarget(hardware=hardware)
        eps_values = []
        for workload in store.config.fixed_instances:
            result = target.compile(
                Workload.from_formula(load_workload(workload), name=workload)
            )
            eps_values.append(result.eps)
        sweep.append({"ccz_fidelity": fidelity, "weaver_eps": float(np.mean(eps_values))})
    best_baseline = max(
        (value for value in baselines.values() if value is not None), default=0.0
    )
    threshold = None
    for point in sweep:
        if point["weaver_eps"] > best_baseline:
            threshold = point["ccz_fidelity"]
            break
    return {
        "sweep": sweep,
        "baselines": baselines,
        "best_baseline_eps": best_baseline,
        "threshold": threshold,
    }


# ----------------------------------------------------------------------
# Figure 11: execution time
# ----------------------------------------------------------------------
def fig11a_execution_fixed(store: ResultStore) -> list[dict]:
    """Fig. 11(a): execution seconds for the ten uf20 instances + mean."""
    return _fixed_rows(store, "execution_seconds", store.config.compilers)


def fig11b_execution_scaling(store: ResultStore) -> list[dict]:
    """Fig. 11(b): execution seconds vs variable count."""
    return _scaling_rows(store, "execution_seconds", store.config.compilers)


# ----------------------------------------------------------------------
# Figure 12: fidelity (EPS)
# ----------------------------------------------------------------------
def fig12a_eps_fixed(store: ResultStore) -> list[dict]:
    """Fig. 12(a): EPS for the ten uf20 instances (Geyser excluded)."""
    compilers = [c for c in store.config.compilers if c != "geyser"]
    return _fixed_rows(store, "eps", compilers)


def fig12b_eps_scaling(store: ResultStore) -> list[dict]:
    """Fig. 12(b): EPS vs variable count (Geyser excluded)."""
    compilers = [c for c in store.config.compilers if c != "geyser"]
    return _scaling_rows(store, "eps", compilers)
