"""Table generators (paper Table 2)."""

from __future__ import annotations

from ..metrics.complexity import COMPLEXITY_TABLE


def table2_complexity() -> list[dict]:
    """Table 2: compilation complexity per compiler.

    N is the number of benchmark variables; K the number of circuit
    operations (generally K >> N).
    """
    order = ["qiskit", "atomique", "geyser", "dpqa", "weaver"]
    return [
        {"compiler": name, "complexity": COMPLEXITY_TABLE[name]} for name in order
    ]
