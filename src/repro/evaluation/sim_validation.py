"""Cross-validation: sampled EPS vs the analytic model (paper §8.4).

The analytic EPS of :func:`repro.metrics.fidelity.program_eps` and the
simulator's Monte-Carlo estimate are two independent paths to the same
number: the metric multiplies per-pulse fidelities; the simulator
samples each of those error terms as a Bernoulli event and counts
error-free shots.  :func:`eps_cross_validation` runs both over the uf20
fixed-size corpus and reports whether the analytic value falls inside
the sampled confidence interval — the consistency bar the acceptance
tests pin.
"""

from __future__ import annotations

from ..metrics.fidelity import program_eps
from ..sim import simulate_result, wilson_interval
from ..targets.api import compile as compile_workload
from ..targets.workload import Workload
from .workloads import FIXED_SIZE_INSTANCES, load_workload

#: z-score of the validation bound (99.9% two-sided): wide enough that a
#: 10-instance sweep with a fixed seed passes deterministically, tight
#: enough that a mismodeled error term (a factor-of-two rate bug moves
#: EPS by many sigma at 2000 shots) fails loudly.
VALIDATION_Z = 3.2905


def eps_cross_validation(
    instances: tuple[str, ...] = FIXED_SIZE_INSTANCES,
    target: str = "fpqa",
    device: str | None = None,
    shots: int = 2000,
    seed: int = 7,
    noise: float = 1.0,
    z: float = VALIDATION_Z,
    max_trajectories: int = 0,
) -> list[dict]:
    """Compile and simulate each instance; compare sampled vs analytic EPS.

    ``max_trajectories`` defaults to 0 because EPS estimation is pure
    event bookkeeping — no exact trajectory replay is needed — which
    keeps a full-corpus sweep at roughly one ideal statevector run per
    instance.  Returns one row per instance with the sampled estimate,
    its interval at ``z``, the analytic value, and ``within_ci``.
    """
    rows: list[dict] = []
    for name in instances:
        formula = load_workload(name)
        result = compile_workload(
            Workload.from_formula(formula, name=name),
            target=target,
            device=device,
        )
        execution = simulate_result(
            result,
            shots=shots,
            noise=noise,
            seed=seed,
            formula=formula,
            max_trajectories=max_trajectories,
        )
        analytic = program_eps(
            result.program, result.fpqa_hardware()
        ) if result.program is not None else None
        if analytic is not None and noise != 1.0:
            analytic = analytic**noise
        low, high = wilson_interval(execution.error_free_shots, shots, z)
        rows.append(
            {
                "workload": name,
                "target": result.target,
                "device": result.device,
                "shots": shots,
                "seed": seed,
                "noise": noise,
                "analytic_eps": analytic,
                "model_eps": execution.eps_analytic,
                "sampled_eps": execution.eps_sampled,
                "ci_low": low,
                "ci_high": high,
                "within_ci": (
                    low <= analytic <= high if analytic is not None else None
                ),
            }
        )
    return rows
