"""The artifact workflow of appendix §A.4.1, as a library function.

The original artifact's ``run.py`` executes eight steps: transpile
MAX-3SAT instances to QAOA circuits, run Atomique, Superconducting,
Geyser, Weaver, convert to DPQA format, run DPQA, and plot four figures.
:func:`run_artifact` reproduces that flow at laptop scale and returns (and
optionally prints) the four figures' data tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .figures import (
    fig8a_compilation_fixed,
    fig8b_compilation_scaling,
    fig10a_complexity,
    fig10b_pulses,
    fig10c_ccz_threshold,
    fig11a_execution_fixed,
    fig11b_execution_scaling,
    fig12a_eps_fixed,
    fig12b_eps_scaling,
)
from .reporting import format_table
from .runner import EvaluationConfig, ResultStore, mean_of
from .tables import table2_complexity


def device_sweep_table(store: ResultStore, devices: tuple[str, ...]) -> list[dict]:
    """Per-device means of the Weaver path over the fixed suite.

    The retargetability demonstration the paper's single-device artifact
    cannot make: one compiler, the same workloads, N machines.
    """
    rows = []
    for device in devices:
        cells = store.device_sweep_results(device)
        ok = [c for c in cells if c.succeeded]
        rows.append(
            {
                "device": device,
                "instances": len(ok),
                "compile_s": mean_of([c.compile_seconds for c in ok]),
                "execution_s": mean_of([c.execution_seconds for c in ok]),
                "eps": mean_of([c.eps for c in ok]),
                "pulses": mean_of([float(c.num_pulses) for c in ok if c.num_pulses]),
            }
        )
    return rows


@dataclass
class ArtifactReport:
    """All regenerated figure/table data plus wall-clock accounting."""

    figures: dict[str, object] = field(default_factory=dict)
    seconds_per_step: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        sections = []
        titles = {
            "fig8a": "Figure 8(a): compilation time [s], uf20 suite",
            "fig8b": "Figure 8(b): compilation time [s] vs size",
            "table2": "Table 2: compilation complexity",
            "fig10a": "Figure 10(a): complexity step counts",
            "fig10b": "Figure 10(b): number of pulses vs size",
            "fig11a": "Figure 11(a): execution time [s], uf20 suite",
            "fig11b": "Figure 11(b): execution time [s] vs size",
            "fig12a": "Figure 12(a): EPS, uf20 suite",
            "fig12b": "Figure 12(b): EPS vs size",
        }
        for key, title in titles.items():
            if key in self.figures:
                sections.append(format_table(self.figures[key], title=title))
        if "device_sweep" in self.figures:
            sections.append(
                format_table(
                    self.figures["device_sweep"],
                    title="Device sweep: Weaver path across device profiles "
                          "(fixed-suite means)",
                )
            )
        if "fig10c" in self.figures:
            data = self.figures["fig10c"]
            sections.append(
                format_table(data["sweep"], title="Figure 10(c): Weaver EPS vs CCZ fidelity")
            )
            sections.append(
                f"Fig 10(c) best baseline EPS: {data['best_baseline_eps']:.4g}; "
                f"threshold: {data['threshold']}\n"
            )
        timing = ", ".join(
            f"{k}={v:.1f}s" for k, v in self.seconds_per_step.items()
        )
        sections.append(f"step timings: {timing}\n")
        return "\n".join(sections)


def run_artifact(
    config: EvaluationConfig | None = None,
    include_ccz_sweep: bool = True,
    verbose: bool = True,
    store: ResultStore | None = None,
    store_path=None,
) -> ArtifactReport:
    """Execute the full evaluation and regenerate every figure/table.

    Pass ``store_path`` to persist every compiled cell to JSON as it
    lands (and transparently reuse any cells already saved there), so an
    interrupted sweep loses at most the cell in flight.
    """
    store = store or ResultStore(config)
    if store_path is not None:
        loaded = store.load(store_path)
        store.autosave_path = store_path
        if verbose and loaded:
            print(f"[artifact] resumed {loaded} cells from {store_path}", flush=True)
    report = ArtifactReport()

    def step(name: str, func) -> None:
        start = time.perf_counter()
        if verbose:
            print(f"[artifact] {name} ...", flush=True)
        report.figures[name] = func()
        report.seconds_per_step[name] = time.perf_counter() - start

    step("fig8a", lambda: fig8a_compilation_fixed(store))
    step("fig8b", lambda: fig8b_compilation_scaling(store))
    step("table2", table2_complexity)
    step("fig10a", fig10a_complexity)
    step("fig10b", lambda: fig10b_pulses(store))
    step("fig11a", lambda: fig11a_execution_fixed(store))
    step("fig11b", lambda: fig11b_execution_scaling(store))
    step("fig12a", lambda: fig12a_eps_fixed(store))
    step("fig12b", lambda: fig12b_eps_scaling(store))
    if include_ccz_sweep:
        step("fig10c", lambda: fig10c_ccz_threshold(store))
    if store.config.devices:
        step(
            "device_sweep",
            lambda: device_sweep_table(store, store.config.devices),
        )
    if verbose:
        print(report.render())
    return report
