"""Plain-text rendering of figure/table rows.

Timed-out or unavailable cells print as ``X``, matching the figure
annotations in the paper.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def format_value(value, precision: int = 4) -> str:
    """Render one cell: numbers in compact scientific form, None as X."""
    if value is None:
        return "X"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if math.isinf(value):
            return "inf"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e5:
            return f"{value:.{precision}g}"
        return f"{value:.{max(precision - 2, 1)}e}"
    return str(value)


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), max(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines) + "\n"
