"""Executable schedules: compiled artifacts lowered for the simulator.

A :class:`Schedule` pairs the gate stream to execute with the noise
events the executing hardware would suffer.  Two front ends produce
them:

* :func:`schedule_from_program` replays a compiled wQasm program's FPQA
  annotation stream through the wChecker's pulse-to-gate converter
  (:func:`repro.checker.pulse_to_gate.reconstruct_circuit` semantics),
  so what gets executed is the *compiled artifact* — pulses, shuttles
  and transfers — not the logical circuit it claims to implement.  The
  error events mirror :meth:`repro.devices.FPQACostModel.program_eps`
  term for term: one per Raman pulse, one per Rydberg pulse (rated by
  the largest cluster it drives), one per batch of consecutive
  transfers, per-atom idle dephasing over the program duration, and a
  per-qubit readout term for measured programs.

* :func:`schedule_from_circuit` wraps a gate-level circuit (the
  superconducting path, or any raw workload) with per-gate error rates
  taken from a :class:`~repro.superconducting.backend.SuperconductingBackend`
  calibration when one is supplied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..checker.pulse_to_gate import PulseToGateConverter
from ..circuits import Instruction, QuantumCircuit
from ..devices.cost import cost_model_for
from ..exceptions import SimulationError
from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Transfer,
)
from ..wqasm.program import WQasmProgram
from .noise import KIND_READOUT, NoiseEvent


@dataclass
class Schedule:
    """A gate stream plus the device noise events attached to it.

    Sampled counts are always full-width computational-basis snapshots
    over all ``num_qubits`` qubits (matching
    :func:`repro.circuits.measurement_distribution` keys); ``measured``
    only controls whether readout-error events exist, and on the
    gate-level path those events attach only to qubits the circuit
    actually measures.
    """

    name: str
    num_qubits: int
    instructions: list[Instruction]
    events: tuple[NoiseEvent, ...] = ()
    duration_us: float | None = None
    measured: bool = False

    def circuit(self) -> QuantumCircuit:
        """The schedule's gate stream as a plain circuit (no noise)."""
        return QuantumCircuit.from_instructions(
            self.num_qubits, self.instructions, name=self.name
        )


def schedule_from_program(
    program: WQasmProgram, hardware: FPQAHardwareParams | None = None
) -> Schedule:
    """Lower a compiled wQasm program into an executable schedule.

    The annotation stream is replayed through the device state machine
    exactly like the wChecker does, so atom positions (and therefore the
    qubits each transfer and pulse touches) are known when each error
    event is created.  Event probabilities replicate the analytic EPS
    accounting exactly: the product of ``1 - p`` over all events equals
    :func:`repro.metrics.fidelity.program_eps` up to float rounding.
    """
    hardware = hardware or FPQAHardwareParams()
    cost = cost_model_for(hardware)
    converter = PulseToGateConverter(program.num_qubits, hardware)
    for instruction in program.setup:
        converter.convert(instruction)

    gates: list[Instruction] = []
    events: list[NoiseEvent] = []
    batch_qubits: list[int] = []  # transfer batch being accumulated
    batch_position = 0
    previous_was_transfer = False

    def flush_transfer_batch() -> None:
        nonlocal batch_qubits
        if batch_qubits:
            events.append(
                NoiseEvent(
                    probability=1.0 - hardware.fidelity_transfer,
                    qubits=tuple(sorted(set(batch_qubits))),
                    position=batch_position,
                    label="transfer",
                )
            )
            batch_qubits = []

    for operation in program.operations:
        largest = max((len(g.qubits) for g in operation.gates), default=0)
        for instruction in operation.instructions:
            is_transfer = isinstance(instruction, Transfer)
            if is_transfer:
                if not previous_was_transfer:
                    flush_transfer_batch()
                    batch_position = len(gates)
                batch_qubits.append(
                    _transfer_qubit(converter, instruction)
                )
            else:
                flush_transfer_batch()
            previous_was_transfer = is_transfer
            gates.extend(converter.convert(instruction))
            if isinstance(instruction, RamanLocal):
                events.append(
                    NoiseEvent(
                        probability=1.0 - hardware.fidelity_raman_local,
                        qubits=(instruction.qubit,),
                        position=len(gates),
                        label="raman_local",
                    )
                )
            elif isinstance(instruction, RamanGlobal):
                events.append(
                    NoiseEvent(
                        probability=1.0 - hardware.fidelity_raman_global,
                        qubits=tuple(sorted(converter.device.qubit_location)),
                        position=len(gates),
                        label="raman_global",
                    )
                )
            elif isinstance(instruction, RydbergPulse) and largest >= 2:
                cluster_qubits = sorted(
                    {
                        q
                        for gate in operation.gates
                        if len(gate.qubits) == largest
                        for q in gate.qubits
                    }
                )
                events.append(
                    NoiseEvent(
                        probability=1.0 - hardware.cluster_fidelity(largest),
                        qubits=tuple(cluster_qubits),
                        position=len(gates),
                        label="rydberg",
                    )
                )
    flush_transfer_batch()

    duration_us = cost.program_duration_us(program)
    p_dephase = -math.expm1(-duration_us / hardware.t2_us)
    if p_dephase > 0:
        for qubit in range(program.num_qubits):
            events.append(
                NoiseEvent(
                    probability=p_dephase,
                    qubits=(qubit,),
                    position=None,  # idle error: position sampled per shot
                    paulis=("z",),
                    label="decoherence",
                )
            )
    if program.measured:
        p_readout = 1.0 - hardware.fidelity_measurement
        if p_readout > 0:
            for qubit in range(program.num_qubits):
                events.append(
                    NoiseEvent(
                        probability=p_readout,
                        kind=KIND_READOUT,
                        qubits=(qubit,),
                        label="measurement",
                    )
                )

    return Schedule(
        name=program.name,
        num_qubits=program.num_qubits,
        instructions=gates,
        events=tuple(events),
        duration_us=duration_us,
        measured=program.measured,
    )


def _transfer_qubit(converter: PulseToGateConverter, instruction: Transfer) -> int:
    """The qubit a transfer moves (resolved before the device mutates).

    Exactly one side of the transfer holds an atom (the Table 1
    pre-condition the device enforces); find it in the replayed state.
    """
    device = converter.device
    slm_location = ("slm", instruction.slm_index)
    aod_location = ("aod", instruction.aod_col, instruction.aod_row)
    for qubit, location in device.qubit_location.items():
        if location == slm_location or location == aod_location:
            return qubit
    raise SimulationError(
        f"transfer at SLM {instruction.slm_index} / AOD "
        f"({instruction.aod_col}, {instruction.aod_row}) moves no atom"
    )


def schedule_from_circuit(
    circuit: QuantumCircuit,
    backend=None,
    name: str | None = None,
) -> Schedule:
    """Lower a gate-level circuit, with optional backend error rates.

    ``backend`` is a
    :class:`~repro.superconducting.backend.SuperconductingBackend` (or
    anything with ``error_1q`` / ``edge_error`` / ``error_readout``);
    ``None`` produces a noiseless schedule.  Idle decoherence is not
    modeled on the gate-level path — there is no pulse-level timing to
    integrate over (documented in the README).
    """
    instructions: list[Instruction] = []
    events: list[NoiseEvent] = []
    measured_qubits: list[int] = []
    for inst in circuit.instructions:
        if inst.name == "measure":
            measured_qubits.extend(inst.qubits)
            continue
        if not inst.gate.is_unitary:
            continue
        instructions.append(inst)
        if backend is None:
            continue
        arity = len(inst.qubits)
        if arity == 1:
            probability = backend.error_1q
        elif arity == 2:
            probability = backend.edge_error(*inst.qubits)
        else:
            # No native >2q gates on this path; rate like a 2q ladder.
            probability = backend.error_2q
        if probability > 0:
            events.append(
                NoiseEvent(
                    probability=probability,
                    qubits=tuple(inst.qubits),
                    position=len(instructions),
                    label="gate_1q" if arity == 1 else "gate_2q",
                )
            )
    if backend is not None and measured_qubits and backend.error_readout > 0:
        for qubit in sorted(set(measured_qubits)):
            events.append(
                NoiseEvent(
                    probability=backend.error_readout,
                    kind=KIND_READOUT,
                    qubits=(qubit,),
                    label="measurement",
                )
            )
    return Schedule(
        name=name or circuit.name,
        num_qubits=circuit.num_qubits,
        instructions=instructions,
        events=tuple(events),
        duration_us=None,
        measured=bool(measured_qubits),
    )
