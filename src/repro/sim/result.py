"""The :class:`ExecutionResult` record: what one simulated run produced.

JSON-serializable (the service's artifact store persists it inside the
compilation artifact) and self-contained: counts, the sampled EPS with
its confidence interval, the QAOA quality metrics, and the ``sim.*``
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Bump when the execution dict layout changes.
EXECUTION_SCHEMA_VERSION = 1

#: z-score of the default (95%) confidence interval.
DEFAULT_Z = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = DEFAULT_Z
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because sampled EPS sits
    near 0 or 1 for very noisy / nearly-noiseless programs, where the
    normal interval collapses to zero width.
    """
    if trials <= 0:
        raise ValueError("wilson_interval needs at least one trial")
    low, high = _wilson_bound(successes, trials, z)
    # Clamp the boundary cases exactly (float noise otherwise leaves the
    # lower bound of 0/n at ~1e-18 instead of 0).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def _wilson_bound(successes: int, trials: int, z: float) -> tuple[float, float]:
    phat = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (phat + z2 / (2.0 * trials)) / denominator
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class ExecutionResult:
    """One shot-based execution of a compiled artifact."""

    workload: str
    shots: int
    #: Sampled outcome histogram; keys are little-endian bitstrings
    #: (qubit 0 leftmost), ordered by descending count then key.
    counts: dict[str, int] = field(default_factory=dict)
    target: str | None = None
    device: str | None = None
    seed: int | None = None
    #: ``None`` = noiseless run; otherwise the noise scale factor.
    noise_scale: float | None = None
    engine: str = "statevector"
    num_qubits: int = 0
    #: Shots in which no error event fired (readout errors included).
    error_free_shots: int = 0
    #: ``error_free_shots / shots``: the Monte-Carlo EPS estimate.
    eps_sampled: float | None = None
    #: 95% Wilson interval around :attr:`eps_sampled`.
    eps_ci: tuple[float, float] | None = None
    #: The noise model's exact no-event probability (cross-validates
    #: against :func:`repro.metrics.fidelity.program_eps`).
    eps_analytic: float | None = None
    energy: float | None = None
    mean_satisfied: float | None = None
    best_satisfied: float | None = None
    optimum_satisfied: float | None = None
    approximation_ratio: float | None = None
    duration_us: float | None = None
    #: Sampler bookkeeping: events fired, trajectory bucket counts, ...
    stats: dict = field(default_factory=dict)
    #: ``sim.*`` profiler counters of this run.
    profile: dict | None = None

    def eps_interval(self, z: float = DEFAULT_Z) -> tuple[float, float] | None:
        """The EPS confidence interval at a caller-chosen z-score."""
        if self.eps_sampled is None:
            return None
        return wilson_interval(self.error_free_shots, self.shots, z)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": EXECUTION_SCHEMA_VERSION,
            "workload": self.workload,
            "shots": self.shots,
            "counts": dict(self.counts),
            "target": self.target,
            "device": self.device,
            "seed": self.seed,
            "noise_scale": self.noise_scale,
            "engine": self.engine,
            "num_qubits": self.num_qubits,
            "error_free_shots": self.error_free_shots,
            "eps_sampled": self.eps_sampled,
            "eps_ci": list(self.eps_ci) if self.eps_ci is not None else None,
            "eps_analytic": self.eps_analytic,
            "energy": self.energy,
            "mean_satisfied": self.mean_satisfied,
            "best_satisfied": self.best_satisfied,
            "optimum_satisfied": self.optimum_satisfied,
            "approximation_ratio": self.approximation_ratio,
            "duration_us": self.duration_us,
            "stats": dict(self.stats),
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionResult":
        if payload.get("schema") != EXECUTION_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported execution schema {payload.get('schema')!r}"
            )
        ci = payload.get("eps_ci")
        return cls(
            workload=payload["workload"],
            shots=payload["shots"],
            counts={str(k): int(v) for k, v in payload.get("counts", {}).items()},
            target=payload.get("target"),
            device=payload.get("device"),
            seed=payload.get("seed"),
            noise_scale=payload.get("noise_scale"),
            engine=payload.get("engine", "statevector"),
            num_qubits=payload.get("num_qubits", 0),
            error_free_shots=payload.get("error_free_shots", 0),
            eps_sampled=payload.get("eps_sampled"),
            eps_ci=tuple(ci) if ci is not None else None,
            eps_analytic=payload.get("eps_analytic"),
            energy=payload.get("energy"),
            mean_satisfied=payload.get("mean_satisfied"),
            best_satisfied=payload.get("best_satisfied"),
            optimum_satisfied=payload.get("optimum_satisfied"),
            approximation_ratio=payload.get("approximation_ratio"),
            duration_us=payload.get("duration_us"),
            stats=payload.get("stats", {}),
            profile=payload.get("profile"),
        )
