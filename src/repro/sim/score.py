"""Solution-quality scoring of sampled outcomes (paper Figure 1(c)/(d)).

Interprets sampled bitstrings as MAX-SAT assignments and scores them
against the workload's CNF formula via the shared energies table of
:func:`repro.qaoa.energy.formula_energies` — the same cost-Hamiltonian
eigenvalues the analytic QAOA expectation uses, so sampled and analytic
energies are directly comparable.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SimulationError
from ..qaoa.energy import formula_energies
from ..sat.cnf import CnfFormula


def score_samples(formula: CnfFormula, basis: np.ndarray) -> dict:
    """Score sampled basis states against ``formula``.

    Returns the QAOA quality metrics: mean energy (weighted unsatisfied
    clauses), mean/best satisfied weight, the exact optimum (from the
    full energies table — exhaustive but vectorized), and the
    approximation ratio ``mean_satisfied / optimum_satisfied``.
    """
    if basis.size == 0:
        raise SimulationError("cannot score an empty sample")
    energies = formula_energies(formula)
    if int(basis.max(initial=0)) >= energies.size:
        raise SimulationError(
            f"sampled basis state exceeds the {formula.num_vars}-variable "
            "formula; workload and program disagree on qubit count"
        )
    sampled = energies[basis]
    total_weight = float(sum(clause.weight for clause in formula.clauses))
    energy = float(sampled.mean())
    mean_satisfied = total_weight - energy
    best_satisfied = total_weight - float(sampled.min())
    optimum_satisfied = total_weight - float(energies.min())
    ratio = (
        mean_satisfied / optimum_satisfied if optimum_satisfied > 0 else None
    )
    return {
        "energy": energy,
        "mean_satisfied": mean_satisfied,
        "best_satisfied": best_satisfied,
        "optimum_satisfied": optimum_satisfied,
        "approximation_ratio": ratio,
    }
