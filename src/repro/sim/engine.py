"""Dense statevector execution engines.

:class:`StatevectorEngine` is the production engine: the gate-application
hot loop works on the state reshaped as a rank-``n`` tensor, so a
``k``-qubit gate costs ``O(2^n)`` vectorized numpy work instead of a
``2^n x 2^n`` matmul.  Three specializations carry compiled FPQA replays
(which are almost entirely ``u3`` + ``cz``/``ccz``):

* adjacent single-qubit gates on the same qubit fuse into one 2x2 matrix
  before touching the state (single-qubit gates commute past anything
  that does not share their qubit);
* single-qubit matrices apply through an axis reshape
  (``(..., 2, 2**q)``) with two fused multiply-adds;
* diagonal multi-qubit gates (``cz``/``ccz``/``mcz``/``rzz``/``cp``)
  multiply basis-state slices in place and never build a matrix.

:class:`NaiveStatevectorEngine` is the deliberately slow reference —
``expand_gate`` to the full ``2^n x 2^n`` operator, then matmul — kept
for differential tests and the ``benchmarks/test_sim_throughput.py``
speedup floor.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gates import gate_matrix
from ..exceptions import SimulationError
from ..linalg import (
    MAX_STATEVECTOR_QUBITS,
    apply_gate_to_state,
    expand_gate,
)

#: Multi-qubit gates whose matrix is diagonal in the computational basis;
#: they apply as in-place slice phase multiplications.  (Single-qubit
#: diagonals don't appear here: every 1q gate goes through the fusion
#: path, which is cheaper still.)
DIAGONAL_GATES = frozenset({"cz", "ccz", "mcz", "rzz", "cp"})

#: One insertion into a gate stream: apply ``pauli`` on ``qubit`` just
#: before the instruction at ``position`` (``position == len`` appends).
PauliInsert = tuple[int, int, str]

_PAULI_MATRICES = {
    "x": gate_matrix("x"),
    "y": gate_matrix("y"),
    "z": gate_matrix("z"),
}


def _instruction_list(circuit) -> list[Instruction]:
    if isinstance(circuit, QuantumCircuit):
        return circuit.instructions
    return list(circuit)


class StatevectorEngine:
    """Vectorized statevector simulator for up to
    :data:`repro.linalg.MAX_STATEVECTOR_QUBITS` qubits."""

    name = "statevector"

    def __init__(self, num_qubits: int, profiler=None):
        if num_qubits < 1:
            raise SimulationError("simulation needs at least one qubit")
        if num_qubits > MAX_STATEVECTOR_QUBITS:
            raise SimulationError(
                f"cannot simulate a statevector for {num_qubits} qubits "
                f"(limit {MAX_STATEVECTOR_QUBITS})"
            )
        self.num_qubits = num_qubits
        self.dim = 1 << num_qubits
        self.profiler = profiler

    # ------------------------------------------------------------------
    # States
    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        state = np.zeros(self.dim, dtype=complex)
        state[0] = 1.0
        return state

    def run(
        self,
        circuit,
        initial_state: np.ndarray | None = None,
        inserts: Sequence[PauliInsert] = (),
    ) -> np.ndarray:
        """Run a circuit (or instruction list), returning the final state.

        ``inserts`` lists Pauli-error insertions as ``(position, qubit,
        pauli)``; this is how the Monte-Carlo noise layer realizes one
        sampled error trajectory without rewriting the instruction list.
        """
        instructions = _instruction_list(circuit)
        if initial_state is None:
            state = self.initial_state()
        else:
            state = np.array(initial_state, dtype=complex)
            if state.shape != (self.dim,):
                raise SimulationError(
                    f"initial state has shape {state.shape}, expected ({self.dim},)"
                )
        return self.apply_segment(
            state, instructions, 0, len(instructions), inserts
        )

    # ------------------------------------------------------------------
    # The hot loop
    # ------------------------------------------------------------------
    def apply_segment(
        self,
        state: np.ndarray,
        instructions: Sequence[Instruction],
        start: int,
        stop: int,
        inserts: Sequence[PauliInsert] = (),
    ) -> np.ndarray:
        """Apply ``instructions[start:stop]`` to ``state`` in place.

        Exposed separately from :meth:`run` so the executor can share a
        common prefix across many error trajectories: advance one base
        state once, then branch copies at each trajectory's first error.
        Returns the state array (same object unless a dense fallback
        reallocated it).
        """
        pending: dict[int, np.ndarray] = {}
        insert_queue = [
            item for item in sorted(inserts) if start <= item[0] <= stop
        ]
        insert_index = 0
        counts = {"fused": 0, "one_qubit": 0, "diagonal": 0, "dense": 0}

        def flush(qubits: Iterable[int] | None = None) -> None:
            nonlocal state
            targets = sorted(pending) if qubits is None else [
                q for q in qubits if q in pending
            ]
            for q in targets:
                state = self._apply_1q(state, pending.pop(q), q)
                counts["one_qubit"] += 1

        for index in range(start, stop):
            while (
                insert_index < len(insert_queue)
                and insert_queue[insert_index][0] == index
            ):
                _, qubit, pauli = insert_queue[insert_index]
                flush()
                state = self._apply_1q(state, _PAULI_MATRICES[pauli], qubit)
                counts["one_qubit"] += 1
                insert_index += 1
            inst = instructions[index]
            gate = inst.gate
            if not gate.is_unitary:
                continue
            qubits = inst.qubits
            if len(qubits) == 1:
                q = qubits[0]
                matrix = gate.matrix()
                held = pending.get(q)
                if held is not None:
                    pending[q] = matrix @ held
                    counts["fused"] += 1
                else:
                    pending[q] = matrix
                continue
            flush(qubits)
            if gate.name in DIAGONAL_GATES:
                self._apply_diagonal(state, gate, qubits)
                counts["diagonal"] += 1
            else:
                state = apply_gate_to_state(
                    gate.matrix(), qubits, state, self.num_qubits
                )
                counts["dense"] += 1
        while insert_index < len(insert_queue):
            _, qubit, pauli = insert_queue[insert_index]
            flush()
            state = self._apply_1q(state, _PAULI_MATRICES[pauli], qubit)
            counts["one_qubit"] += 1
            insert_index += 1
        flush()
        if self.profiler is not None:
            for kind, count in counts.items():
                if count:
                    self.profiler.add(f"sim.gates.{kind}", 0.0, count=count)
        return state

    def _apply_1q(self, state: np.ndarray, matrix: np.ndarray, q: int) -> np.ndarray:
        """Apply a 2x2 matrix on qubit ``q`` via an axis reshape.

        Little-endian layout: bit ``q`` of a basis index has stride
        ``2**q``, so reshaping to ``(-1, 2, 2**q)`` isolates it on the
        middle axis and the gate is one batched BLAS matmul over the
        whole state — a single memory pass, no operator embedding.  For
        small strides the batch shape degenerates (millions of tiny
        matmuls), so the gate is instead expanded over the stride
        (``kron(m, I)``, at most 32x32) and applied as one tall-skinny
        matmul on contiguous chunks.
        """
        length = 1 << q
        if length >= 32:
            return np.matmul(
                matrix, state.reshape(-1, 2, length)
            ).reshape(self.dim)
        expanded = np.kron(matrix, np.eye(length, dtype=complex))
        return (state.reshape(-1, 2 * length) @ expanded.T).reshape(self.dim)

    def _apply_diagonal(self, state: np.ndarray, gate, qubits) -> None:
        """Multiply a diagonal gate's phases onto basis-state slices."""
        n = self.num_qubits
        tensor = state.reshape((2,) * n)
        if gate.name in ("cz", "ccz", "mcz"):
            # Single -1 phase on the all-ones subspace of ``qubits``.
            index = [slice(None)] * n
            for q in qubits:
                index[n - 1 - q] = 1
            tensor[tuple(index)] *= -1.0
            return
        diag = np.diagonal(gate.matrix())
        k = len(qubits)
        for b in range(1 << k):
            phase = diag[b]
            if phase == 1.0:
                continue
            index = [slice(None)] * n
            for j, q in enumerate(qubits):
                # Gate-local big-endian: qubits[0] is the MSB of ``b``.
                index[n - 1 - q] = (b >> (k - 1 - j)) & 1
            tensor[tuple(index)] *= phase

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def probabilities(self, state: np.ndarray) -> np.ndarray:
        probs = np.abs(state) ** 2
        total = probs.sum()
        if total <= 0:
            raise SimulationError("state has zero norm; cannot sample")
        return probs / total

    def sample(
        self, state: np.ndarray, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``shots`` basis indices from ``|state|^2``."""
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        if shots == 0:
            return np.empty(0, dtype=np.int64)
        probs = self.probabilities(state)
        return rng.choice(self.dim, size=shots, p=probs).astype(np.int64)


class NaiveStatevectorEngine:
    """Reference engine: full ``2^n x 2^n`` operator per gate, then matmul.

    Quadratically more memory traffic per gate than the vectorized
    engine; exists as the differential-testing oracle and the benchmark
    baseline (``benchmarks/test_sim_throughput.py`` pins the >= 5x gap).
    """

    name = "naive"

    def __init__(self, num_qubits: int):
        from ..linalg import MAX_UNITARY_QUBITS

        if num_qubits > MAX_UNITARY_QUBITS:
            raise SimulationError(
                f"the naive engine builds dense operators; {num_qubits} "
                f"qubits exceeds the {MAX_UNITARY_QUBITS}-qubit limit"
            )
        self.num_qubits = num_qubits
        self.dim = 1 << num_qubits

    def run(self, circuit, initial_state: np.ndarray | None = None) -> np.ndarray:
        instructions = _instruction_list(circuit)
        if initial_state is None:
            state = np.zeros(self.dim, dtype=complex)
            state[0] = 1.0
        else:
            state = np.array(initial_state, dtype=complex)
        for inst in instructions:
            if not inst.gate.is_unitary:
                continue
            operator = expand_gate(inst.gate.matrix(), inst.qubits, self.num_qubits)
            state = operator @ state
        return state


def bitstring(basis: int, num_qubits: int) -> str:
    """Little-endian bitstring of a basis index (qubit 0 leftmost).

    Matches :func:`repro.circuits.measurement_distribution` keys.
    """
    return "".join(
        "1" if (basis >> q) & 1 else "0" for q in range(num_qubits)
    )
