"""The execution orchestrator: compile artifact -> sampled outcomes.

:func:`simulate_result` closes the compile->run->score loop: it lowers a
:class:`~repro.targets.result.CompilationResult` into a
:class:`~repro.sim.schedule.Schedule`, samples error trajectories from
the device-derived noise model, executes them on the statevector
engine, and scores the sampled bitstrings against the workload.

Trajectory strategy
-------------------
Every shot independently samples its error events (so the EPS estimate
is an exact Monte-Carlo estimator of the analytic model, regardless of
anything below).  For *outcomes*:

* shots with no quantum error sample from the ideal distribution
  (one statevector run for all of them);
* the most frequent error signatures — up to ``max_trajectories`` of
  them — are replayed *exactly*: the sampled Paulis are inserted into
  the gate stream and the corrupted state is simulated, sharing the
  common prefix across trajectories so the base circuit is walked only
  once;
* the long tail of rare multi-error signatures falls back to a
  measurement-frame depolarizing approximation: the shot samples an
  ideal outcome and the error-touched qubits' bits are replaced by fair
  coin flips.  On small programs (every test below ~10 qubits) the cap
  is never reached and all trajectories are exact.

Readout errors are classical bit flips applied to every shot exactly.
All randomness flows from one ``numpy.random.Generator``, in a fixed
draw order, so a given seed is bit-identical across runs and machines.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import SimulationError
from ..perf import Profiler
from ..rng import as_generator
from ..telemetry.metrics import get_metrics
from ..telemetry.trace import span as _span
from .engine import StatevectorEngine, bitstring
from .noise import KIND_PAULI, KIND_READOUT, resolve_noise
from .result import ExecutionResult, wilson_interval
from .schedule import Schedule, schedule_from_circuit, schedule_from_program
from .score import score_samples

#: Default shot count for every simulation entry point.
DEFAULT_SHOTS = 1024

#: Default cap on exactly-replayed error trajectories per run.
DEFAULT_MAX_TRAJECTORIES = 8

#: Keys accepted in a ``simulate=`` options dict.
_OPTION_KEYS = ("shots", "noise", "seed", "max_trajectories")


def canonical_sim_options(simulate) -> dict | None:
    """Normalize a ``simulate=`` argument into a canonical options dict.

    ``None``/``False`` disable simulation; ``True`` selects the
    defaults; a dict may set ``shots``, ``noise``, ``seed`` and
    ``max_trajectories``.  The canonical form is JSON-stable (it keys
    session caches and service artifacts), so ``seed`` must be an
    integer here, not a Generator.
    """
    if simulate is None or simulate is False:
        return None
    options = {
        "shots": DEFAULT_SHOTS,
        "noise": 1.0,
        "seed": 0,
        "max_trajectories": DEFAULT_MAX_TRAJECTORIES,
    }
    if simulate is True:
        return options
    if not isinstance(simulate, dict):
        raise SimulationError(
            f"simulate must be a bool or an options dict, got "
            f"{type(simulate).__name__}"
        )
    unknown = set(simulate) - set(_OPTION_KEYS)
    if unknown:
        raise SimulationError(
            f"unknown simulate option(s): {', '.join(sorted(unknown))} "
            f"(expected {', '.join(_OPTION_KEYS)})"
        )
    options.update(simulate)
    if not isinstance(options["shots"], int) or options["shots"] < 1:
        raise SimulationError(
            f"simulate shots must be a positive integer, got {options['shots']!r}"
        )
    seed = options["seed"]
    if seed is not None and not isinstance(seed, int):
        raise SimulationError(
            "simulate seed must be an integer (a Generator cannot key a "
            "cache); pass it to simulate_result directly instead"
        )
    noise = options["noise"]
    if noise is not None and not isinstance(noise, (int, float)):
        raise SimulationError(
            f"simulate noise must be a number or None, got {noise!r}"
        )
    return options


# ----------------------------------------------------------------------
# Schedule resolution
# ----------------------------------------------------------------------
def schedule_for_result(result) -> Schedule:
    """Lower a compilation result into its executable schedule.

    wQasm-producing targets replay the compiled pulse program on the
    device profile recorded in the result's provenance; gate-level
    targets execute their native circuit (with the superconducting
    backend's calibration when the result carries a superconducting
    profile).
    """
    profile = _device_profile(result)
    if result.program is not None:
        hardware = profile.hardware if profile is not None else None
        return schedule_from_program(result.program, hardware)
    if result.native_circuit is not None:
        backend = None
        if profile is not None and profile.kind == "superconducting":
            backend = profile.backend
        elif result.target == "superconducting":
            from ..superconducting.backend import washington_backend

            backend = washington_backend()
        return schedule_from_circuit(
            result.native_circuit, backend, name=result.workload
        )
    raise SimulationError(
        f"target {result.target!r} produced no executable artifact "
        "(neither a wQasm program nor a circuit); only program- or "
        "circuit-emitting targets can be simulated"
    )


def _device_profile(result):
    if getattr(result, "device_profile", None) is None:
        return None
    from ..devices.profile import DeviceProfile

    return DeviceProfile.from_dict(result.device_profile)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def simulate_result(
    result,
    shots: int = DEFAULT_SHOTS,
    noise=1.0,
    seed: int | np.random.Generator | None = 0,
    formula=None,
    max_trajectories: int = DEFAULT_MAX_TRAJECTORIES,
    profiler: Profiler | None = None,
) -> ExecutionResult:
    """Execute a compiled result and score the outcomes.

    ``noise`` is a scale factor over the device model (``0``/``None``
    for noiseless, ``1.0`` for the profile's physics) or a prebuilt
    :class:`~repro.sim.noise.NoiseModel`.  ``formula`` enables the
    MAX-SAT quality metrics (energy, approximation ratio); pass the
    workload's CNF formula when you have it.
    """
    schedule = schedule_for_result(result)
    return run_schedule(
        schedule,
        shots=shots,
        noise=noise,
        seed=seed,
        formula=formula,
        max_trajectories=max_trajectories,
        profiler=profiler,
        target=result.target,
        device=result.device,
    )


def simulate_program(
    program,
    hardware=None,
    **options,
) -> ExecutionResult:
    """Execute a wQasm program directly (no compilation result needed)."""
    return run_schedule(schedule_from_program(program, hardware), **options)


def simulate_circuit(circuit, backend=None, **options) -> ExecutionResult:
    """Execute a gate-level circuit directly."""
    return run_schedule(schedule_from_circuit(circuit, backend), **options)


def attach_simulation(result, workload=None, options=None) -> ExecutionResult:
    """Simulate ``result`` and record the execution on the result itself.

    The execution payload lands in ``result.execution`` (JSON-safe, so
    it rides through every result serializer, cache and artifact
    store).  Returns the live :class:`ExecutionResult`.
    """
    canonical = canonical_sim_options(True if options is None else options)
    if canonical is None:
        raise SimulationError("attach_simulation called with simulation disabled")
    formula = getattr(workload, "formula", None) if workload is not None else None
    execution = simulate_result(
        result,
        shots=canonical["shots"],
        noise=canonical["noise"],
        seed=canonical["seed"],
        formula=formula,
        max_trajectories=canonical["max_trajectories"],
    )
    result.execution = execution.to_dict()
    return execution


# ----------------------------------------------------------------------
# The run loop
# ----------------------------------------------------------------------
def run_schedule(
    schedule: Schedule,
    shots: int = DEFAULT_SHOTS,
    noise=1.0,
    seed: int | np.random.Generator | None = 0,
    formula=None,
    max_trajectories: int = DEFAULT_MAX_TRAJECTORIES,
    profiler: Profiler | None = None,
    target: str | None = None,
    device: str | None = None,
) -> ExecutionResult:
    """Sample ``shots`` executions of ``schedule`` under ``noise``."""
    if shots < 1:
        raise SimulationError(f"shots must be positive, got {shots}")
    if max_trajectories < 0:
        raise SimulationError("max_trajectories must be non-negative")
    # The span (phases nest via the profiler's pass hook) and the global
    # shots/sec metric observe wall time, which must never reach the
    # execution payload itself — see _deterministic_profile.
    wall_started = time.perf_counter()
    with _span(
        "sim.run", workload=schedule.name,
        shots=shots, qubits=schedule.num_qubits,
    ):
        execution = _run_schedule(
            schedule, shots, noise, seed, formula, max_trajectories,
            profiler, target, device,
        )
    elapsed = time.perf_counter() - wall_started
    metrics = get_metrics()
    metrics.inc("sim.shots", shots)
    if elapsed > 0:
        metrics.observe("sim.shots_per_second", shots / elapsed)
    return execution


def _run_schedule(
    schedule: Schedule,
    shots: int,
    noise,
    seed,
    formula,
    max_trajectories: int,
    profiler: Profiler | None,
    target: str | None,
    device: str | None,
) -> ExecutionResult:
    rng = as_generator(seed)
    profiler = profiler if profiler is not None else Profiler()
    model = resolve_noise(noise, schedule.events)
    engine = StatevectorEngine(schedule.num_qubits, profiler)
    instructions = schedule.instructions
    n = schedule.num_qubits
    started = time.perf_counter()

    # --- 1. sample error events per shot (exact Monte Carlo) ----------
    events = model.events if model is not None else ()
    if events:
        probabilities = model.probabilities()
        fired = rng.random((shots, len(events))) < probabilities[None, :]
        error_free = int((~fired.any(axis=1)).sum())
        profiler.add("sim.events_fired", 0.0, count=int(fired.sum()))
    else:
        fired = None
        error_free = shots

    # --- 2. realize Pauli trajectories deterministically --------------
    pauli_columns = [j for j, e in enumerate(events) if e.kind == KIND_PAULI]
    readout_columns = [
        (j, e) for j, e in enumerate(events) if e.kind == KIND_READOUT
    ]
    trajectories: dict[int, list] = {}
    if fired is not None and pauli_columns:
        sub = fired[:, pauli_columns]
        for shot, column in np.argwhere(sub):  # row-major: fixed draw order
            event = events[pauli_columns[column]]
            qubit = int(event.qubits[int(rng.integers(len(event.qubits)))])
            pauli = event.paulis[int(rng.integers(len(event.paulis)))]
            position = (
                event.position
                if event.position is not None
                else int(rng.integers(len(instructions) + 1))
            )
            trajectories.setdefault(int(shot), []).append((position, qubit, pauli))

    buckets: dict[tuple, list[int]] = {}
    clean_shots: list[int] = []
    for shot in range(shots):
        errors = trajectories.get(shot)
        if errors:
            buckets.setdefault(tuple(sorted(errors)), []).append(shot)
        else:
            clean_shots.append(shot)

    # --- 3. ideal run --------------------------------------------------
    t_ideal = time.perf_counter()
    ideal_state = engine.run(instructions)
    profiler.add_pass("sim.ideal", time.perf_counter() - t_ideal)
    ideal_probs = engine.probabilities(ideal_state)

    basis = np.empty(shots, dtype=np.int64)
    if clean_shots:
        basis[clean_shots] = rng.choice(
            engine.dim, size=len(clean_shots), p=ideal_probs
        )

    # --- 4. exact trajectories (largest buckets, shared prefix) -------
    ranked = sorted(buckets.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    exact = sorted(
        ranked[:max_trajectories], key=lambda kv: (kv[0][0][0], kv[0])
    )
    approximate = ranked[max_trajectories:]
    t_exact = time.perf_counter()
    prefix_state = engine.initial_state()
    prefix_position = 0
    for signature, bucket in exact:
        first_position = signature[0][0]
        if first_position > prefix_position:
            prefix_state = engine.apply_segment(
                prefix_state, instructions, prefix_position, first_position
            )
            prefix_position = first_position
        branch = engine.apply_segment(
            prefix_state.copy(),
            instructions,
            prefix_position,
            len(instructions),
            inserts=signature,
        )
        basis[bucket] = rng.choice(
            engine.dim, size=len(bucket), p=engine.probabilities(branch)
        )
    if exact:
        profiler.add(
            "sim.trajectory", time.perf_counter() - t_exact, count=len(exact)
        )

    # --- 5. approximate tail: depolarize touched qubits ----------------
    approx_shots = [shot for _, bucket in approximate for shot in bucket]
    if approx_shots:
        approx_shots.sort()
        basis[approx_shots] = rng.choice(
            engine.dim, size=len(approx_shots), p=ideal_probs
        )
        for shot in approx_shots:
            value = int(basis[shot])
            for _, qubit, _ in trajectories[shot]:
                current = (value >> qubit) & 1
                value ^= (current ^ int(rng.integers(2))) << qubit
            basis[shot] = value
        profiler.add("sim.approx_shots", 0.0, count=len(approx_shots))

    # --- 6. readout flips (exact, classical) ---------------------------
    for column, event in readout_columns:
        flips = fired[:, column]
        if flips.any():
            basis[flips] ^= 1 << event.qubits[0]

    # --- 7. aggregate ---------------------------------------------------
    values, value_counts = np.unique(basis, return_counts=True)
    ordered = sorted(
        zip(values.tolist(), value_counts.tolist()),
        key=lambda pair: (-pair[1], pair[0]),
    )
    counts = {bitstring(v, n): int(c) for v, c in ordered}

    eps_sampled = error_free / shots
    eps_ci = wilson_interval(error_free, shots)
    eps_analytic = model.analytic_eps() if model is not None else 1.0

    quality: dict = {}
    if formula is not None:
        if formula.num_vars != n:
            raise SimulationError(
                f"formula has {formula.num_vars} variables but the program "
                f"has {n} qubits; cannot score"
            )
        quality = score_samples(formula, basis)

    profiler.add_pass("sim.total", time.perf_counter() - started)
    stats = {
        "events": len(events),
        "events_fired": int(fired.sum()) if fired is not None else 0,
        "unique_trajectories": len(buckets),
        "exact_trajectories": len(exact),
        "approx_shots": len(approx_shots) if approx_shots else 0,
        "noise": model.describe() if model is not None else None,
    }
    return ExecutionResult(
        workload=schedule.name,
        shots=shots,
        counts=counts,
        target=target,
        device=device,
        seed=seed if isinstance(seed, int) else None,
        noise_scale=model.scale if model is not None else None,
        engine=engine.name,
        num_qubits=n,
        error_free_shots=error_free,
        eps_sampled=eps_sampled,
        eps_ci=eps_ci,
        eps_analytic=eps_analytic,
        duration_us=schedule.duration_us,
        stats=stats,
        profile=_deterministic_profile(profiler.profile()),
        **quality,
    )


def _deterministic_profile(profile: dict) -> dict:
    """The seed-reproducible view of a run's ``sim.*`` profile.

    Execution payloads promise bit-identical JSON for identical seeds
    (they are content-addressed by the service's artifact store), so
    wall-clock timings must not ride along: keep every counter, drop
    every ``seconds`` field and the pure-timing pass entries.
    """
    return {
        "schema": profile.get("schema"),
        "primitives": {
            name: {"count": entry["count"]}
            for name, entry in (profile.get("primitives") or {}).items()
        },
        "caches": profile.get("caches") or {},
    }
