"""repro.sim: the noise-aware execution simulator (compile -> run -> score).

The missing half of the reproduction loop: everything else in the
framework *estimates* (analytic EPS, duration models, cost tables);
this package *executes*.  A compiled artifact — the wQasm pulse program
for FPQA targets, the native circuit for gate-level ones — is replayed
shot by shot under a Monte-Carlo noise model derived from the active
device profile, and the sampled outcomes are scored as MAX-SAT
solutions (counts, sampled EPS with confidence interval, QAOA energy
and approximation ratio).

Entry points, highest level first::

    result = repro.compile(formula, device="rubidium-baseline",
                           simulate={"shots": 2000, "seed": 7})
    result.execution["eps_sampled"]

    execution = result.simulate(shots=2000, seed=7, formula=formula)

    from repro.sim import simulate_program
    execution = simulate_program(program, hardware)

plus the ``weaver simulate`` CLI command and the ``sim`` job kind of
:mod:`repro.service`.
"""

from .engine import NaiveStatevectorEngine, StatevectorEngine, bitstring
from .executor import (
    DEFAULT_MAX_TRAJECTORIES,
    DEFAULT_SHOTS,
    attach_simulation,
    canonical_sim_options,
    run_schedule,
    schedule_for_result,
    simulate_circuit,
    simulate_program,
    simulate_result,
)
from .noise import NoiseEvent, NoiseModel, resolve_noise
from .result import EXECUTION_SCHEMA_VERSION, ExecutionResult, wilson_interval
from .schedule import Schedule, schedule_from_circuit, schedule_from_program
from .score import score_samples

__all__ = [
    "DEFAULT_MAX_TRAJECTORIES",
    "DEFAULT_SHOTS",
    "EXECUTION_SCHEMA_VERSION",
    "ExecutionResult",
    "NaiveStatevectorEngine",
    "NoiseEvent",
    "NoiseModel",
    "Schedule",
    "StatevectorEngine",
    "attach_simulation",
    "bitstring",
    "canonical_sim_options",
    "resolve_noise",
    "run_schedule",
    "schedule_for_result",
    "schedule_from_circuit",
    "schedule_from_program",
    "score_samples",
    "simulate_circuit",
    "simulate_program",
    "simulate_result",
    "wilson_interval",
]
