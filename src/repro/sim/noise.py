"""Monte-Carlo noise: stochastic error events derived from device physics.

The analytic EPS model (:mod:`repro.metrics.fidelity`, paper §8.4)
accumulates one multiplicative fidelity term per pulse-level operation.
The simulator turns each of those terms into a *samplable event*: a
Bernoulli trial with ``p = 1 - fidelity`` that, when it fires, applies a
Pauli error to the state (or flips a readout bit).  By construction the
probability that *no* event fires in a shot equals the analytic EPS —
the cross-validation the evaluation harness pins on the uf20 corpus —
so the device cost tables of :mod:`repro.devices` become executable
physics rather than scores.

A :class:`NoiseModel` also carries a global ``scale`` knob applied in
log-fidelity space (``p(s) = 1 - (1 - p)**s``), so ``scale=0`` is
noiseless, ``scale=1`` is the device model, and EPS is strictly
monotone decreasing in the scale — the property the statistical
regression test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError

#: Error channel kinds the sampler understands.
KIND_PAULI = "pauli"  #: insert a sampled Pauli into the gate stream
KIND_READOUT = "readout"  #: flip the sampled classical bit


@dataclass(frozen=True)
class NoiseEvent:
    """One independently-sampled error channel.

    ``qubits`` lists the candidate qubits the error may land on (one is
    drawn uniformly when the event fires); ``position`` is the gate-list
    insertion point, or ``None`` to draw a uniformly random position
    (idle decoherence has no natural location).  ``paulis`` restricts the
    sampled error operator (pure dephasing draws only ``z``).
    """

    probability: float
    kind: str = KIND_PAULI
    qubits: tuple[int, ...] = ()
    position: int | None = None
    paulis: tuple[str, ...] = ("x", "y", "z")
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise SimulationError(
                f"event probability must be in [0, 1), got {self.probability}"
            )
        if self.kind not in (KIND_PAULI, KIND_READOUT):
            raise SimulationError(f"unknown noise event kind {self.kind!r}")
        if not self.qubits:
            raise SimulationError("a noise event needs at least one qubit")


@dataclass(frozen=True)
class NoiseModel:
    """A set of independent error events plus a global scale factor."""

    events: tuple[NoiseEvent, ...] = ()
    scale: float = 1.0
    _probabilities: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise SimulationError(
                f"noise scale must be non-negative, got {self.scale}"
            )
        object.__setattr__(self, "events", tuple(self.events))

    def scaled(self, scale: float) -> "NoiseModel":
        """The same events at a different global scale."""
        return NoiseModel(self.events, scale=scale)

    def probabilities(self) -> np.ndarray:
        """Per-event firing probability at the current scale.

        Scaling happens in log-fidelity space, ``p(s) = 1-(1-p)**s``,
        so the no-event probability is ``EPS**s`` exactly.
        """
        cached = self._probabilities
        if cached is not None:
            return cached
        base = np.array([e.probability for e in self.events], dtype=float)
        if self.scale != 1.0 and base.size:
            base = -np.expm1(self.scale * np.log1p(-base))
        object.__setattr__(self, "_probabilities", base)
        return base

    def analytic_eps(self) -> float:
        """Probability that no event fires: the model's exact EPS."""
        probs = self.probabilities()
        if not probs.size:
            return 1.0
        return float(np.exp(np.log1p(-probs).sum()))

    def describe(self) -> dict:
        """JSON summary: event counts and total error budget per label."""
        by_label: dict[str, dict] = {}
        probs = self.probabilities()
        for event, p in zip(self.events, probs):
            entry = by_label.setdefault(
                event.label or event.kind, {"events": 0, "log_fidelity": 0.0}
            )
            entry["events"] += 1
            entry["log_fidelity"] += float(np.log1p(-p))
        return {
            "scale": self.scale,
            "events": len(self.events),
            "analytic_eps": self.analytic_eps(),
            "channels": by_label,
        }


def resolve_noise(noise, events: tuple[NoiseEvent, ...]) -> NoiseModel | None:
    """Normalize a user-facing ``noise`` argument.

    ``None``/``False``/``0`` mean noiseless; a positive number is a
    scale factor over ``events`` (the schedule's device-derived model);
    a :class:`NoiseModel` passes through as-is.
    """
    if noise is None or noise is False:
        return None
    if isinstance(noise, NoiseModel):
        return None if noise.scale == 0 else noise
    if isinstance(noise, (int, float)) and not isinstance(noise, bool):
        if noise < 0:
            raise SimulationError(f"noise scale must be >= 0, got {noise}")
        if noise == 0:
            return None
        return NoiseModel(events, scale=float(noise))
    if noise is True:
        return NoiseModel(events, scale=1.0)
    raise SimulationError(
        f"noise must be None, a scale factor, or a NoiseModel; "
        f"got {type(noise).__name__}"
    )
