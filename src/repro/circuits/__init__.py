"""Quantum circuit intermediate representation and simulation substrate.

This package replaces the subset of Qiskit the Weaver paper relies on: a
gate library with exact matrices, a mutable circuit IR, a dependency DAG,
and dense unitary / statevector simulators used by the wChecker.
"""

from .gates import (
    Gate,
    GATE_ALIASES,
    STANDARD_GATE_NAMES,
    controlled_z_matrix,
    gate_matrix,
    make_gate,
)
from .circuit import Instruction, QuantumCircuit
from .dag import CircuitDag, dependency_layers
from .unitary import (
    circuit_unitary,
    circuit_statevector,
    circuits_equivalent,
    measurement_distribution,
)

__all__ = [
    "Gate",
    "GATE_ALIASES",
    "STANDARD_GATE_NAMES",
    "Instruction",
    "QuantumCircuit",
    "CircuitDag",
    "dependency_layers",
    "circuit_unitary",
    "circuit_statevector",
    "circuits_equivalent",
    "controlled_z_matrix",
    "gate_matrix",
    "make_gate",
    "measurement_distribution",
]
