"""Seeded random circuit generation for tests and fuzzing."""

from __future__ import annotations

import numpy as np

from ..exceptions import CircuitError
from ..rng import as_generator
from .circuit import QuantumCircuit

#: Gate menu with (name, arity, param count).
_MENU = [
    ("h", 1, 0),
    ("x", 1, 0),
    ("s", 1, 0),
    ("t", 1, 0),
    ("sx", 1, 0),
    ("rx", 1, 1),
    ("ry", 1, 1),
    ("rz", 1, 1),
    ("u3", 1, 3),
    ("cx", 2, 0),
    ("cz", 2, 0),
    ("swap", 2, 0),
    ("rzz", 2, 1),
    ("cp", 2, 1),
    ("ccx", 3, 0),
    ("ccz", 3, 0),
]


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int | np.random.Generator = 0,
    max_arity: int = 3,
    measure: bool = False,
) -> QuantumCircuit:
    """A uniformly random circuit over the standard gate menu.

    Deterministic for a given seed; used by property tests that check
    compiler passes preserve unitaries on arbitrary inputs.
    """
    if num_qubits < 1:
        raise CircuitError("random circuit needs at least one qubit")
    rng = as_generator(seed)
    label = "gen" if isinstance(seed, np.random.Generator) else seed
    circuit = QuantumCircuit(num_qubits, name=f"random-{label}")
    menu = [m for m in _MENU if m[1] <= min(max_arity, num_qubits)]
    for _ in range(num_gates):
        name, arity, n_params = menu[rng.integers(0, len(menu))]
        qubits = rng.choice(num_qubits, size=arity, replace=False)
        params = tuple(float(a) for a in rng.uniform(-np.pi, np.pi, size=n_params))
        circuit.append(name, [int(q) for q in qubits], params=params)
    if measure:
        circuit.measure_all()
    return circuit


def random_diagonal_circuit(
    num_qubits: int, num_gates: int, seed: int | np.random.Generator = 0
) -> QuantumCircuit:
    """Random circuit of commuting diagonal gates (QAOA-cost-like)."""
    rng = as_generator(seed)
    label = "gen" if isinstance(seed, np.random.Generator) else seed
    circuit = QuantumCircuit(num_qubits, name=f"random-diagonal-{label}")
    for _ in range(num_gates):
        kind = rng.integers(0, 3)
        if kind == 0:
            circuit.rz(float(rng.uniform(-np.pi, np.pi)), int(rng.integers(num_qubits)))
        elif kind == 1 and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.rzz(float(rng.uniform(-np.pi, np.pi)), int(a), int(b))
        elif num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cz(int(a), int(b))
    return circuit
