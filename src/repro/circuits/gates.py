"""Gate library: names, parameters, exact matrices, inverses.

Matrices follow the convention documented in :mod:`repro.linalg`: for a gate
applied to qubits ``(q0, q1, ...)``, ``q0`` is the most significant bit of
the matrix index, so ``CX`` (control listed first) maps ``|c t>`` to
``|c, t xor c>``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import CircuitError

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Standard OpenQASM ``U(theta, phi, lambda)`` matrix."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array(
        [
            [cos, -np.exp(1j * lam) * sin],
            [np.exp(1j * phi) * sin, np.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def _raman_matrix(x: float, y: float, z: float) -> np.ndarray:
    """FPQA Raman rotation ``Rz(z) @ Ry(y) @ Rx(x)`` (paper Table 1)."""
    return _rz_matrix(z) @ _ry_matrix(y) @ _rx_matrix(x)


def _rx_matrix(theta: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def _ry_matrix(theta: float) -> np.ndarray:
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def _rz_matrix(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-0.5j * theta), 0.0], [0.0, np.exp(0.5j * theta)]], dtype=complex
    )


def _p_matrix(lam: float) -> np.ndarray:
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * lam)]], dtype=complex)


def _rzz_matrix(theta: float) -> np.ndarray:
    phase = np.exp(0.5j * theta)
    return np.diag([phase.conjugate(), phase, phase, phase.conjugate()]).astype(complex)


def _cp_matrix(lam: float) -> np.ndarray:
    return np.diag([1.0, 1.0, 1.0, np.exp(1j * lam)]).astype(complex)


def controlled_z_matrix(num_qubits: int) -> np.ndarray:
    """Matrix of the ``C^{n-1}Z`` gate: ``-1`` phase on the all-ones state.

    For ``num_qubits == 1`` this degenerates to plain ``Z``; for 2 it is
    ``CZ``; for 3 it is ``CCZ`` — the gate an FPQA Rydberg pulse natively
    applies to a cluster of interacting atoms (paper §2.3, §4.1).
    """
    if num_qubits < 1:
        raise CircuitError("controlled-Z needs at least one qubit")
    diag = np.ones(2**num_qubits, dtype=complex)
    diag[-1] = -1.0
    return np.diag(diag)


_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_Y = np.array([[0.0, -1j], [1j, 0.0]], dtype=complex)
_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
_H = np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex)
_S = np.diag([1.0, 1j]).astype(complex)
_SDG = np.diag([1.0, -1j]).astype(complex)
_T = np.diag([1.0, np.exp(0.25j * math.pi)]).astype(complex)
_TDG = np.diag([1.0, np.exp(-0.25j * math.pi)]).astype(complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = _SX.conj().T
_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_CCX = np.eye(8, dtype=complex)
_CCX[6, 6] = _CCX[7, 7] = 0.0
_CCX[6, 7] = _CCX[7, 6] = 1.0

# name -> (num_qubits, num_params, matrix builder)
_FIXED = {
    "id": (1, 0, lambda: np.eye(2, dtype=complex)),
    "x": (1, 0, lambda: _X),
    "y": (1, 0, lambda: _Y),
    "z": (1, 0, lambda: _Z),
    "h": (1, 0, lambda: _H),
    "s": (1, 0, lambda: _S),
    "sdg": (1, 0, lambda: _SDG),
    "t": (1, 0, lambda: _T),
    "tdg": (1, 0, lambda: _TDG),
    "sx": (1, 0, lambda: _SX),
    "sxdg": (1, 0, lambda: _SXDG),
    "cx": (2, 0, lambda: _CX),
    "cz": (2, 0, lambda: controlled_z_matrix(2)),
    "swap": (2, 0, lambda: _SWAP),
    "ccx": (3, 0, lambda: _CCX),
    "ccz": (3, 0, lambda: controlled_z_matrix(3)),
}

_PARAMETRIC = {
    "rx": (1, 1, _rx_matrix),
    "ry": (1, 1, _ry_matrix),
    "rz": (1, 1, _rz_matrix),
    "p": (1, 1, _p_matrix),
    "u3": (1, 3, _u3_matrix),
    "raman": (1, 3, _raman_matrix),
    "rzz": (2, 1, _rzz_matrix),
    "cp": (2, 1, _cp_matrix),
}

#: Names of every gate with a fixed arity known to the library (excludes
#: the variable-arity ``mcz`` and the non-unitary ``measure``/``barrier``).
STANDARD_GATE_NAMES = tuple(sorted(set(_FIXED) | set(_PARAMETRIC)))

#: OpenQASM spellings accepted by the parser for library gates.
GATE_ALIASES = {
    "u": "u3",
    "phase": "p",
    "cnot": "cx",
    "toffoli": "ccx",
    "i": "id",
}

_SELF_INVERSE = {"id", "x", "y", "z", "h", "cx", "cz", "swap", "ccx", "ccz", "mcz"}
_INVERSE_PAIRS = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx"}


@dataclass(frozen=True)
class Gate:
    """An abstract gate: a name, an arity, and numeric parameters.

    Instances are immutable and hashable so they can key caches and appear
    in sets; the matrix is computed on demand.
    """

    name: str
    num_qubits: int
    params: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name in _FIXED:
            arity, nparams, _ = _FIXED[self.name]
        elif self.name in _PARAMETRIC:
            arity, nparams, _ = _PARAMETRIC[self.name]
        elif self.name == "mcz":
            arity, nparams = self.num_qubits, 0
            if self.num_qubits < 1:
                raise CircuitError("mcz needs at least one qubit")
        elif self.name in ("measure", "barrier", "reset"):
            return  # non-unitary markers: any arity, no params
        else:
            raise CircuitError(f"unknown gate {self.name!r}")
        if self.num_qubits != arity:
            raise CircuitError(
                f"gate {self.name!r} acts on {arity} qubit(s), got {self.num_qubits}"
            )
        if len(self.params) != nparams:
            raise CircuitError(
                f"gate {self.name!r} takes {nparams} parameter(s), got {len(self.params)}"
            )

    @property
    def is_unitary(self) -> bool:
        """Whether this gate has a matrix (False for measure/barrier/reset)."""
        return self.name not in ("measure", "barrier", "reset")

    def matrix(self) -> np.ndarray:
        """The exact unitary matrix of this gate."""
        if self.name in _FIXED:
            return _FIXED[self.name][2]().copy()
        if self.name in _PARAMETRIC:
            return _PARAMETRIC[self.name][2](*self.params)
        if self.name == "mcz":
            return controlled_z_matrix(self.num_qubits)
        raise CircuitError(f"gate {self.name!r} has no matrix")

    def inverse(self) -> "Gate":
        """The gate implementing the inverse unitary."""
        if self.name in _SELF_INVERSE:
            return self
        if self.name in _INVERSE_PAIRS:
            return Gate(_INVERSE_PAIRS[self.name], self.num_qubits)
        if self.name in ("rx", "ry", "rz", "p", "rzz", "cp"):
            return Gate(self.name, self.num_qubits, (-self.params[0],))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", 1, (-theta, -lam, -phi))
        if self.name == "raman":
            x, y, z = self.params
            # (Rz Ry Rx)^-1 = Rx(-x) Ry(-y) Rz(-z); no single raman gate
            # expresses that in general, so fall back to u3 via the matrix.
            inv = np.asarray(self.matrix()).conj().T
            return _u3_from_matrix(inv)
        raise CircuitError(f"gate {self.name!r} has no inverse")

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args})"
        return self.name


def _u3_from_matrix(matrix: np.ndarray) -> Gate:
    """Recover a ``u3`` gate equal to ``matrix`` up to global phase."""
    # Normalize so the (0, 0) entry is real non-negative.
    mat = np.asarray(matrix, dtype=complex)
    if abs(mat[0, 0]) > 1e-12:
        mat = mat * (abs(mat[0, 0]) / mat[0, 0])
    else:
        mat = mat * (abs(mat[1, 0]) / mat[1, 0])
    theta = 2.0 * math.atan2(abs(mat[1, 0]), abs(mat[0, 0]))
    if abs(mat[1, 0]) < 1e-12:
        phi = 0.0
        lam = float(np.angle(mat[1, 1]))
    elif abs(mat[0, 0]) < 1e-12:
        phi = float(np.angle(mat[1, 0]))
        lam = float(np.angle(-mat[0, 1])) - phi
    else:
        phi = float(np.angle(mat[1, 0]))
        lam = float(np.angle(-mat[0, 1]))
    return Gate("u3", 1, (theta, phi, lam))


def u3_from_matrix(matrix: np.ndarray) -> Gate:
    """Public wrapper: single-qubit ``u3`` equivalent (up to global phase)."""
    return _u3_from_matrix(matrix)


def make_gate(name: str, params: tuple[float, ...] = (), num_qubits: int | None = None) -> Gate:
    """Construct a gate by (possibly aliased) name.

    ``num_qubits`` is only needed for variable-arity gates (``mcz``); fixed
    gates infer it from the registry.
    """
    name = GATE_ALIASES.get(name, name)
    if name in _FIXED:
        return Gate(name, _FIXED[name][0], tuple(params))
    if name in _PARAMETRIC:
        return Gate(name, _PARAMETRIC[name][0], tuple(params))
    if name == "mcz":
        if num_qubits is None:
            raise CircuitError("mcz requires an explicit qubit count")
        return Gate("mcz", num_qubits)
    raise CircuitError(f"unknown gate {name!r}")


def gate_matrix(name: str, params: tuple[float, ...] = (), num_qubits: int | None = None) -> np.ndarray:
    """Matrix of a gate by name; see :func:`make_gate`."""
    return make_gate(name, params, num_qubits).matrix()
