"""Mutable quantum-circuit IR used throughout the compiler.

The IR is deliberately minimal: a flat, ordered list of instructions over
integer qubit indices.  Structured control flow is out of scope (the paper's
QAOA workloads are straight-line circuits).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..exceptions import CircuitError
from .gates import Gate, make_gate


@dataclass(frozen=True)
class Instruction:
    """One gate application: an abstract gate bound to concrete qubits."""

    gate: Gate
    qubits: tuple[int, ...]
    clbits: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in {self.qubits}")
        if self.gate.name not in ("measure", "barrier", "reset"):
            if len(self.qubits) != self.gate.num_qubits:
                raise CircuitError(
                    f"gate {self.gate.name!r} expects {self.gate.num_qubits} "
                    f"qubits, got {len(self.qubits)}"
                )

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def params(self) -> tuple[float, ...]:
        return self.gate.params

    def remap(self, mapping: Sequence[int] | dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices sent through ``mapping``."""
        if isinstance(mapping, dict):
            qubits = tuple(mapping[q] for q in self.qubits)
        else:
            qubits = tuple(mapping[q] for q in self.qubits)
        return Instruction(self.gate, qubits, self.clbits)

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        qs = ", ".join(f"q[{q}]" for q in self.qubits)
        return f"{self.gate} {qs}"


class QuantumCircuit:
    """An ordered sequence of instructions over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit"):
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("qubit/clbit counts must be non-negative")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self.instructions: list[Instruction] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(
        self,
        gate: Gate | str,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
        params: Sequence[float] = (),
    ) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits``; returns ``self`` for chaining."""
        if isinstance(gate, str):
            gate = make_gate(gate, tuple(params), num_qubits=len(qubits))
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(
                    f"clbit {c} out of range for {self.num_clbits}-clbit circuit"
                )
        self.instructions.append(Instruction(gate, tuple(qubits), tuple(clbits)))
        return self

    # Convenience constructors for the common gate set -----------------
    def id(self, q: int) -> "QuantumCircuit":
        return self.append("id", (q,))

    def x(self, q: int) -> "QuantumCircuit":
        return self.append("x", (q,))

    def y(self, q: int) -> "QuantumCircuit":
        return self.append("y", (q,))

    def z(self, q: int) -> "QuantumCircuit":
        return self.append("z", (q,))

    def h(self, q: int) -> "QuantumCircuit":
        return self.append("h", (q,))

    def s(self, q: int) -> "QuantumCircuit":
        return self.append("s", (q,))

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.append("sdg", (q,))

    def t(self, q: int) -> "QuantumCircuit":
        return self.append("t", (q,))

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.append("tdg", (q,))

    def sx(self, q: int) -> "QuantumCircuit":
        return self.append("sx", (q,))

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append("rx", (q,), params=(theta,))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append("ry", (q,), params=(theta,))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append("rz", (q,), params=(theta,))

    def p(self, lam: float, q: int) -> "QuantumCircuit":
        return self.append("p", (q,), params=(lam,))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.append("u3", (q,), params=(theta, phi, lam))

    def raman(self, x: float, y: float, z: float, q: int) -> "QuantumCircuit":
        return self.append("raman", (q,), params=(x, y, z))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cx", (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.append("cz", (a, b))

    def cp(self, lam: float, a: int, b: int) -> "QuantumCircuit":
        return self.append("cp", (a, b), params=(lam,))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append("rzz", (a, b), params=(theta,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append("swap", (a, b))

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append("ccx", (c1, c2, target))

    def ccz(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.append("ccz", (a, b, c))

    def mcz(self, qubits: Sequence[int]) -> "QuantumCircuit":
        return self.append("mcz", tuple(qubits))

    def measure(self, q: int, c: int) -> "QuantumCircuit":
        return self.append(Gate("measure", 1), (q,), (c,))

    def measure_all(self) -> "QuantumCircuit":
        """Measure qubit ``i`` into clbit ``i``, growing clbits if needed."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    def barrier(self, qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        qs = tuple(qubits) if qubits is not None else tuple(range(self.num_qubits))
        self.instructions.append(Instruction(Gate("barrier", len(qs) or 1), qs))
        return self

    # ------------------------------------------------------------------
    # Whole-circuit operations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out.instructions = list(self.instructions)
        return out

    def compose(
        self, other: "QuantumCircuit", qubits: Sequence[int] | None = None
    ) -> "QuantumCircuit":
        """Append all of ``other`` onto ``self`` (optionally remapped)."""
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise CircuitError("composed circuit has more qubits than target")
            mapping = list(range(other.num_qubits))
        else:
            if len(qubits) != other.num_qubits:
                raise CircuitError("qubit mapping length mismatch in compose")
            mapping = list(qubits)
        for inst in other.instructions:
            self.append(inst.gate, [mapping[q] for q in inst.qubits], inst.clbits)
        return self

    def inverse(self) -> "QuantumCircuit":
        """Circuit implementing the inverse unitary (no measurements)."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for inst in reversed(self.instructions):
            if inst.gate.name == "barrier":
                out.instructions.append(inst)
                continue
            if not inst.gate.is_unitary:
                raise CircuitError("cannot invert a circuit with measurements")
            out.append(inst.gate.inverse(), inst.qubits)
        return out

    def remapped(self, mapping: Sequence[int] | dict[int, int]) -> "QuantumCircuit":
        """Copy with every qubit index sent through ``mapping``."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        out.instructions = [inst.remap(mapping) for inst in self.instructions]
        return out

    def without_measurements(self) -> "QuantumCircuit":
        """Copy with measure/barrier/reset instructions removed."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        out.instructions = [i for i in self.instructions if i.gate.is_unitary]
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count_ops(self) -> Counter:
        """Histogram of gate names (barriers excluded)."""
        return Counter(i.name for i in self.instructions if i.name != "barrier")

    def num_gates(self, arity: int | None = None) -> int:
        """Number of unitary gates, optionally filtered by qubit count."""
        total = 0
        for inst in self.instructions:
            if not inst.gate.is_unitary:
                continue
            if arity is None or len(inst.qubits) == arity:
                total += 1
        return total

    @property
    def size(self) -> int:
        """Number of non-barrier instructions (measurements included)."""
        return sum(1 for i in self.instructions if i.name != "barrier")

    def depth(self) -> int:
        """Circuit depth counting all non-barrier instructions."""
        front = [0] * max(self.num_qubits, 1)
        for inst in self.instructions:
            if inst.name == "barrier":
                if inst.qubits:
                    level = max(front[q] for q in inst.qubits)
                    for q in inst.qubits:
                        front[q] = level
                continue
            level = max(front[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                front[q] = level
        return max(front) if front else 0

    def qubits_used(self) -> set[int]:
        """Set of qubit indices touched by at least one instruction."""
        used: set[int] = set()
        for inst in self.instructions:
            used.update(inst.qubits)
        return used

    def two_qubit_pairs(self) -> list[tuple[int, int]]:
        """Ordered list of (sorted) qubit pairs of all 2-qubit gates."""
        pairs = []
        for inst in self.instructions:
            if inst.gate.is_unitary and len(inst.qubits) == 2:
                a, b = inst.qubits
                pairs.append((min(a, b), max(a, b)))
        return pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self.instructions == other.instructions
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self.instructions)})"
        )

    @classmethod
    def from_instructions(
        cls,
        num_qubits: int,
        instructions: Iterable[Instruction],
        num_clbits: int = 0,
        name: str = "circuit",
    ) -> "QuantumCircuit":
        out = cls(num_qubits, num_clbits, name)
        for inst in instructions:
            out.append(inst.gate, inst.qubits, inst.clbits)
        return out
