"""Dense unitary and statevector simulation of circuits.

This is the computational core of the wChecker (§6): building the unitary
matrices of the original and retargeted circuits and comparing them up to a
global phase.  Exact unitaries are limited to
:data:`repro.linalg.MAX_UNITARY_QUBITS` qubits; beyond that the checker
falls back to random-statevector probing (see :mod:`repro.checker`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SimulationError
from ..linalg import (
    MAX_STATEVECTOR_QUBITS,
    MAX_UNITARY_QUBITS,
    allclose_up_to_global_phase,
    apply_gate_to_state,
    apply_gate_to_unitary,
)
from .circuit import QuantumCircuit


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Exact ``2**n x 2**n`` unitary of a measurement-free circuit."""
    n = circuit.num_qubits
    if n > MAX_UNITARY_QUBITS:
        raise SimulationError(
            f"cannot build a dense unitary for {n} qubits "
            f"(limit {MAX_UNITARY_QUBITS}); use statevector probing"
        )
    unitary = np.eye(2**n, dtype=complex)
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        if not inst.gate.is_unitary:
            raise SimulationError(
                f"cannot compute the unitary of a circuit containing {inst.name!r}"
            )
        unitary = apply_gate_to_unitary(inst.gate.matrix(), inst.qubits, unitary, n)
    return unitary


def circuit_statevector(
    circuit: QuantumCircuit, initial_state: np.ndarray | None = None
) -> np.ndarray:
    """Statevector after running ``circuit`` (measurements are skipped)."""
    n = circuit.num_qubits
    if n > MAX_STATEVECTOR_QUBITS:
        raise SimulationError(
            f"cannot simulate a statevector for {n} qubits "
            f"(limit {MAX_STATEVECTOR_QUBITS})"
        )
    if initial_state is None:
        state = np.zeros(2**n, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial_state, dtype=complex)
        if state.shape != (2**n,):
            raise SimulationError(
                f"initial state has shape {state.shape}, expected ({2**n},)"
            )
    for inst in circuit.instructions:
        if not inst.gate.is_unitary:
            continue
        state = apply_gate_to_state(inst.gate.matrix(), inst.qubits, state, n)
    return state


def measurement_distribution(circuit: QuantumCircuit) -> dict[str, float]:
    """Ideal output distribution over bitstrings (little-endian keys).

    The returned keys are bitstrings with qubit 0 as the *leftmost*
    character, e.g. ``"110010"`` in the paper's Figure 1 means qubits 0, 1
    and 4 measured as 1.  Probabilities below 1e-12 are dropped.
    """
    state = circuit_statevector(circuit)
    probs = np.abs(state) ** 2
    n = circuit.num_qubits
    dist: dict[str, float] = {}
    for basis, p in enumerate(probs):
        if p < 1e-12:
            continue
        bits = "".join("1" if (basis >> q) & 1 else "0" for q in range(n))
        dist[bits] = float(p)
    return dist


def circuits_equivalent(
    a: QuantumCircuit,
    b: QuantumCircuit,
    atol: float = 1e-8,
    probes: int = 4,
    seed: int = 7,
) -> bool:
    """Whether two circuits implement the same unitary up to global phase.

    Small circuits are compared exactly; circuits above the dense-unitary
    limit are compared by applying both to ``probes`` random statevectors
    (a one-sided Monte-Carlo check with overwhelming detection probability
    for structured compiler bugs).
    """
    if a.num_qubits != b.num_qubits:
        return False
    a = a.without_measurements()
    b = b.without_measurements()
    n = a.num_qubits
    if n <= MAX_UNITARY_QUBITS:
        return allclose_up_to_global_phase(circuit_unitary(a), circuit_unitary(b), atol)
    rng = np.random.default_rng(seed)
    from ..linalg import random_statevector  # local import to avoid cycle noise

    for _ in range(probes):
        probe = random_statevector(n, rng)
        out_a = circuit_statevector(a, probe)
        out_b = circuit_statevector(b, probe)
        if not allclose_up_to_global_phase(out_a, out_b, atol=max(atol, 1e-7)):
            return False
    return True
