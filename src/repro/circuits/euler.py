"""ZYX Euler decomposition of single-qubit unitaries.

An FPQA Raman pulse applies ``Rz(z) @ Ry(y) @ Rx(x)`` (paper Table 1), so
any single-qubit gate compiles to *one* local pulse once we can extract the
(x, y, z) angles.  We go through the SU(2) -> SO(3) covering map and read
off yaw-pitch-roll angles, which is numerically robust away from the
gimbal-lock pitch and handled explicitly at the poles.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..exceptions import CircuitError

_PAULIS = (
    np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    np.array([[0.0, -1j], [1j, 0.0]], dtype=complex),
    np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
)


def _to_su2(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise CircuitError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    det = np.linalg.det(matrix)
    if abs(det) < 1e-12:
        raise CircuitError("matrix is singular; not a unitary")
    return matrix / cmath.sqrt(det)


def su2_to_so3(matrix: np.ndarray) -> np.ndarray:
    """The SO(3) rotation corresponding to an SU(2) element.

    ``R[i][j] = (1/2) tr(sigma_i U sigma_j U^dagger)``.
    """
    u = _to_su2(matrix)
    u_dag = u.conj().T
    rotation = np.empty((3, 3))
    for i, sigma_i in enumerate(_PAULIS):
        for j, sigma_j in enumerate(_PAULIS):
            rotation[i, j] = 0.5 * np.trace(sigma_i @ u @ sigma_j @ u_dag).real
    return rotation


def zyx_euler_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """Angles ``(x, y, z)`` with ``Rz(z) Ry(y) Rx(x) ~ matrix`` up to phase.

    The rotation convention matches the ``raman`` gate: ``R*(theta) =
    exp(-i*theta*sigma/2)``, composed X first, then Y, then Z.
    """
    rotation = su2_to_so3(matrix)
    # ZYX (yaw-pitch-roll) extraction from a rotation matrix.
    sin_pitch = -rotation[2, 0]
    sin_pitch = min(1.0, max(-1.0, sin_pitch))
    pitch = math.asin(sin_pitch)
    if abs(abs(sin_pitch) - 1.0) < 1e-9:
        # Gimbal lock: roll and yaw are degenerate; put everything in yaw.
        roll = 0.0
        yaw = math.atan2(-rotation[0, 1], rotation[1, 1])
    else:
        roll = math.atan2(rotation[2, 1], rotation[2, 2])
        yaw = math.atan2(rotation[1, 0], rotation[0, 0])
    return (roll, pitch, yaw)


def raman_angles_for(matrix: np.ndarray) -> tuple[float, float, float]:
    """Raman pulse angles implementing ``matrix`` up to global phase."""
    return zyx_euler_angles(matrix)
