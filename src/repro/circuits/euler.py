"""ZYX Euler decomposition of single-qubit unitaries.

An FPQA Raman pulse applies ``Rz(z) @ Ry(y) @ Rx(x)`` (paper Table 1), so
any single-qubit gate compiles to *one* local pulse once we can extract the
(x, y, z) angles.

Two implementations are kept:

* :func:`zyx_euler_angles` — the default hot path.  The SU(2) entries
  directly give the quaternion components, from which the five SO(3)
  entries the ZYX extraction needs follow in closed form — no 3x3 matrix
  build, no ``np.trace`` matmuls.  This runs on every Raman pulse the
  compiler emits.
* :func:`zyx_euler_angles_so3` — the legacy reference: build the full
  SO(3) image via ``R[i][j] = (1/2) tr(sigma_i U sigma_j U^dagger)`` and
  read yaw-pitch-roll off it.  Kept for equivalence tests and as the
  angle path of the unoptimized reference pipeline
  (:meth:`repro.perf.OptimizationFlags.reference`).

Both are numerically robust away from the gimbal-lock pitch and handle the
poles explicitly; they agree to ~1e-15 (verified by tests) but are not
bit-identical, so a pipeline must pick one and stick with it.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..exceptions import CircuitError

_PAULIS = (
    np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    np.array([[0.0, -1j], [1j, 0.0]], dtype=complex),
    np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
)

#: Pitch band treated as gimbal lock (|sin pitch| within this of 1).
_GIMBAL_TOL = 1e-9


def _to_su2(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise CircuitError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    det = np.linalg.det(matrix)
    if abs(det) < 1e-12:
        raise CircuitError("matrix is singular; not a unitary")
    return matrix / cmath.sqrt(det)


def su2_to_so3(matrix: np.ndarray) -> np.ndarray:
    """The SO(3) rotation corresponding to an SU(2) element.

    ``R[i][j] = (1/2) tr(sigma_i U sigma_j U^dagger)``.
    """
    u = _to_su2(matrix)
    u_dag = u.conj().T
    rotation = np.empty((3, 3))
    for i, sigma_i in enumerate(_PAULIS):
        for j, sigma_j in enumerate(_PAULIS):
            rotation[i, j] = 0.5 * np.trace(sigma_i @ u @ sigma_j @ u_dag).real
    return rotation


def zyx_euler_angles_so3(matrix: np.ndarray) -> tuple[float, float, float]:
    """Legacy angle extraction through the explicit SO(3) matrix."""
    rotation = su2_to_so3(matrix)
    # ZYX (yaw-pitch-roll) extraction from a rotation matrix.
    sin_pitch = -rotation[2, 0]
    sin_pitch = min(1.0, max(-1.0, sin_pitch))
    pitch = math.asin(sin_pitch)
    if abs(abs(sin_pitch) - 1.0) < _GIMBAL_TOL:
        # Gimbal lock: roll and yaw are degenerate; put everything in yaw.
        roll = 0.0
        yaw = math.atan2(-rotation[0, 1], rotation[1, 1])
    else:
        roll = math.atan2(rotation[2, 1], rotation[2, 2])
        yaw = math.atan2(rotation[1, 0], rotation[0, 0])
    return (roll, pitch, yaw)


def zyx_euler_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """Angles ``(x, y, z)`` with ``Rz(z) Ry(y) Rx(x) ~ matrix`` up to phase.

    The rotation convention matches the ``raman`` gate: ``R*(theta) =
    exp(-i*theta*sigma/2)``, composed X first, then Y, then Z.

    Closed form: normalize to SU(2) ``u = w*I - i*(qx*sx + qy*sy + qz*sz)``,
    read the quaternion ``(w, qx, qy, qz)`` straight from the entries
    (``u00 = w - i*qz``, ``u10 = qy - i*qx``), and evaluate only the five
    rotation-matrix entries the ZYX extraction consumes.
    """
    if not isinstance(matrix, np.ndarray) or matrix.shape != (2, 2):
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise CircuitError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    u00 = complex(matrix[0, 0])
    u01 = complex(matrix[0, 1])
    u10 = complex(matrix[1, 0])
    u11 = complex(matrix[1, 1])
    det = u00 * u11 - u01 * u10
    if abs(det) < 1e-12:
        raise CircuitError("matrix is singular; not a unitary")
    scale = 1.0 / cmath.sqrt(det)
    u00 *= scale
    u10 *= scale
    w = u00.real
    qz = -u00.imag
    qy = u10.real
    qx = -u10.imag
    # R[2,0] = 2(qx*qz - w*qy); sin(pitch) = -R[2,0].
    sin_pitch = 2.0 * (w * qy - qx * qz)
    sin_pitch = min(1.0, max(-1.0, sin_pitch))
    pitch = math.asin(sin_pitch)
    if abs(abs(sin_pitch) - 1.0) < _GIMBAL_TOL:
        # Gimbal lock: roll and yaw are degenerate; put everything in yaw.
        # yaw = atan2(-R[0,1], R[1,1]).
        roll = 0.0
        yaw = math.atan2(
            2.0 * (w * qz - qx * qy), 1.0 - 2.0 * (qx * qx + qz * qz)
        )
    else:
        # roll = atan2(R[2,1], R[2,2]); yaw = atan2(R[1,0], R[0,0]).
        roll = math.atan2(
            2.0 * (qy * qz + w * qx), 1.0 - 2.0 * (qx * qx + qy * qy)
        )
        yaw = math.atan2(
            2.0 * (qx * qy + w * qz), 1.0 - 2.0 * (qy * qy + qz * qz)
        )
    return (roll, pitch, yaw)


def raman_angles_for(matrix: np.ndarray) -> tuple[float, float, float]:
    """Raman pulse angles implementing ``matrix`` up to global phase."""
    return zyx_euler_angles(matrix)
