"""Dependency DAG over circuit instructions.

The paper (§4.2) distinguishes logical gates, which may execute in parallel
"if their dependencies are met and they do not share qubits, following the
order dictated by a dependency graph", from FPQA annotations, which are
strictly sequential.  This module provides that dependency graph and the
ASAP layering used by schedulers and the execution-time model.
"""

from __future__ import annotations

from .circuit import Instruction, QuantumCircuit


class CircuitDag:
    """Directed acyclic dependency graph over a circuit's instructions.

    Node ``i`` is the ``i``-th instruction; an edge ``i -> j`` means ``j``
    must run after ``i`` because they share a qubit (or a classical bit).
    Only *direct* dependencies are stored: for each qubit, consecutive users
    are linked.
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        n = len(circuit.instructions)
        self.successors: list[list[int]] = [[] for _ in range(n)]
        self.predecessors: list[list[int]] = [[] for _ in range(n)]
        last_use: dict[str, int] = {}
        for idx, inst in enumerate(circuit.instructions):
            deps = set()
            for q in inst.qubits:
                key = f"q{q}"
                if key in last_use:
                    deps.add(last_use[key])
                last_use[key] = idx
            for c in inst.clbits:
                key = f"c{c}"
                if key in last_use:
                    deps.add(last_use[key])
                last_use[key] = idx
            for dep in sorted(deps):
                self.successors[dep].append(idx)
                self.predecessors[idx].append(dep)

    def __len__(self) -> int:
        return len(self.successors)

    def front_layer(self) -> list[int]:
        """Indices of instructions with no predecessors."""
        return [i for i, preds in enumerate(self.predecessors) if not preds]

    def topological_order(self) -> list[int]:
        """A topological ordering (instruction order is already one)."""
        return list(range(len(self.successors)))

    def asap_layers(self) -> list[list[int]]:
        """Partition instructions into as-soon-as-possible parallel layers.

        Barriers synchronize every qubit they touch.  Two instructions land
        in the same layer only when no dependency path connects them, i.e.
        they can execute simultaneously.
        """
        n = len(self.successors)
        level = [0] * n
        for idx in range(n):
            for pred in self.predecessors[idx]:
                level[idx] = max(level[idx], level[pred] + 1)
        layers: dict[int, list[int]] = {}
        for idx, lvl in enumerate(level):
            layers.setdefault(lvl, []).append(idx)
        return [layers[lvl] for lvl in sorted(layers)]


def dependency_layers(circuit: QuantumCircuit) -> list[list[Instruction]]:
    """ASAP layers of ``circuit`` as instruction lists (barriers dropped)."""
    dag = CircuitDag(circuit)
    layers = []
    for layer in dag.asap_layers():
        insts = [
            circuit.instructions[i]
            for i in layer
            if circuit.instructions[i].name != "barrier"
        ]
        if insts:
            layers.append(insts)
    return layers


def parallel_2q_layers(circuit: QuantumCircuit) -> list[list[Instruction]]:
    """ASAP layers restricted to multi-qubit gates.

    Single-qubit gates are ignored (FPQAs execute them with fast Raman
    pulses); the result drives Rydberg-stage scheduling in the baselines.
    """
    multiq = QuantumCircuit(circuit.num_qubits, circuit.num_clbits)
    for inst in circuit.instructions:
        if inst.gate.is_unitary and len(inst.qubits) >= 2:
            multiq.append(inst.gate, inst.qubits)
    return dependency_layers(multiq)


def critical_path_length(
    circuit: QuantumCircuit, durations: dict[str, float] | None = None
) -> float:
    """Length of the weighted critical path through the dependency DAG.

    ``durations`` maps gate name to a duration; missing names count as 1.
    This is the idealized (fully parallel) execution time of the circuit.
    """
    durations = durations or {}
    dag = CircuitDag(circuit)
    n = len(dag)
    finish = [0.0] * n
    for idx in range(n):
        inst = circuit.instructions[idx]
        dur = durations.get(inst.name, 1.0) if inst.name != "barrier" else 0.0
        start = max((finish[p] for p in dag.predecessors[idx]), default=0.0)
        finish[idx] = start + dur
    return max(finish, default=0.0)
