"""Convert parsed OpenQASM programs into circuits (and keep annotations)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits import QuantumCircuit
from ..circuits.gates import GATE_ALIASES, Gate, make_gate
from ..exceptions import QasmSemanticError
from .ast import (
    Annotation,
    BarrierStmt,
    ClbitDecl,
    GateCall,
    GateDefinition,
    IncludeStmt,
    MeasureStmt,
    Program,
    QubitDecl,
    evaluate_param,
)
from .parser import parse_qasm

_MAX_MACRO_DEPTH = 32

#: Declared register sizes beyond this are user errors, not honest
#: workloads: the framework targets machines of a few hundred qubits,
#: and an absurd declaration would otherwise explode broadcast expansion
#: into a MemoryError (an internal crash) instead of a clear message.
_MAX_REGISTER_SIZE = 100_000


def _expand_macro(
    definition: GateDefinition,
    params: tuple[float, ...],
    qubits: list[int],
    macros: dict[str, GateDefinition],
    depth: int = 0,
) -> list[tuple[Gate, tuple[int, ...]]]:
    """Flatten a user-defined gate call into concrete library gates."""
    if depth > _MAX_MACRO_DEPTH:
        raise QasmSemanticError(
            f"gate {definition.name!r} expands too deeply (recursive definition?)"
        )
    if len(params) != len(definition.params):
        raise QasmSemanticError(
            f"gate {definition.name!r} takes {len(definition.params)} "
            f"parameter(s), got {len(params)}"
        )
    if len(qubits) != len(definition.qubits):
        raise QasmSemanticError(
            f"gate {definition.name!r} acts on {len(definition.qubits)} "
            f"qubit(s), got {len(qubits)}"
        )
    env = dict(zip(definition.params, params))
    binding = dict(zip(definition.qubits, qubits))
    expanded: list[tuple[Gate, tuple[int, ...]]] = []
    for call in definition.body:
        name = GATE_ALIASES.get(call.name, call.name)
        args = tuple(evaluate_param(p, env) for p in call.params)
        call_qubits = tuple(binding[reg] for reg, _ in call.operands)
        if name in macros:
            expanded.extend(
                _expand_macro(macros[name], args, list(call_qubits), macros, depth + 1)
            )
        else:
            expanded.append(
                (make_gate(name, args, num_qubits=len(call_qubits)), call_qubits)
            )
    return expanded


@dataclass
class LoadedProgram:
    """Result of lowering a QASM AST: circuit plus annotation bookkeeping.

    ``instruction_annotations[i]`` holds the annotations that preceded the
    statement producing circuit instruction ``i``.  ``setup_annotations``
    holds annotations attached to declarations (wQasm puts ``@slm``/``@aod``
    /``@bind`` there).  This preserves the wQasm association between FPQA
    steps and logical gates (§4.2).
    """

    circuit: QuantumCircuit
    instruction_annotations: list[tuple[Annotation, ...]] = field(default_factory=list)
    setup_annotations: list[Annotation] = field(default_factory=list)
    qubit_registers: dict[str, tuple[int, int]] = field(default_factory=dict)
    clbit_registers: dict[str, tuple[int, int]] = field(default_factory=dict)


def load_circuit(program: Program, name: str = "qasm") -> LoadedProgram:
    """Lower an AST into a flat-indexed :class:`QuantumCircuit`.

    Registers are flattened into consecutive integer indices in declaration
    order; broadcast gate calls (``h q;``) expand to one instruction per
    qubit with the annotations attached to the first expansion only.
    """
    qubit_regs: dict[str, tuple[int, int]] = {}
    clbit_regs: dict[str, tuple[int, int]] = {}
    num_qubits = 0
    num_clbits = 0
    for statement in program.statements:
        if isinstance(statement, (QubitDecl, ClbitDecl)):
            if statement.size > _MAX_REGISTER_SIZE:
                raise QasmSemanticError(
                    f"register {statement.name!r} declares {statement.size} "
                    f"wires; the supported maximum is {_MAX_REGISTER_SIZE}"
                )
        if isinstance(statement, QubitDecl):
            if statement.name in qubit_regs:
                raise QasmSemanticError(f"duplicate qubit register {statement.name!r}")
            qubit_regs[statement.name] = (num_qubits, statement.size)
            num_qubits += statement.size
        elif isinstance(statement, ClbitDecl):
            if statement.name in clbit_regs:
                raise QasmSemanticError(f"duplicate bit register {statement.name!r}")
            clbit_regs[statement.name] = (num_clbits, statement.size)
            num_clbits += statement.size

    circuit = QuantumCircuit(num_qubits, num_clbits, name=name)
    annotations: list[tuple[Annotation, ...]] = []
    setup: list[Annotation] = []

    def resolve(regs: dict[str, tuple[int, int]], operand, kind: str) -> list[int]:
        reg_name, index = operand
        if reg_name not in regs:
            raise QasmSemanticError(f"unknown {kind} register {reg_name!r}")
        offset, size = regs[reg_name]
        if index is None:
            return list(range(offset, offset + size))
        if not 0 <= index < size:
            raise QasmSemanticError(
                f"index {index} out of range for {kind} register "
                f"{reg_name!r} of size {size}"
            )
        return [offset + index]

    macros: dict[str, GateDefinition] = {}
    for statement in program.statements:
        if isinstance(statement, (QubitDecl, ClbitDecl, IncludeStmt)):
            setup.extend(statement.annotations)
            continue
        if isinstance(statement, GateDefinition):
            if statement.name in macros:
                raise QasmSemanticError(f"gate {statement.name!r} redefined")
            macros[statement.name] = statement
            continue
        if isinstance(statement, GateCall):
            gate_name = GATE_ALIASES.get(statement.name, statement.name)
            operand_lists = [
                resolve(qubit_regs, op, "qubit") for op in statement.operands
            ]
            broadcast = max(len(ops) for ops in operand_lists)
            for ops in operand_lists:
                if len(ops) not in (1, broadcast):
                    raise QasmSemanticError(
                        f"mismatched broadcast in gate {statement.name!r}"
                    )
            for rep in range(broadcast):
                qubits = [
                    ops[rep] if len(ops) > 1 else ops[0] for ops in operand_lists
                ]
                if gate_name in macros:
                    params = tuple(float(p) for p in statement.params)
                    for gate, macro_qubits in _expand_macro(
                        macros[gate_name], params, qubits, macros
                    ):
                        circuit.append(gate, macro_qubits)
                        annotations.append(())
                    if statement.annotations and rep == 0 and annotations:
                        # Attach the call's annotations to its first gate.
                        first = len(annotations) - sum(
                            1
                            for _ in _expand_macro(
                                macros[gate_name], params, qubits, macros
                            )
                        )
                        annotations[first] = statement.annotations
                    continue
                gate = make_gate(gate_name, statement.params, num_qubits=len(qubits))
                circuit.append(gate, qubits)
                annotations.append(statement.annotations if rep == 0 else ())
            continue
        if isinstance(statement, MeasureStmt):
            qubits = resolve(qubit_regs, statement.qubit, "qubit")
            clbits = resolve(clbit_regs, statement.clbit, "bit")
            if len(qubits) != len(clbits):
                raise QasmSemanticError("measure register size mismatch")
            for pos, (q, c) in enumerate(zip(qubits, clbits)):
                circuit.measure(q, c)
                annotations.append(statement.annotations if pos == 0 else ())
            continue
        if isinstance(statement, BarrierStmt):
            if statement.operands:
                barrier_qubits: list[int] = []
                for op in statement.operands:
                    barrier_qubits.extend(resolve(qubit_regs, op, "qubit"))
                circuit.barrier(barrier_qubits)
            else:
                circuit.barrier()
            annotations.append(statement.annotations)
            continue
        raise QasmSemanticError(f"unsupported statement {statement!r}")

    return LoadedProgram(
        circuit=circuit,
        instruction_annotations=annotations,
        setup_annotations=setup,
        qubit_registers=qubit_regs,
        clbit_registers=clbit_regs,
    )


def qasm_to_circuit(source: str, name: str = "qasm") -> QuantumCircuit:
    """One-step parse + load returning only the circuit."""
    return load_circuit(parse_qasm(source), name=name).circuit
