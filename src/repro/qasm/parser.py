"""Recursive-descent parser for the OpenQASM 3 subset.

Supported statements (enough for the paper's workloads and both dialects
Qiskit emits):

* ``OPENQASM 2.0; / 3.0;`` version headers and ``include`` directives
* ``qreg q[n];`` / ``qubit[n] q;`` and ``creg c[n];`` / ``bit[n] c;``
* gate calls with constant-folded parameter expressions (``pi``, ``tau``,
  arithmetic, unary minus)
* ``measure q[i] -> c[i];`` (QASM2) and ``c[i] = measure q[i];`` (QASM3)
* ``barrier``
* annotations ``@keyword ...`` attached to the next statement
"""

from __future__ import annotations

import math

from ..exceptions import QasmSyntaxError
from .ast import (
    Annotation,
    BarrierStmt,
    BinOp,
    ClbitDecl,
    Expr,
    GateCall,
    GateDefinition,
    IncludeStmt,
    MeasureStmt,
    Neg,
    Num,
    Operand,
    Program,
    QubitDecl,
    Statement,
    Sym,
)
from .lexer import Token, TokenType, tokenize

_CONSTANTS = {"pi": math.pi, "tau": 2.0 * math.pi, "euler": math.e}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        #: Formal parameter names in scope (inside a gate definition body);
        #: identifiers in this set parse as symbolic expressions.
        self._symbols: set[str] = set()

    # Token helpers -----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if token.type is not TokenType.SYMBOL or token.value != symbol:
            raise QasmSyntaxError(
                f"expected {symbol!r}, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def expect_identifier(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.IDENTIFIER:
            raise QasmSyntaxError(
                f"expected identifier, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def at_symbol(self, symbol: str) -> bool:
        token = self.peek()
        return token.type is TokenType.SYMBOL and token.value == symbol

    # Grammar -----------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        token = self.peek()
        if token.type is TokenType.IDENTIFIER and token.value == "OPENQASM":
            self.advance()
            version = self.peek()
            if version.type is not TokenType.NUMBER:
                raise QasmSyntaxError(
                    "expected version number after OPENQASM", version.line, version.column
                )
            program.version = self.advance().value
            self.expect_symbol(";")
        while self.peek().type is not TokenType.EOF:
            program.statements.append(self.parse_statement())
        return program

    def parse_statement(self) -> Statement:
        annotations: list[Annotation] = []
        while self.peek().type is TokenType.ANNOTATION:
            raw = self.advance().value
            keyword, _, content = raw.partition(" ")
            annotations.append(Annotation(keyword, content.strip()))
        token = self.peek()
        if token.type is TokenType.EOF:
            raise QasmSyntaxError(
                "annotations at end of file have no statement", token.line, token.column
            )
        if token.type is not TokenType.IDENTIFIER:
            raise QasmSyntaxError(
                f"expected statement, found {token.value!r}", token.line, token.column
            )
        statement = self._parse_statement_body(token)
        statement.annotations = tuple(annotations)
        return statement

    def _parse_statement_body(self, token: Token) -> Statement:
        keyword = token.value
        if keyword == "include":
            self.advance()
            path = self.peek()
            if path.type is not TokenType.STRING:
                raise QasmSyntaxError("expected string after include", path.line, path.column)
            self.advance()
            self.expect_symbol(";")
            return IncludeStmt(path=path.value)
        if keyword in ("qreg", "creg"):
            self.advance()
            name = self.expect_identifier().value
            self.expect_symbol("[")
            size = self._parse_int()
            self.expect_symbol("]")
            self.expect_symbol(";")
            cls = QubitDecl if keyword == "qreg" else ClbitDecl
            return cls(name=name, size=size)
        if keyword in ("qubit", "bit"):
            self.advance()
            size = 1
            if self.at_symbol("["):
                self.advance()
                size = self._parse_int()
                self.expect_symbol("]")
            name = self.expect_identifier().value
            self.expect_symbol(";")
            cls = QubitDecl if keyword == "qubit" else ClbitDecl
            return cls(name=name, size=size)
        if keyword == "measure":
            # QASM2 style: measure q[i] -> c[i];
            self.advance()
            qubit = self._parse_operand()
            arrow = self.peek()
            if arrow.type is not TokenType.ARROW:
                raise QasmSyntaxError("expected '->' in measure", arrow.line, arrow.column)
            self.advance()
            clbit = self._parse_operand()
            self.expect_symbol(";")
            return MeasureStmt(qubit=qubit, clbit=clbit)
        if keyword == "barrier":
            self.advance()
            operands: list[Operand] = []
            if not self.at_symbol(";"):
                operands.append(self._parse_operand())
                while self.at_symbol(","):
                    self.advance()
                    operands.append(self._parse_operand())
            self.expect_symbol(";")
            return BarrierStmt(operands=tuple(operands))
        if keyword == "gate":
            return self._parse_gate_definition()
        # QASM3 style measurement: c[i] = measure q[i];
        if self._looks_like_assignment_measure():
            clbit = self._parse_operand()
            self.expect_symbol("=")
            measure = self.expect_identifier()
            if measure.value != "measure":
                raise QasmSyntaxError(
                    "only 'measure' may appear on the right of '='",
                    measure.line,
                    measure.column,
                )
            qubit = self._parse_operand()
            self.expect_symbol(";")
            return MeasureStmt(qubit=qubit, clbit=clbit)
        return self._parse_gate_call()

    def _looks_like_assignment_measure(self) -> bool:
        """Lookahead for ``ident[expr] = measure`` / ``ident = measure``."""
        pos = self.pos
        try:
            if self.tokens[pos].type is not TokenType.IDENTIFIER:
                return False
            pos += 1
            if (
                self.tokens[pos].type is TokenType.SYMBOL
                and self.tokens[pos].value == "["
            ):
                depth = 1
                pos += 1
                while depth and self.tokens[pos].type is not TokenType.EOF:
                    if self.tokens[pos].type is TokenType.SYMBOL:
                        if self.tokens[pos].value == "[":
                            depth += 1
                        elif self.tokens[pos].value == "]":
                            depth -= 1
                    pos += 1
            return (
                self.tokens[pos].type is TokenType.SYMBOL
                and self.tokens[pos].value == "="
            )
        except IndexError:
            return False

    def _parse_gate_definition(self) -> GateDefinition:
        """``gate name(p0, p1) q0, q1 { body }`` (OpenQASM 2-style macro)."""
        self.advance()  # 'gate'
        name = self.expect_identifier().value
        params: list[str] = []
        if self.at_symbol("("):
            self.advance()
            if not self.at_symbol(")"):
                params.append(self.expect_identifier().value)
                while self.at_symbol(","):
                    self.advance()
                    params.append(self.expect_identifier().value)
            self.expect_symbol(")")
        qubits = [self.expect_identifier().value]
        while self.at_symbol(","):
            self.advance()
            qubits.append(self.expect_identifier().value)
        self.expect_symbol("{")
        previous_symbols = self._symbols
        self._symbols = set(params)
        body: list[GateCall] = []
        try:
            while not self.at_symbol("}"):
                token = self.peek()
                if token.type is TokenType.EOF:
                    raise QasmSyntaxError(
                        "unterminated gate body", token.line, token.column
                    )
                statement = self._parse_gate_call()
                for reg, index in statement.operands:
                    if index is not None or reg not in qubits:
                        raise QasmSyntaxError(
                            f"gate body may only reference formal qubits, got "
                            f"{reg}{'' if index is None else f'[{index}]'}",
                            token.line,
                            token.column,
                        )
                body.append(statement)
        finally:
            self._symbols = previous_symbols
        self.expect_symbol("}")
        return GateDefinition(
            name=name, params=tuple(params), qubits=tuple(qubits), body=tuple(body)
        )

    def _parse_gate_call(self) -> GateCall:
        name = self.expect_identifier().value
        params: tuple[float, ...] = ()
        if self.at_symbol("("):
            self.advance()
            values = []
            if not self.at_symbol(")"):
                values.append(self._parse_expression())
                while self.at_symbol(","):
                    self.advance()
                    values.append(self._parse_expression())
            self.expect_symbol(")")
            params = tuple(values)
        operands = [self._parse_operand()]
        while self.at_symbol(","):
            self.advance()
            operands.append(self._parse_operand())
        self.expect_symbol(";")
        return GateCall(name=name, params=params, operands=tuple(operands))

    def _parse_operand(self) -> Operand:
        name = self.expect_identifier().value
        index: int | None = None
        if self.at_symbol("["):
            self.advance()
            index = self._parse_int()
            self.expect_symbol("]")
        return (name, index)

    def _parse_int(self) -> int:
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise QasmSyntaxError(
                f"expected integer, found {token.value!r}", token.line, token.column
            )
        self.advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise QasmSyntaxError(
                f"expected integer, found {token.value!r}", token.line, token.column
            ) from exc

    # Expression parsing ---------------------------------------------------
    # Constants fold eagerly; identifiers bound as formal gate parameters
    # produce symbolic Expr trees evaluated at macro-expansion time.
    @staticmethod
    def _combine(op: str, lhs, rhs, token: Token):
        if isinstance(lhs, Expr) or isinstance(rhs, Expr):
            left = lhs if isinstance(lhs, Expr) else Num(float(lhs))
            right = rhs if isinstance(rhs, Expr) else Num(float(rhs))
            return BinOp(op, left, right)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if rhs == 0:
            raise QasmSyntaxError("division by zero", token.line, token.column)
        return lhs / rhs

    def _parse_expression(self):
        value = self._parse_term()
        while self.at_symbol("+") or self.at_symbol("-"):
            token = self.peek()
            op = self.advance().value
            rhs = self._parse_term()
            value = self._combine(op, value, rhs, token)
        return value

    def _parse_term(self):
        value = self._parse_factor()
        while self.at_symbol("*") or self.at_symbol("/"):
            token = self.peek()
            op = self.advance().value
            rhs = self._parse_factor()
            value = self._combine(op, value, rhs, token)
        return value

    def _parse_factor(self):
        token = self.peek()
        if self.at_symbol("-"):
            self.advance()
            inner = self._parse_factor()
            return Neg(inner) if isinstance(inner, Expr) else -inner
        if self.at_symbol("+"):
            self.advance()
            return self._parse_factor()
        if self.at_symbol("("):
            self.advance()
            value = self._parse_expression()
            self.expect_symbol(")")
            return value
        if token.type is TokenType.NUMBER:
            self.advance()
            return float(token.value)
        if token.type is TokenType.IDENTIFIER and token.value in _CONSTANTS:
            self.advance()
            return _CONSTANTS[token.value]
        if token.type is TokenType.IDENTIFIER and token.value in self._symbols:
            self.advance()
            return Sym(token.value)
        raise QasmSyntaxError(
            f"expected expression, found {token.value!r}", token.line, token.column
        )


def parse_qasm(source: str) -> Program:
    """Parse OpenQASM/wQasm source text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
