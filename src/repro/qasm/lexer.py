"""Tokenizer for the OpenQASM 3 subset (plus wQasm annotations).

Annotations follow the OpenQASM 3 lexical rule: ``@keyword`` consumes the
remainder of the physical line as opaque content, to be interpreted by the
consumer of the annotation (here, :mod:`repro.wqasm`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import QasmSyntaxError


class TokenType(enum.Enum):
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    ANNOTATION = "annotation"
    SYMBOL = "symbol"
    ARROW = "arrow"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int


_SYMBOLS = set("()[]{},;=+-*/")
_TWO_CHAR = {"->"}


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, stripping comments."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise QasmSyntaxError("unterminated block comment", line, column)
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch == "@":
            start_col = column
            end = source.find("\n", i)
            if end == -1:
                end = n
            content = source[i + 1 : end].rstrip()
            if not content:
                raise QasmSyntaxError("empty annotation", line, column)
            tokens.append(Token(TokenType.ANNOTATION, content, line, start_col))
            column += end - i
            i = end
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end == -1:
                raise QasmSyntaxError("unterminated string literal", line, column)
            tokens.append(Token(TokenType.STRING, source[i + 1 : end], line, column))
            column += end - i + 1
            i = end + 1
            continue
        if source.startswith("->", i):
            tokens.append(Token(TokenType.ARROW, "->", line, column))
            i += 2
            column += 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_col = column
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            # Scientific notation.
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            column += i - start
            tokens.append(Token(TokenType.NUMBER, text, line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            tokens.append(Token(TokenType.IDENTIFIER, source[start:i], line, start_col))
            column += i - start
            continue
        if ch in _SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, ch, line, column))
            i += 1
            column += 1
            continue
        raise QasmSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
