"""Serialize circuits and ASTs back to OpenQASM 3 text."""

from __future__ import annotations

from ..circuits import QuantumCircuit
from ..exceptions import QasmSemanticError
from .ast import (
    BarrierStmt,
    ClbitDecl,
    GateCall,
    IncludeStmt,
    MeasureStmt,
    Program,
    QubitDecl,
    Statement,
)


def _format_param(value: float) -> str:
    text = repr(float(value))
    return text


def _format_operand(operand: tuple[str, int | None]) -> str:
    name, index = operand
    return name if index is None else f"{name}[{index}]"


def _statement_to_qasm(statement: Statement) -> str:
    if isinstance(statement, IncludeStmt):
        body = f'include "{statement.path}";'
    elif isinstance(statement, QubitDecl):
        body = f"qubit[{statement.size}] {statement.name};"
    elif isinstance(statement, ClbitDecl):
        body = f"bit[{statement.size}] {statement.name};"
    elif isinstance(statement, GateCall):
        params = ""
        if statement.params:
            params = "(" + ", ".join(_format_param(p) for p in statement.params) + ")"
        operands = ", ".join(_format_operand(op) for op in statement.operands)
        body = f"{statement.name}{params} {operands};"
    elif isinstance(statement, MeasureStmt):
        body = (
            f"{_format_operand(statement.clbit)} = "
            f"measure {_format_operand(statement.qubit)};"
        )
    elif isinstance(statement, BarrierStmt):
        operands = ", ".join(_format_operand(op) for op in statement.operands)
        body = f"barrier {operands};" if operands else "barrier;"
    else:
        raise QasmSemanticError(f"cannot print statement {statement!r}")
    lines = [f"@{a.keyword} {a.content}".rstrip() for a in statement.annotations]
    lines.append(body)
    return "\n".join(lines)


def program_to_qasm(program: Program) -> str:
    """Print a parsed/constructed AST as OpenQASM text (round-trippable)."""
    lines = [f"OPENQASM {program.version};"]
    for statement in program.statements:
        lines.append(_statement_to_qasm(statement))
    return "\n".join(lines) + "\n"


def circuit_to_qasm(
    circuit: QuantumCircuit, qubit_register: str = "q", clbit_register: str = "c"
) -> str:
    """Print a circuit as OpenQASM 3 with a single qubit/bit register."""
    lines = ["OPENQASM 3.0;"]
    lines.append(f"qubit[{circuit.num_qubits}] {qubit_register};")
    if circuit.num_clbits:
        lines.append(f"bit[{circuit.num_clbits}] {clbit_register};")
    for inst in circuit.instructions:
        if inst.name == "barrier":
            operands = ", ".join(f"{qubit_register}[{q}]" for q in inst.qubits)
            lines.append(f"barrier {operands};")
            continue
        if inst.name == "measure":
            lines.append(
                f"{clbit_register}[{inst.clbits[0]}] = "
                f"measure {qubit_register}[{inst.qubits[0]}];"
            )
            continue
        params = ""
        if inst.params:
            params = "(" + ", ".join(_format_param(p) for p in inst.params) + ")"
        operands = ", ".join(f"{qubit_register}[{q}]" for q in inst.qubits)
        lines.append(f"{inst.name}{params} {operands};")
    return "\n".join(lines) + "\n"
