"""AST node definitions for the OpenQASM 3 subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import QasmSemanticError

#: A register reference: (register name, index or None for broadcast).
Operand = tuple[str, int | None]


# ----------------------------------------------------------------------
# Symbolic parameter expressions (inside gate definitions)
# ----------------------------------------------------------------------
class Expr:
    """Base for symbolic parameter expressions in gate bodies."""

    def evaluate(self, env: dict[str, float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    value: float

    def evaluate(self, env: dict[str, float]) -> float:
        return self.value


@dataclass(frozen=True)
class Sym(Expr):
    name: str

    def evaluate(self, env: dict[str, float]) -> float:
        if self.name not in env:
            raise QasmSemanticError(f"unbound gate parameter {self.name!r}")
        return env[self.name]


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr

    def evaluate(self, env: dict[str, float]) -> float:
        return -self.operand.evaluate(env)


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: dict[str, float]) -> float:
        lhs = self.left.evaluate(env)
        rhs = self.right.evaluate(env)
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        if self.op == "/":
            if rhs == 0:
                raise QasmSemanticError("division by zero in gate body")
            return lhs / rhs
        raise QasmSemanticError(f"unknown operator {self.op!r}")


def evaluate_param(param: float | Expr, env: dict[str, float]) -> float:
    """Evaluate a possibly-symbolic gate parameter."""
    if isinstance(param, Expr):
        return param.evaluate(env)
    return float(param)


@dataclass(frozen=True)
class Annotation:
    """A raw ``@keyword content`` annotation attached to a statement."""

    keyword: str
    content: str


@dataclass
class Statement:
    """Base statement; carries the annotations preceding it (§4.2)."""

    annotations: tuple[Annotation, ...] = ()


@dataclass
class IncludeStmt(Statement):
    path: str = ""


@dataclass
class QubitDecl(Statement):
    name: str = "q"
    size: int = 1


@dataclass
class ClbitDecl(Statement):
    name: str = "c"
    size: int = 1


@dataclass
class GateCall(Statement):
    name: str = ""
    params: tuple[float, ...] = ()
    operands: tuple[Operand, ...] = ()


@dataclass
class MeasureStmt(Statement):
    qubit: Operand = ("q", None)
    clbit: Operand = ("c", None)


@dataclass
class BarrierStmt(Statement):
    operands: tuple[Operand, ...] = ()


@dataclass
class GateDefinition(Statement):
    """A user-defined gate: ``gate name(params) q0, q1 { body }``.

    The body is a list of gate calls over the formal qubit names; formal
    parameters appear in the body as symbolic identifiers resolved at call
    time (OpenQASM 2-style ``gate`` subroutines).
    """

    name: str = ""
    params: tuple[str, ...] = ()
    qubits: tuple[str, ...] = ()
    body: tuple["GateCall", ...] = ()


@dataclass
class Program:
    """A parsed OpenQASM/wQasm program."""

    version: str = "3.0"
    statements: list[Statement] = field(default_factory=list)

    def gate_calls(self) -> list[GateCall]:
        return [s for s in self.statements if isinstance(s, GateCall)]

    def all_annotations(self) -> list[Annotation]:
        out: list[Annotation] = []
        for statement in self.statements:
            out.extend(statement.annotations)
        return out
