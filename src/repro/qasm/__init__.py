"""OpenQASM 3 subset front end.

Weaver adopts OpenQASM as its IR (§4) because it is widely adopted and
extensible through annotations.  This package provides the lexer, AST,
recursive-descent parser, source printer, and the loader that converts a
parsed program into a :class:`repro.circuits.QuantumCircuit`.  Annotations
(``@keyword content``) are lexed generically and attached to the following
statement, exactly as the OpenQASM 3 specification prescribes; their FPQA
interpretation lives in :mod:`repro.wqasm`.
"""

from .lexer import Token, TokenType, tokenize
from .ast import (
    Annotation,
    BarrierStmt,
    ClbitDecl,
    GateCall,
    IncludeStmt,
    MeasureStmt,
    Program,
    QubitDecl,
    Statement,
)
from .parser import parse_qasm
from .printer import circuit_to_qasm, program_to_qasm
from .loader import LoadedProgram, load_circuit, qasm_to_circuit

__all__ = [
    "Annotation",
    "BarrierStmt",
    "ClbitDecl",
    "GateCall",
    "IncludeStmt",
    "LoadedProgram",
    "MeasureStmt",
    "Program",
    "QubitDecl",
    "Statement",
    "Token",
    "TokenType",
    "circuit_to_qasm",
    "load_circuit",
    "parse_qasm",
    "program_to_qasm",
    "qasm_to_circuit",
    "tokenize",
]
