"""Seeding helpers: one contract for every stochastic path.

Every function in the framework that draws random numbers accepts a
``seed`` that is either an integer (or ``None``), or an already-built
:class:`numpy.random.Generator`.  :func:`as_generator` is the single
normalization point, so callers can thread one generator through a
multi-stage pipeline (compile -> simulate -> sample) and get a fully
reproducible end-to-end run, while casual callers keep passing plain
integers.  No module in the library touches the global
``numpy.random`` state.
"""

from __future__ import annotations

import numpy as np


def as_generator(
    seed: int | np.random.Generator | None = None,
) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    A generator passes through untouched (shared state, deliberate);
    anything else seeds a fresh ``default_rng``.  Identical integer
    seeds therefore give identical streams across runs and machines.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
