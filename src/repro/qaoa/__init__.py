"""QAOA circuit construction for MAX-3SAT cost Hamiltonians (paper §2.1, §5).

Builds the three QAOA parts the paper describes: the mixer-eigenstate
initialization, the time evolution of the cost Hamiltonian (the part
wOptimizer targets), and the mixer evolution.
"""

from .cost import (
    clause_cost_circuit,
    compressed_clause_circuit,
    cost_circuit,
    cost_unitary_diagonal,
    monomial_rotation,
)
from .mixer import initialization_circuit, mixer_circuit
from .builder import QaoaParameters, qaoa_circuit
from .energy import expected_unsatisfied, formula_energies, sample_best_assignment
from .optimizer import (
    OptimizationResult,
    coordinate_descent,
    grid_search,
    optimize_angles,
)

__all__ = [
    "OptimizationResult",
    "QaoaParameters",
    "clause_cost_circuit",
    "compressed_clause_circuit",
    "coordinate_descent",
    "cost_circuit",
    "cost_unitary_diagonal",
    "expected_unsatisfied",
    "formula_energies",
    "grid_search",
    "initialization_circuit",
    "mixer_circuit",
    "monomial_rotation",
    "optimize_angles",
    "qaoa_circuit",
    "sample_best_assignment",
]
