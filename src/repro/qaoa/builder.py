"""End-to-end QAOA circuit assembly for a MAX-3SAT formula."""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits import QuantumCircuit
from ..exceptions import CircuitError
from ..sat.cnf import CnfFormula
from ..sat.polynomial import formula_polynomial
from .cost import cost_circuit
from .mixer import initialization_circuit, mixer_circuit


@dataclass(frozen=True)
class QaoaParameters:
    """QAOA angles: one ``(gamma, beta)`` pair per layer.

    Default is the single-layer heuristic angle pair commonly used for
    MAX-SAT demonstrations; the classical outer-loop optimizer is out of
    scope (DESIGN.md §7) apart from the example in ``examples/``.
    """

    gammas: tuple[float, ...] = (0.7,)
    betas: tuple[float, ...] = (0.35,)

    def __post_init__(self) -> None:
        if len(self.gammas) != len(self.betas):
            raise CircuitError("gammas and betas must have equal length")
        if not self.gammas:
            raise CircuitError("QAOA needs at least one layer")

    @property
    def num_layers(self) -> int:
        return len(self.gammas)


def qaoa_circuit(
    formula: CnfFormula,
    parameters: QaoaParameters | None = None,
    measure: bool = False,
) -> QuantumCircuit:
    """Full QAOA circuit for ``formula``: init, then per-layer cost+mixer.

    One qubit per variable (qubit ``i`` is variable ``i+1``), exactly the
    encoding of the paper's Figure 1 example.
    """
    parameters = parameters or QaoaParameters()
    polynomial = formula_polynomial(formula)
    circuit = initialization_circuit(formula.num_vars)
    circuit.name = f"qaoa-{formula.name}"
    for gamma, beta in zip(parameters.gammas, parameters.betas):
        circuit.compose(cost_circuit(polynomial, gamma))
        circuit.compose(mixer_circuit(formula.num_vars, beta))
    if measure:
        circuit.measure_all()
    return circuit
