"""Cost-Hamiltonian circuits for MAX-3SAT QAOA.

Two lowerings are implemented:

* :func:`clause_cost_circuit` — the textbook CNOT-ladder form of Figure 6:
  each Z-monomial of the clause polynomial becomes ``CX``-ladder + ``RZ``.
* :func:`compressed_clause_circuit` — the 3-qubit gate compression of §5.4
  and Figure 7: two ``CCX`` (native ``CCZ`` on FPQAs) plus two ``CX``
  implement the cubic and target-adjacent terms, with the control-control
  quadratic term and the linear terms completed by one ``CX`` ladder and
  single-qubit ``RZ`` pulses.

Angle derivation for the compressed form (verified by unit tests against
``exp(-i*gamma*P_C)``): with literal signs ``s_a, s_b, s_t`` (``+1`` for a
positive literal) the sandwich ``CCX . RZ(phi)_t . CCX`` applies
``exp(-i(phi/4)(Z_t + f_a Z_a Z_t + f_b Z_b Z_t - f_a f_b Z_a Z_b Z_t))``
after conjugating control ``i`` with ``X`` when ``f_i = -1``.  Matching the
clause polynomial ``P_C = (1/8) * prod_i (1 + s_i z_i)`` fixes
``phi = -gamma * s_t / 2`` and ``f_i = -s_i``; the residual terms are
``RZ(gamma*s_t/2)`` on the target, ``RZ(gamma*s_i/4)`` on each control, and
a ``CX . RZ(gamma*s_a*s_b/4) . CX`` ladder between the controls.
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit
from ..exceptions import CircuitError
from ..linalg import projector_phase_polynomial
from ..sat.cnf import Clause
from ..sat.polynomial import IsingPolynomial, clause_polynomial


def monomial_rotation(
    circuit: QuantumCircuit, qubits: tuple[int, ...], coefficient: float, gamma: float
) -> None:
    """Append ``exp(-i * gamma * coefficient * Z...Z)`` on ``qubits``.

    Uses the CNOT-ladder construction of Figure 6: entangle down the ladder,
    rotate the last qubit by ``RZ(2 * gamma * coefficient)``, unentangle.
    """
    if not qubits:
        return  # constant term: global phase, not compiled
    angle = 2.0 * gamma * coefficient
    if len(qubits) == 1:
        circuit.rz(angle, qubits[0])
        return
    for ctrl, tgt in zip(qubits, qubits[1:]):
        circuit.cx(ctrl, tgt)
    circuit.rz(angle, qubits[-1])
    for ctrl, tgt in reversed(list(zip(qubits, qubits[1:]))):
        circuit.cx(ctrl, tgt)


def cost_circuit(polynomial: IsingPolynomial, gamma: float) -> QuantumCircuit:
    """Phase-separator circuit ``exp(-i*gamma*H)`` for a full polynomial."""
    circuit = QuantumCircuit(polynomial.num_vars, name="cost")
    for monomial, coefficient in polynomial.terms(min_degree=1):
        monomial_rotation(circuit, monomial, coefficient, gamma)
    return circuit


def clause_cost_circuit(clause: Clause, num_vars: int, gamma: float) -> QuantumCircuit:
    """Uncompressed CNOT-ladder fragment ``exp(-i*gamma*P_C)`` (Figure 6)."""
    return cost_circuit(clause_polynomial(clause, num_vars), gamma)


def compressed_clause_circuit(
    clause: Clause, num_vars: int, gamma: float
) -> QuantumCircuit:
    """Compressed 3-qubit fragment of §5.4 / Figure 7.

    Only 3-literal clauses benefit from compression; smaller clauses fall
    back to the ladder form.  The last listed variable acts as the CCX
    target, the first two as controls (the roles are symmetric for the
    cubic term).
    """
    if len(clause) != 3:
        return clause_cost_circuit(clause, num_vars, gamma)
    circuit = QuantumCircuit(num_vars, name="compressed-clause")
    gamma = gamma * clause.weight  # weighted MAX-SAT scales every angle
    lits = sorted(clause.literals, key=abs)
    (qa, sa), (qb, sb), (qt, st) = (
        (abs(lit) - 1, 1.0 if lit > 0 else -1.0) for lit in lits
    )
    if max(qa, qb, qt) >= num_vars:
        raise CircuitError("clause variable out of range")
    # X-conjugation of controls whose effective sign must flip (f_i = -s_i).
    for qubit, sign in ((qa, sa), (qb, sb)):
        if sign > 0:
            circuit.x(qubit)
    circuit.ccx(qa, qb, qt)
    circuit.rz(-gamma * st / 2.0, qt)
    circuit.ccx(qa, qb, qt)
    for qubit, sign in ((qa, sa), (qb, sb)):
        if sign > 0:
            circuit.x(qubit)
    # Residual single-variable terms.
    circuit.rz(gamma * st / 2.0, qt)
    circuit.rz(gamma * sa / 4.0, qa)
    circuit.rz(gamma * sb / 4.0, qb)
    # Control-control quadratic term via a 2-qubit ladder.
    circuit.cx(qa, qb)
    circuit.rz(gamma * sa * sb / 4.0, qb)
    circuit.cx(qa, qb)
    return circuit


def cost_unitary_diagonal(polynomial: IsingPolynomial, gamma: float) -> np.ndarray:
    """Exact diagonal of ``exp(-i*gamma*H)`` including the constant term.

    Reference implementation for equivalence tests: evaluates the
    polynomial on every computational basis state directly.
    """
    n = polynomial.num_vars
    z = projector_phase_polynomial(n)  # (2**n, n) of +-1
    energies = np.zeros(2**n)
    for monomial, coefficient in polynomial.coefficients.items():
        if monomial:
            energies += coefficient * np.prod(z[:, list(monomial)], axis=1)
        else:
            energies += coefficient
    return np.exp(-1j * gamma * energies)
