"""QAOA output evaluation: expected cost and best sampled assignment."""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit, circuit_statevector
from ..linalg import projector_phase_polynomial
from ..sat.cnf import CnfFormula
from ..sat.polynomial import formula_polynomial


def expected_unsatisfied(formula: CnfFormula, circuit: QuantumCircuit) -> float:
    """Expected number of unsatisfied clauses ``<psi|H|psi>`` after ``circuit``.

    ``H`` is diagonal, so the expectation is a probability-weighted average
    of the clause-violation counts over basis states.
    """
    state = circuit_statevector(circuit.without_measurements())
    probs = np.abs(state) ** 2
    polynomial = formula_polynomial(formula)
    n = formula.num_vars
    z = projector_phase_polynomial(n)
    energies = np.zeros(2**n)
    for monomial, coefficient in polynomial.coefficients.items():
        if monomial:
            energies += coefficient * np.prod(z[:, list(monomial)], axis=1)
        else:
            energies += coefficient
    return float(probs @ energies)


def sample_best_assignment(
    formula: CnfFormula,
    circuit: QuantumCircuit,
    shots: int = 1024,
    seed: int = 0,
) -> tuple[list[bool], int]:
    """Sample the circuit and return the best assignment seen.

    Mirrors Figure 1(c)/(d): execute repeatedly, interpret each bitstring
    as an assignment, and keep the one satisfying the most clauses.
    """
    state = circuit_statevector(circuit.without_measurements())
    probs = np.abs(state) ** 2
    probs = probs / probs.sum()
    rng = np.random.default_rng(seed)
    samples = rng.choice(len(probs), size=shots, p=probs)
    best_assignment: list[bool] = [False] * formula.num_vars
    best_score = -1
    for basis in np.unique(samples):
        assignment = [
            (int(basis) >> q) & 1 == 1 for q in range(formula.num_vars)
        ]
        score = formula.num_satisfied(assignment)
        if score > best_score:
            best_assignment, best_score = assignment, score
    return best_assignment, best_score
