"""QAOA output evaluation: expected cost and best sampled assignment."""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit, circuit_statevector
from ..exceptions import SimulationError
from ..linalg import MAX_STATEVECTOR_QUBITS
from ..rng import as_generator
from ..sat.cnf import CnfFormula


def formula_energies(formula: CnfFormula) -> np.ndarray:
    """Weighted unsatisfied-clause count of every basis state.

    Entry ``b`` is the cost-Hamiltonian eigenvalue of basis state ``b``
    (little-endian: bit ``i`` of ``b`` is variable ``i+1``).  Computed
    clause-by-clause with vectorized bit masks — a clause is violated
    exactly when every literal is false — which is both exact and much
    faster than expanding the phase polynomial monomial by monomial.
    Shared by the analytic expectation below and the execution
    simulator's scoring layer (:mod:`repro.sim.score`).
    """
    n = formula.num_vars
    if n > MAX_STATEVECTOR_QUBITS:
        raise SimulationError(
            f"cannot tabulate energies for {n} variables "
            f"(limit {MAX_STATEVECTOR_QUBITS})"
        )
    basis = np.arange(1 << n, dtype=np.int64)
    bits = [(basis >> q) & 1 == 1 for q in range(n)]
    energies = np.zeros(1 << n)
    for clause in formula.clauses:
        violated = np.ones(1 << n, dtype=bool)
        for literal in clause.literals:
            value = bits[abs(literal) - 1]
            violated &= ~value if literal > 0 else value
        energies[violated] += clause.weight
    return energies


def expected_unsatisfied(formula: CnfFormula, circuit: QuantumCircuit) -> float:
    """Expected number of unsatisfied clauses ``<psi|H|psi>`` after ``circuit``.

    ``H`` is diagonal, so the expectation is a probability-weighted average
    of the clause-violation counts over basis states.
    """
    state = circuit_statevector(circuit.without_measurements())
    probs = np.abs(state) ** 2
    return float(probs @ formula_energies(formula))


def sample_best_assignment(
    formula: CnfFormula,
    circuit: QuantumCircuit,
    shots: int = 1024,
    seed: int | np.random.Generator = 0,
) -> tuple[list[bool], int]:
    """Sample the circuit and return the best assignment seen.

    Mirrors Figure 1(c)/(d): execute repeatedly, interpret each bitstring
    as an assignment, and keep the one satisfying the most clauses.
    ``seed`` accepts an integer or a ``numpy.random.Generator``.
    """
    state = circuit_statevector(circuit.without_measurements())
    probs = np.abs(state) ** 2
    probs = probs / probs.sum()
    rng = as_generator(seed)
    samples = rng.choice(len(probs), size=shots, p=probs)
    best_assignment: list[bool] = [False] * formula.num_vars
    best_score = -1
    for basis in np.unique(samples):
        assignment = [
            (int(basis) >> q) & 1 == 1 for q in range(formula.num_vars)
        ]
        score = formula.num_satisfied(assignment)
        if score > best_score:
            best_assignment, best_score = assignment, score
    return best_assignment, best_score
