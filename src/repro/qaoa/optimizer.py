"""Classical QAOA parameter optimization (the hybrid outer loop, §2.1).

"QAOA is a hybrid quantum-classical algorithm that uses a quantum computer
to run a parameterized quantum circuit while a classical computer
optimizes the parameters."  This module provides that classical half: a
coordinate-descent optimizer over (gamma, beta) angles with the simulated
expectation value as the objective.  It operates on the *logical* circuit
(the simulator stands in for the QPU), so it composes with any backend
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import CircuitError
from ..sat.cnf import CnfFormula
from .builder import QaoaParameters, qaoa_circuit
from .energy import expected_unsatisfied


@dataclass
class OptimizationResult:
    """Outcome of the classical angle search."""

    parameters: QaoaParameters
    expected_unsatisfied: float
    evaluations: int
    history: list[tuple[QaoaParameters, float]] = field(default_factory=list)


def _evaluate(formula: CnfFormula, parameters: QaoaParameters) -> float:
    circuit = qaoa_circuit(formula, parameters, measure=False)
    return expected_unsatisfied(formula, circuit)


def grid_search(
    formula: CnfFormula,
    gammas: tuple[float, ...] = (-1.2, -0.8, -0.4, 0.4, 0.8, 1.2),
    betas: tuple[float, ...] = (0.15, 0.3, 0.45),
) -> OptimizationResult:
    """Coarse single-layer grid search — the usual warm start."""
    best: tuple[QaoaParameters, float] | None = None
    history = []
    for gamma in gammas:
        for beta in betas:
            parameters = QaoaParameters((gamma,), (beta,))
            value = _evaluate(formula, parameters)
            history.append((parameters, value))
            if best is None or value < best[1]:
                best = (parameters, value)
    assert best is not None
    return OptimizationResult(
        parameters=best[0],
        expected_unsatisfied=best[1],
        evaluations=len(history),
        history=history,
    )


def coordinate_descent(
    formula: CnfFormula,
    initial: QaoaParameters | None = None,
    iterations: int = 3,
    step: float = 0.2,
    shrink: float = 0.5,
) -> OptimizationResult:
    """Refine angles by cyclic coordinate descent with shrinking steps.

    Each sweep tries ``angle +- step`` for every coordinate and keeps any
    improvement; the step halves per sweep.  Simple, derivative-free, and
    deterministic — adequate for the shallow circuits the paper evaluates.
    """
    if iterations < 1:
        raise CircuitError("need at least one optimization sweep")
    parameters = initial or grid_search(formula).parameters
    value = _evaluate(formula, parameters)
    evaluations = 1
    history = [(parameters, value)]
    current_step = step
    for _ in range(iterations):
        angles = list(parameters.gammas) + list(parameters.betas)
        for index in range(len(angles)):
            for delta in (current_step, -current_step):
                trial = list(angles)
                trial[index] += delta
                num_layers = parameters.num_layers
                trial_params = QaoaParameters(
                    tuple(trial[:num_layers]), tuple(trial[num_layers:])
                )
                trial_value = _evaluate(formula, trial_params)
                evaluations += 1
                if trial_value < value - 1e-12:
                    parameters, value = trial_params, trial_value
                    angles = trial
                    history.append((parameters, value))
        current_step *= shrink
    return OptimizationResult(
        parameters=parameters,
        expected_unsatisfied=value,
        evaluations=evaluations,
        history=history,
    )


def optimize_angles(
    formula: CnfFormula,
    layers: int = 1,
    iterations: int = 3,
) -> OptimizationResult:
    """Grid-search warm start + coordinate descent, optionally multi-layer.

    For ``layers > 1`` the single-layer optimum is replicated across
    layers before refinement (the standard interpolation heuristic).
    """
    warm = grid_search(formula)
    parameters = warm.parameters
    if layers > 1:
        parameters = QaoaParameters(
            tuple(parameters.gammas) * layers, tuple(parameters.betas) * layers
        )
    refined = coordinate_descent(formula, initial=parameters, iterations=iterations)
    refined.history = warm.history + refined.history
    refined.evaluations += warm.evaluations
    return refined
