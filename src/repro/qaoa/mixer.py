"""QAOA initialization and mixer layers (paper §5: "QAOA Init/Mixer")."""

from __future__ import annotations

from ..circuits import QuantumCircuit


def initialization_circuit(num_qubits: int) -> QuantumCircuit:
    """Uniform superposition: Hadamard on every qubit (mixer ground state)."""
    circuit = QuantumCircuit(num_qubits, name="qaoa-init")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def mixer_circuit(num_qubits: int, beta: float) -> QuantumCircuit:
    """Transverse-field mixer ``exp(-i*beta*sum X_i)``: ``RX(2*beta)`` each."""
    circuit = QuantumCircuit(num_qubits, name="qaoa-mixer")
    for qubit in range(num_qubits):
        circuit.rx(2.0 * beta, qubit)
    return circuit
