"""Distribution-level equivalence: Hellinger fidelity (paper §2.2, [28]).

The paper's fidelity metric builds on Qiskit's ``hellinger_fidelity``:
compare the output distributions of two circuits rather than their
unitaries.  This is the right tool for *measured* programs (unitary
comparison is undefined once measurements collapse the state) and for
sampled hardware results.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from ..circuits import QuantumCircuit, measurement_distribution
from ..exceptions import VerificationError
from ..rng import as_generator


def hellinger_fidelity(
    p: Mapping[str, float], q: Mapping[str, float], atol: float = 1e-9
) -> float:
    """Hellinger fidelity ``(sum_i sqrt(p_i q_i))^2`` of two distributions.

    1.0 for identical distributions, 0.0 for disjoint support; tolerant of
    missing keys (treated as probability zero).
    """
    for name, dist in (("p", p), ("q", q)):
        total = sum(dist.values())
        if abs(total - 1.0) > 1e-6:
            raise VerificationError(
                f"distribution {name} sums to {total}, not 1"
            )
        if any(v < -atol for v in dist.values()):
            raise VerificationError(f"distribution {name} has negative mass")
    overlap = 0.0
    for key in set(p) | set(q):
        overlap += math.sqrt(max(p.get(key, 0.0), 0.0) * max(q.get(key, 0.0), 0.0))
    return overlap**2


def sampled_distribution(
    circuit: QuantumCircuit, shots: int = 4096,
    seed: int | np.random.Generator = 0,
) -> dict[str, float]:
    """Finite-shot estimate of a circuit's output distribution."""
    exact = measurement_distribution(circuit)
    keys = list(exact)
    probs = np.array([exact[k] for k in keys])
    probs = probs / probs.sum()
    rng = as_generator(seed)
    counts = rng.multinomial(shots, probs)
    return {k: c / shots for k, c in zip(keys, counts) if c}


def distributions_equivalent(
    a: QuantumCircuit,
    b: QuantumCircuit,
    threshold: float = 0.999,
) -> tuple[bool, float]:
    """Whether two circuits' ideal output distributions agree.

    A weaker check than unitary equivalence (diagonal phases are
    invisible) but applicable to measured circuits and cheap at any width
    the statevector simulator can reach.  Returns (verdict, fidelity).
    """
    fidelity = hellinger_fidelity(
        measurement_distribution(a), measurement_distribution(b)
    )
    return (fidelity >= threshold, fidelity)
