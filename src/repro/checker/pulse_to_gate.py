"""Pulse-to-gate conversion: simulate annotations, recover logical gates.

This is the first wChecker stage (Figure 9): the FPQA annotation stream is
replayed through the device state machine, so atom positions are known
before each Rydberg pulse; the pulse then converts to the CZ/CCZ gates its
interaction clusters imply, and Raman pulses convert to the single-qubit
rotations their angles specify (§4.2: a local Raman pulse is a single U3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits import Instruction, QuantumCircuit
from ..circuits.gates import gate_matrix, make_gate, u3_from_matrix
from ..exceptions import VerificationError
from ..fpqa.device import FPQADevice
from ..fpqa.hardware import FPQAHardwareParams
from ..fpqa.instructions import (
    AodInit,
    BindAtom,
    FPQAInstruction,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    SlmInit,
    Transfer,
)
from ..wqasm.program import WQasmProgram


@dataclass
class ConversionResult:
    """Gates recovered from one instruction batch."""

    gates: list[Instruction] = field(default_factory=list)


class PulseToGateConverter:
    """Replays FPQA instructions and emits the logical gates they imply."""

    def __init__(self, num_qubits: int, hardware: FPQAHardwareParams | None = None):
        self.num_qubits = num_qubits
        self.device = FPQADevice(hardware)

    def convert(self, instruction: FPQAInstruction) -> list[Instruction]:
        """Apply one instruction; return the logical gates it produces.

        Setup and movement instructions produce no gates but mutate the
        simulated device state; pulses produce gates.
        """
        if isinstance(instruction, RamanLocal):
            self.device.apply(instruction)
            if not 0 <= instruction.qubit < self.num_qubits:
                raise VerificationError(
                    f"Raman pulse addresses qubit {instruction.qubit} outside the program"
                )
            matrix = gate_matrix(
                "raman", (instruction.x, instruction.y, instruction.z)
            )
            return [Instruction(u3_from_matrix(matrix), (instruction.qubit,))]
        if isinstance(instruction, RamanGlobal):
            self.device.apply(instruction)
            matrix = gate_matrix(
                "raman", (instruction.x, instruction.y, instruction.z)
            )
            gate = u3_from_matrix(matrix)
            return [
                Instruction(gate, (qubit,)) for qubit in sorted(self.device.qubit_location)
            ]
        if isinstance(instruction, RydbergPulse):
            clusters = self.device.apply(instruction)
            gates = []
            for cluster in clusters:
                name = (
                    "cz"
                    if cluster.size == 2
                    else ("ccz" if cluster.size == 3 else "mcz")
                )
                gates.append(
                    Instruction(
                        make_gate(name, num_qubits=cluster.size),
                        tuple(sorted(cluster.qubits)),
                    )
                )
            return gates
        if isinstance(
            instruction, (SlmInit, AodInit, BindAtom, Transfer, Shuttle, ParallelShuttle)
        ):
            self.device.apply(instruction)
            return []
        raise VerificationError(f"unknown FPQA instruction {instruction!r}")


def reconstruct_circuit(
    program: WQasmProgram, hardware: FPQAHardwareParams | None = None
) -> QuantumCircuit:
    """Full pulse-to-gate conversion of a program's annotation stream.

    The output circuit is derived *only* from the FPQA instructions — the
    program's logical gate statements are deliberately ignored, so that
    comparing the two catches any miscompilation.
    """
    converter = PulseToGateConverter(program.num_qubits, hardware)
    circuit = QuantumCircuit(program.num_qubits, name=f"{program.name}-reconstructed")
    for instruction in program.fpqa_instructions():
        for gate in converter.convert(instruction):
            circuit.append(gate.gate, gate.qubits)
    return circuit
