"""The wChecker: end-to-end verification of compiled FPQA programs.

Three layers of evidence, from cheap/scalable to exhaustive:

1. **Per-operation check** (O(N^2 M), the complexity the paper states):
   every wQasm operation's pulses are replayed on the device simulator and
   the implied gates are matched against the logical gates the program
   recorded — Rydberg clusters must agree in membership and arity, Raman
   angles must match their logical rotations (Figure 9's three conditions).
2. **Reconstructed-vs-logical** equivalence: the circuit rebuilt purely
   from annotations is compared against the program's logical circuit.
3. **Logical-vs-reference** equivalence: the logical circuit is compared
   against the original hardware-agnostic circuit the user submitted.

Layers 2 and 3 use dense unitaries or statevector probing depending on
size (see :mod:`repro.checker.unitary_check`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits import Instruction, QuantumCircuit
from ..exceptions import EquivalenceError, FPQAConstraintError, VerificationError
from ..fpqa.hardware import FPQAHardwareParams
from ..linalg import allclose_up_to_global_phase
from ..wqasm.program import WQasmProgram
from .pulse_to_gate import PulseToGateConverter
from .unitary_check import EquivalenceMethod, equivalence_check


@dataclass
class CheckReport:
    """Outcome of a wChecker run."""

    ok: bool
    operations_checked: int = 0
    operation_failures: list[str] = field(default_factory=list)
    reconstructed_equivalent: bool | None = None
    reconstructed_method: EquivalenceMethod | None = None
    reference_equivalent: bool | None = None
    reference_method: EquivalenceMethod | None = None

    def raise_on_failure(self) -> None:
        if not self.ok:
            details = "; ".join(self.operation_failures[:5]) or "equivalence check failed"
            raise EquivalenceError(details)


def _gates_by_qubits(gates: tuple[Instruction, ...] | list[Instruction]):
    table: dict[tuple[int, ...], list[Instruction]] = {}
    for gate in gates:
        table.setdefault(tuple(sorted(gate.qubits)), []).append(gate)
    return table


class WChecker:
    """Verifies that FPQA annotations implement the claimed logical circuit."""

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        atol: float = 1e-7,
        max_probe_qubits: int = 16,
    ):
        """``max_probe_qubits`` bounds the expensive statevector probing in
        layers 2/3; above it the checker relies on the per-operation layer
        (the paper's O(N^2 M) check), reporting ``None`` for those layers.
        """
        self.hardware = hardware or FPQAHardwareParams()
        self.atol = atol
        self.max_probe_qubits = max_probe_qubits

    # ------------------------------------------------------------------
    def check(
        self,
        program: WQasmProgram,
        reference: QuantumCircuit | None = None,
    ) -> CheckReport:
        """Run all checker layers; see the module docstring."""
        report = CheckReport(ok=True)
        reconstructed = self._check_operations(program, report)
        if report.operation_failures:
            report.ok = False
        verdict, method = equivalence_check(
            reconstructed,
            program.logical_circuit(),
            atol=self.atol,
            max_probe_qubits=self.max_probe_qubits,
        )
        report.reconstructed_equivalent = verdict
        report.reconstructed_method = method
        if verdict is False:
            report.ok = False
            report.operation_failures.append(
                "reconstructed circuit differs from the logical circuit"
            )
        if reference is not None:
            ref_verdict, ref_method = equivalence_check(
                program.logical_circuit(),
                reference,
                atol=self.atol,
                max_probe_qubits=self.max_probe_qubits,
            )
            report.reference_equivalent = ref_verdict
            report.reference_method = ref_method
            if ref_verdict is False:
                report.ok = False
                report.operation_failures.append(
                    "logical circuit differs from the reference circuit"
                )
        return report

    # ------------------------------------------------------------------
    def _check_operations(
        self, program: WQasmProgram, report: CheckReport
    ) -> QuantumCircuit:
        """Layer 1: per-operation pulse-to-gate agreement.

        Returns the fully reconstructed circuit as a byproduct.
        """
        converter = PulseToGateConverter(program.num_qubits, self.hardware)
        reconstructed = QuantumCircuit(
            program.num_qubits, name=f"{program.name}-reconstructed"
        )
        for instruction in program.setup:
            try:
                converter.convert(instruction)
            except (FPQAConstraintError, VerificationError) as exc:
                report.operation_failures.append(f"setup: {exc}")
                report.ok = False
                return reconstructed
        for index, operation in enumerate(program.operations):
            report.operations_checked += 1
            recovered: list[Instruction] = []
            try:
                for instruction in operation.instructions:
                    recovered.extend(converter.convert(instruction))
            except (FPQAConstraintError, VerificationError) as exc:
                report.operation_failures.append(f"op {index}: {exc}")
                continue
            for gate in recovered:
                reconstructed.append(gate.gate, gate.qubits)
            self._match_gates(index, recovered, operation.gates, report)
        return reconstructed

    def _match_gates(
        self,
        index: int,
        recovered: list[Instruction],
        recorded: tuple[Instruction, ...],
        report: CheckReport,
    ) -> None:
        """Match pulses' implied gates against the recorded logical gates."""
        got = _gates_by_qubits(recovered)
        want = _gates_by_qubits(recorded)
        if set(got) != set(want):
            report.operation_failures.append(
                f"op {index}: pulses touch qubit groups {sorted(got)} but the "
                f"logical statement claims {sorted(want)}"
            )
            return
        for qubits, want_gates in want.items():
            got_gates = got[qubits]
            if len(got_gates) != len(want_gates):
                report.operation_failures.append(
                    f"op {index}: gate count mismatch on qubits {qubits}"
                )
                continue
            for got_gate, want_gate in zip(got_gates, want_gates):
                if not got_gate.gate.is_unitary or not want_gate.gate.is_unitary:
                    continue
                if not allclose_up_to_global_phase(
                    got_gate.gate.matrix(), want_gate.gate.matrix(), atol=self.atol
                ):
                    report.operation_failures.append(
                        f"op {index}: pulse on qubits {qubits} implements "
                        f"{got_gate.gate} but the statement claims {want_gate.gate}"
                    )


def check_program(
    program: WQasmProgram,
    reference: QuantumCircuit | None = None,
    hardware: FPQAHardwareParams | None = None,
) -> CheckReport:
    """Convenience wrapper: build a :class:`WChecker` and run it."""
    return WChecker(hardware=hardware).check(program, reference)
