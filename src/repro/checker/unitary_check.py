"""Unitary equivalence checking with size-adaptive strategies.

The challenge (§3.1 #3) is the exponential cost of representing quantum
states classically.  The checker therefore picks the strongest affordable
method: exact dense unitaries for small circuits, random-statevector
probing for medium ones, and reports the method used so callers can judge
the evidence.
"""

from __future__ import annotations

import enum

from ..circuits import QuantumCircuit, circuit_statevector, circuit_unitary
from ..rng import as_generator
from ..linalg import (
    MAX_STATEVECTOR_QUBITS,
    MAX_UNITARY_QUBITS,
    allclose_up_to_global_phase,
    random_statevector,
)


class EquivalenceMethod(enum.Enum):
    UNITARY = "unitary"
    STATEVECTOR_PROBE = "statevector-probe"
    TOO_LARGE = "too-large"


def equivalence_check(
    a: QuantumCircuit,
    b: QuantumCircuit,
    atol: float = 1e-7,
    probes: int = 3,
    seed: int = 11,
    max_probe_qubits: int = MAX_STATEVECTOR_QUBITS,
) -> tuple[bool | None, EquivalenceMethod]:
    """Check functional equivalence up to global phase.

    Returns ``(verdict, method)``; verdict is ``None`` when the circuits
    exceed the affordable methods, in which case callers should rely on
    the per-operation structural check instead.  ``max_probe_qubits``
    bounds the (expensive) statevector probing; set it below
    ``MAX_UNITARY_QUBITS`` to disable probing entirely.
    """
    if a.num_qubits != b.num_qubits:
        return (False, EquivalenceMethod.UNITARY)
    n = a.num_qubits
    a = a.without_measurements()
    b = b.without_measurements()
    if n <= MAX_UNITARY_QUBITS:
        same = allclose_up_to_global_phase(
            circuit_unitary(a), circuit_unitary(b), atol=atol
        )
        return (bool(same), EquivalenceMethod.UNITARY)
    if n <= min(max_probe_qubits, MAX_STATEVECTOR_QUBITS):
        rng = as_generator(seed)
        for _ in range(probes):
            probe = random_statevector(n, rng)
            out_a = circuit_statevector(a, probe)
            out_b = circuit_statevector(b, probe)
            if not allclose_up_to_global_phase(out_a, out_b, atol=max(atol, 1e-6)):
                return (False, EquivalenceMethod.STATEVECTOR_PROBE)
        return (True, EquivalenceMethod.STATEVECTOR_PROBE)
    return (None, EquivalenceMethod.TOO_LARGE)
