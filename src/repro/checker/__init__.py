"""wChecker: equivalence checking for retargeted FPQA programs (paper §6).

The checker replays a wQasm program's FPQA annotation stream through the
:class:`repro.fpqa.FPQADevice` simulator, translating pulses into logical
gates (pulse-to-gate conversion, Figure 9), and then verifies:

1. every pulse implements exactly the logical gates the program claims
   (per-operation check, any program size); and
2. the reconstructed circuit is functionally equivalent to a reference —
   dense unitaries up to :data:`repro.linalg.MAX_UNITARY_QUBITS` qubits,
   random-statevector probing beyond that.
"""

from .pulse_to_gate import PulseToGateConverter, reconstruct_circuit
from .unitary_check import EquivalenceMethod, equivalence_check
from .checker import CheckReport, WChecker, check_program
from .statistics import (
    distributions_equivalent,
    hellinger_fidelity,
    sampled_distribution,
)

__all__ = [
    "CheckReport",
    "EquivalenceMethod",
    "PulseToGateConverter",
    "WChecker",
    "check_program",
    "distributions_equivalent",
    "equivalence_check",
    "hellinger_fidelity",
    "reconstruct_circuit",
    "sampled_distribution",
]
