"""The :class:`Workload` abstraction: what a target compiles.

Weaver's front end (paper Figure 3) accepts a problem in several shapes —
a MAX-3SAT formula, an OpenQASM circuit, or an already-built QAOA
circuit — and every backend consumes one of two canonical forms:

* the **formula** form, required by the clause-structured FPQA paths
  (clause coloring needs the CNF structure, not just gates); and
* the **circuit** form, sufficient for gate-level paths such as the
  superconducting transpiler.

:class:`Workload` normalizes all accepted inputs into one object carrying
whichever forms are available, and :func:`coerce_workload` is the single
place the public API converts user input.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from ..circuits import QuantumCircuit
from ..exceptions import WorkloadError
from ..qaoa.builder import QaoaParameters, qaoa_circuit
from ..sat.cnf import CnfFormula
from ..sat.dimacs import parse_dimacs, to_dimacs


@dataclass(frozen=True)
class Workload:
    """A compilation input: a named problem in formula and/or circuit form.

    Exactly one of ``formula`` / ``raw_circuit`` may be ``None``.  Use the
    ``from_*`` constructors (or :func:`coerce_workload`) rather than the
    raw dataclass fields.
    """

    name: str
    formula: CnfFormula | None = None
    raw_circuit: QuantumCircuit | None = None
    source: str = "memory"
    _circuit_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_formula(cls, formula: CnfFormula, name: str | None = None) -> "Workload":
        """Wrap a CNF formula (the paper's MAX-3SAT workload)."""
        return cls(name=name or formula.name, formula=formula, source="formula")

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit, name: str | None = None) -> "Workload":
        """Wrap a prebuilt circuit (e.g. a hand-written QAOA ansatz)."""
        return cls(
            name=name or getattr(circuit, "name", "circuit") or "circuit",
            raw_circuit=circuit,
            source="circuit",
        )

    @classmethod
    def from_qasm(cls, source: str, name: str | None = None) -> "Workload":
        """Parse OpenQASM 3 source text into a circuit workload."""
        from ..qasm import qasm_to_circuit

        circuit = qasm_to_circuit(source, name=name or "qasm")
        return cls(name=name or "qasm", raw_circuit=circuit, source="qasm")

    @classmethod
    def from_file(cls, path: str | Path) -> "Workload":
        """Load a workload from a ``.cnf`` (DIMACS) or ``.qasm`` file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise WorkloadError(f"cannot read workload file {path}: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise WorkloadError(f"workload file {path} is not UTF-8 text: {exc}") from exc
        # The suffix is authoritative; content sniffing only breaks ties
        # for unknown extensions (a QASM file may well start with "c...").
        suffix = path.suffix.lower()
        is_qasm = suffix in (".qasm", ".wqasm") or (
            suffix not in (".cnf", ".dimacs") and "OPENQASM" in text[:200]
        )
        if is_qasm:
            workload = cls.from_qasm(text, name=path.stem)
            return cls(
                name=path.stem, raw_circuit=workload.raw_circuit, source=str(path)
            )
        if suffix in (".cnf", ".dimacs") or text.lstrip().startswith(("c", "p cnf")):
            formula = parse_dimacs(text, name=path.stem)
            return cls(name=path.stem, formula=formula, source=str(path))
        raise WorkloadError(
            f"cannot infer workload format of {path}: expected DIMACS CNF "
            "(.cnf) or OpenQASM (.qasm)"
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def has_formula(self) -> bool:
        return self.formula is not None

    @property
    def num_qubits(self) -> int:
        if self.formula is not None:
            return self.formula.num_vars
        return self.raw_circuit.num_qubits

    @property
    def num_clauses(self) -> int | None:
        return self.formula.num_clauses if self.formula is not None else None

    def require_formula(self, target: str) -> CnfFormula:
        """The CNF form, or a clear error naming the target that needs it."""
        if self.formula is None:
            raise WorkloadError(
                f"target {target!r} compiles clause structure and needs a CNF "
                f"formula workload; {self.name!r} only provides a circuit"
            )
        return self.formula

    def circuit(
        self, parameters: QaoaParameters | None = None, measure: bool = True
    ) -> QuantumCircuit:
        """The gate-level form: the raw circuit, or its QAOA lowering.

        For formula workloads this is the shared MAX-3SAT -> QAOA lowering
        of paper §A.4.1 (cached per parameter set).
        """
        if self.raw_circuit is not None:
            return self.raw_circuit
        key = (parameters or QaoaParameters(), measure)
        if key not in self._circuit_cache:
            self._circuit_cache[key] = qaoa_circuit(
                self.formula, parameters or QaoaParameters(), measure=measure
            )
        return self._circuit_cache[key]

    def cache_key(self) -> str:
        """Stable content hash used by the on-disk result cache."""
        if self.formula is not None:
            payload = to_dimacs(self.formula)
        else:
            from ..qasm import circuit_to_qasm

            payload = circuit_to_qasm(self.raw_circuit)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        return f"{self.name}-{digest}"


def coerce_workload(obj) -> Workload:
    """Normalize any accepted input into a :class:`Workload`.

    Accepts a :class:`Workload` (returned as-is), a :class:`CnfFormula`,
    a :class:`QuantumCircuit`, a path to a ``.cnf``/``.qasm`` file, or
    OpenQASM source text.
    """
    if isinstance(obj, Workload):
        return obj
    if isinstance(obj, CnfFormula):
        return Workload.from_formula(obj)
    if isinstance(obj, QuantumCircuit):
        return Workload.from_circuit(obj)
    if isinstance(obj, Path):
        return Workload.from_file(obj)
    if isinstance(obj, str):
        if "OPENQASM" in obj or "\n" in obj:
            return Workload.from_qasm(obj)
        return Workload.from_file(obj)
    raise WorkloadError(
        f"cannot build a workload from {type(obj).__name__}; expected "
        "Workload, CnfFormula, QuantumCircuit, OpenQASM text, or a file path"
    )
