"""The :class:`Target` protocol: what it means to be a Weaver backend.

A target bundles (paper Figure 3, "retargetable back end"):

* **capabilities** — which workload forms it consumes and what it emits;
* **hardware parameters** — the device model the cost estimates use;
* **a default pass pipeline** — the names of the stages it runs, surfaced
  for documentation and the ``repro targets`` CLI listing.

Concrete targets implement :meth:`Target.run` and are registered by name
in :mod:`repro.targets.registry`; user code goes through
:func:`repro.compile` or :class:`repro.CompilerSession` and never
instantiates targets directly unless it wants non-default hardware.
"""

from __future__ import annotations

import abc

from ..baselines.base import Deadline
from ..exceptions import CompilationTimeout
from ..qaoa.builder import QaoaParameters
from .result import CompilationResult
from .workload import Workload

#: Capability labels (a target advertises a subset).
CAP_FORMULA = "formula"  #: consumes CNF-formula workloads
CAP_CIRCUIT = "circuit"  #: consumes gate-level circuit workloads
CAP_WQASM = "wqasm"  #: emits a wQasm program
CAP_VERIFY = "verify"  #: results can be checked with the wChecker


class Target(abc.ABC):
    """One compilation backend behind the unified ``repro.compile`` API."""

    #: Registry key, e.g. ``"fpqa"``.
    name: str = "target"
    #: One-line human description for the CLI listing.
    description: str = ""
    #: Subset of the ``CAP_*`` labels.
    capabilities: frozenset[str] = frozenset()
    #: Stage names of the default pass pipeline, for documentation.
    default_pipeline: tuple[str, ...] = ()
    #: Default per-compilation budget in seconds (``None`` = unlimited).
    default_budget_seconds: float | None = None

    @abc.abstractmethod
    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        **options,
    ) -> CompilationResult:
        """Compile ``workload`` and return a result (raise on failure)."""

    # ------------------------------------------------------------------
    def compile(
        self,
        workload: Workload,
        parameters: QaoaParameters | None = None,
        budget_seconds: float | None = None,
        deadline: Deadline | None = None,
        on_error: str = "raise",
        **options,
    ) -> CompilationResult:
        """Compile with budget handling; the template every caller uses.

        ``on_error="raise"`` propagates compiler errors (interactive use);
        ``on_error="result"`` converts timeouts and failures into result
        rows, the behavior evaluation sweeps need (the paper's "X" cells).
        """
        if deadline is None:
            budget = (
                budget_seconds
                if budget_seconds is not None
                else self.default_budget_seconds
            )
            deadline = Deadline(budget, self.name)
        try:
            result = self.run(workload, parameters, deadline, **options)
            deadline.check()
        except CompilationTimeout:
            if on_error == "raise":
                raise
            return self._failure_row(workload, deadline, timed_out=True)
        except Exception as exc:  # noqa: BLE001 — sweep mode reports, not crashes
            if on_error == "raise":
                raise
            return self._failure_row(
                workload, deadline, error=f"{type(exc).__name__}: {exc}"
            )
        return result

    def _failure_row(
        self,
        workload: Workload,
        deadline: Deadline,
        timed_out: bool = False,
        error: str | None = None,
    ) -> CompilationResult:
        return CompilationResult(
            target=self.name,
            workload=workload.name,
            num_qubits=workload.num_qubits,
            num_clauses=workload.num_clauses,
            device=getattr(self, "device_name", None),
            compile_seconds=deadline.elapsed,
            timed_out=timed_out,
            error=error,
        )

    # ------------------------------------------------------------------
    @classmethod
    def describe(cls) -> dict:
        """Registry/CLI view of this target (class metadata only, so the
        ``targets`` listing never constructs backends)."""
        return {
            "name": cls.name,
            "description": cls.description,
            "capabilities": sorted(cls.capabilities),
            "pipeline": list(cls.default_pipeline),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
