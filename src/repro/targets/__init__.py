"""``repro.targets``: the unified retargetable compilation API.

One entrypoint, a backend registry, and batched sessions::

    import repro

    result = repro.compile("problem.cnf", target="fpqa")

    session = repro.CompilerSession(budgets={"dpqa": 60.0})
    rows = session.compile_many(workloads, targets=["fpqa", "atomique"],
                                parallel=4)

See :mod:`repro.targets.base` for the :class:`Target` protocol and
:mod:`repro.targets.registry` for adding backends.
"""

from .api import compile
from .base import (
    CAP_CIRCUIT,
    CAP_FORMULA,
    CAP_VERIFY,
    CAP_WQASM,
    Target,
)
from .builtin import (
    AtomiqueTarget,
    BaselineTarget,
    DpqaTarget,
    FPQATarget,
    GeyserTarget,
    NoCompressFPQATarget,
    SuperconductingTarget,
)
from .registry import (
    available_targets,
    get_target,
    register_target,
    resolve_target_name,
    target_info,
)
from .result import CompilationResult
from .session import CompilerSession
from .workload import Workload, coerce_workload

__all__ = [
    "CAP_CIRCUIT",
    "CAP_FORMULA",
    "CAP_VERIFY",
    "CAP_WQASM",
    "AtomiqueTarget",
    "BaselineTarget",
    "CompilationResult",
    "CompilerSession",
    "DpqaTarget",
    "FPQATarget",
    "GeyserTarget",
    "NoCompressFPQATarget",
    "SuperconductingTarget",
    "Target",
    "Workload",
    "available_targets",
    "coerce_workload",
    "compile",
    "get_target",
    "register_target",
    "resolve_target_name",
    "target_info",
]
