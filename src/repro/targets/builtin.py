"""The six built-in targets behind the registry.

Two native implementations and a generic adapter:

* :class:`FPQATarget` — the real Weaver pipeline (wOptimizer passes plus
  code generation), the paper's FPQA path.  ``fpqa-nocompress`` is the
  same target with 3-qubit gate compression forced off (Figure 10c's
  ablation).
* :class:`SuperconductingTarget` — the Qiskit-style transpiler path onto
  the 127-qubit heavy-hex backend.  The only target that consumes raw
  circuit workloads as well as formulas.
* :class:`BaselineTarget` — adapter class exposing the re-implemented
  comparison compilers (Atomique, Geyser, DPQA) through the same seam.
"""

from __future__ import annotations

from ..baselines.base import Deadline
from ..exceptions import RoutingError, TargetError
from ..fpqa.hardware import FPQAHardwareParams
from ..metrics.fidelity import program_eps
from ..metrics.timing import program_duration_us
from ..qaoa.builder import QaoaParameters
from .base import CAP_CIRCUIT, CAP_FORMULA, CAP_VERIFY, CAP_WQASM, Target
from .result import CompilationResult
from .workload import Workload


def _reject_unknown_options(target: str, options: dict) -> None:
    """Unknown compile options are an error, never a silent no-op."""
    if options:
        raise TargetError(
            f"target {target!r} does not support option(s): "
            f"{', '.join(sorted(options))}"
        )


class FPQATarget(Target):
    """Weaver's FPQA path: clause coloring -> shuttling -> compression."""

    name = "fpqa"
    description = "Weaver wOptimizer: zoned FPQA with CCZ gate compression"
    capabilities = frozenset({CAP_FORMULA, CAP_WQASM, CAP_VERIFY})
    default_pipeline = (
        "clause-coloring",
        "zone-layout",
        "color-shuttling",
        "gate-compression",
        "codegen",
    )

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        compression: bool | None = None,
        coloring_algorithm: str = "dsatur",
    ):
        self.hardware = hardware or FPQAHardwareParams()
        self.compression = compression
        self.coloring_algorithm = coloring_algorithm

    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        measure: bool = True,
        compression: bool | None = None,
        **options,
    ) -> CompilationResult:
        from ..passes.woptimizer import FPQACompiler

        formula = workload.require_formula(self.name)
        coloring_algorithm = options.pop("coloring_algorithm", self.coloring_algorithm)
        _reject_unknown_options(self.name, options)
        compiler = FPQACompiler(
            hardware=self.hardware,
            compression=compression if compression is not None else self.compression,
            coloring_algorithm=coloring_algorithm,
        )
        result = compiler.compile(formula, parameters or QaoaParameters(), measure=measure)
        if deadline is not None:
            deadline.check()
        program = result.program
        duration_us = program_duration_us(program, self.hardware)
        eps = program_eps(program, self.hardware, duration_us)
        return CompilationResult(
            target=self.name,
            workload=workload.name,
            num_qubits=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=duration_us * 1e-6,
            eps=eps,
            num_pulses=program.total_pulses,
            program=program,
            native_circuit=result.native_circuit,
            stats=dict(result.stats),
        )


class NoCompressFPQATarget(FPQATarget):
    """The compression ablation as a first-class target (Fig. 10c)."""

    name = "fpqa-nocompress"
    description = "Weaver FPQA path with 3-qubit CCZ compression disabled"

    def __init__(self, hardware: FPQAHardwareParams | None = None, **kw):
        kw.pop("compression", None)
        super().__init__(hardware=hardware, compression=False, **kw)


class SuperconductingTarget(Target):
    """SABRE routing onto a Washington-like 127-qubit heavy-hex device."""

    name = "superconducting"
    description = "Qiskit-style transpile to a 127-qubit heavy-hex backend"
    capabilities = frozenset({CAP_FORMULA, CAP_CIRCUIT})
    default_pipeline = ("qaoa-lowering", "basis-translation", "sabre-routing")

    def __init__(self, backend=None, seed: int = 0):
        from ..superconducting.backend import washington_backend

        self.backend = backend or washington_backend()
        self.seed = seed

    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        measure: bool = True,
        **options,
    ) -> CompilationResult:
        from ..superconducting.transpiler import SuperconductingTranspiler

        _reject_unknown_options(self.name, options)
        if workload.num_qubits > self.backend.num_qubits:
            raise RoutingError(
                f"{workload.num_qubits} qubits exceed the "
                f"{self.backend.num_qubits}-qubit backend"
            )
        circuit = workload.circuit(parameters, measure=measure)
        transpiler = SuperconductingTranspiler(self.backend, seed=self.seed)
        result = transpiler.transpile(circuit)
        if deadline is not None:
            deadline.check()
        return CompilationResult(
            target=self.name,
            workload=workload.name,
            num_qubits=workload.num_qubits,
            num_clauses=workload.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=result.duration_us * 1e-6,
            eps=result.eps,
            num_pulses=None,  # not a pulse-level target
            native_circuit=circuit,
            stats={
                "num_swaps": result.num_swaps,
                "counts": result.counts,
                "depth": result.circuit.depth(),
            },
        )


class BaselineTarget(Target):
    """Adapter: any legacy :class:`BaselineCompiler` as a target."""

    capabilities = frozenset({CAP_FORMULA})
    #: Subclasses set the wrapped compiler class.
    baseline_cls: type | None = None

    def __init__(self, **compiler_options):
        self._compiler = self.baseline_cls(**compiler_options)

    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        measure: bool = True,
        **options,
    ) -> CompilationResult:
        if not measure:
            # The wrapped pipelines always lower to a measured circuit.
            raise TargetError(
                f"target {self.name!r} always measures; measure=False is "
                "not supported"
            )
        _reject_unknown_options(self.name, options)
        formula = workload.require_formula(self.name)
        row = self._compiler.compile_formula(formula, parameters, deadline)
        result = CompilationResult.from_baseline_result(row, target=self.name)
        result.workload = workload.name
        return result


class AtomiqueTarget(BaselineTarget):
    name = "atomique"
    description = "fixed atom array, SABRE mapping, movement-based routing"
    default_pipeline = ("qaoa-lowering", "nativize", "sabre-routing", "scheduling")

    @staticmethod
    def baseline_cls(**kw):
        from ..baselines.atomique import AtomiqueCompiler

        return AtomiqueCompiler(**kw)


class GeyserTarget(BaselineTarget):
    name = "geyser"
    description = "3-qubit circuit blocking on a fixed triangular lattice"
    default_budget_seconds = 60.0
    default_pipeline = ("qaoa-lowering", "sabre-routing", "blocking", "composition")

    @staticmethod
    def baseline_cls(**kw):
        from ..baselines.geyser import GeyserCompiler

        return GeyserCompiler(**kw)


class DpqaTarget(BaselineTarget):
    name = "dpqa"
    description = "solver-based Rydberg stage scheduling (exact MIS)"
    default_budget_seconds = 60.0
    default_pipeline = ("qaoa-lowering", "nativize", "mis-staging")

    @staticmethod
    def baseline_cls(**kw):
        from ..baselines.dpqa import DpqaCompiler

        return DpqaCompiler(**kw)
