"""The six built-in targets behind the registry.

Two native implementations and a generic adapter:

* :class:`FPQATarget` — the real Weaver pipeline (wOptimizer passes plus
  code generation), the paper's FPQA path.  ``fpqa-nocompress`` is the
  same target with 3-qubit gate compression forced off (Figure 10c's
  ablation).
* :class:`SuperconductingTarget` — the Qiskit-style transpiler path onto
  the 127-qubit heavy-hex backend.  The only target that consumes raw
  circuit workloads as well as formulas.
* :class:`BaselineTarget` — adapter class exposing the re-implemented
  comparison compilers (Atomique, Geyser, DPQA) through the same seam.
"""

from __future__ import annotations

from ..baselines.base import Deadline
from ..devices.cost import cost_model_for
from ..devices.profile import DeviceProfile
from ..devices.registry import resolve_device
from ..exceptions import RoutingError, TargetError
from ..fpqa.hardware import FPQAHardwareParams
from ..qaoa.builder import QaoaParameters
from .base import CAP_CIRCUIT, CAP_FORMULA, CAP_VERIFY, CAP_WQASM, Target
from .result import CompilationResult
from .workload import Workload


def _reject_unknown_options(target: str, options: dict) -> None:
    """Unknown compile options are an error, never a silent no-op."""
    if options:
        raise TargetError(
            f"target {target!r} does not support option(s): "
            f"{', '.join(sorted(options))}"
        )


def _resolve_profile(
    target: str, device: str | DeviceProfile, kind: str
) -> DeviceProfile:
    """Look up ``device`` and insist it matches the target's hardware kind."""
    profile = resolve_device(device)
    if profile.kind != kind:
        raise TargetError(
            f"target {target!r} needs a {kind} device profile; "
            f"{profile.name!r} is {profile.kind}"
        )
    return profile


class FPQATarget(Target):
    """Weaver's FPQA path: clause coloring -> shuttling -> compression."""

    name = "fpqa"
    description = "Weaver wOptimizer: zoned FPQA with CCZ gate compression"
    capabilities = frozenset({CAP_FORMULA, CAP_WQASM, CAP_VERIFY})
    default_pipeline = (
        "clause-coloring",
        "zone-layout",
        "color-shuttling",
        "gate-compression",
        "codegen",
    )

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        compression: bool | None = None,
        coloring_algorithm: str = "dsatur",
        device: str | DeviceProfile | None = None,
        optimize=True,
        **unknown,
    ):
        _reject_unknown_options(self.name, unknown)
        self.profile: DeviceProfile | None = None
        if device is not None:
            if hardware is not None:
                raise TargetError(
                    f"target {self.name!r}: pass either hardware= or "
                    "device=, not both"
                )
            self.profile = _resolve_profile(self.name, device, "fpqa")
            hardware = self.profile.hardware
        self.hardware = hardware or FPQAHardwareParams()
        self.device_name = self.profile.name if self.profile else None
        self.compression = compression
        self.coloring_algorithm = coloring_algorithm
        # bool or repro.perf.OptimizationFlags; False runs the unoptimized
        # reference pipeline (benchmarking / equivalence).  Validate here
        # so a bad value is a user error at construction, not a crash
        # mid-compile.
        from ..perf import OptimizationFlags

        try:
            self.optimize = OptimizationFlags.coerce(optimize)
        except TypeError as exc:
            raise TargetError(f"target {self.name!r}: {exc}") from exc

    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        measure: bool = True,
        compression: bool | None = None,
        **options,
    ) -> CompilationResult:
        from ..passes.woptimizer import FPQACompiler

        formula = workload.require_formula(self.name)
        if (
            self.profile is not None
            and self.profile.max_qubits is not None
            and formula.num_vars > self.profile.max_qubits
        ):
            raise RoutingError(
                f"{formula.num_vars} qubits exceed device "
                f"{self.profile.name!r} capacity of {self.profile.max_qubits} atoms"
            )
        coloring_algorithm = options.pop("coloring_algorithm", self.coloring_algorithm)
        _reject_unknown_options(self.name, options)
        compiler = FPQACompiler(
            hardware=self.hardware,
            compression=compression if compression is not None else self.compression,
            coloring_algorithm=coloring_algorithm,
            optimize=self.optimize,
        )
        result = compiler.compile(formula, parameters or QaoaParameters(), measure=measure)
        if deadline is not None:
            deadline.check()
        program = result.program
        cost = cost_model_for(self.hardware)
        duration_us = cost.program_duration_us(program)
        eps = cost.program_eps(program, duration_us)
        return CompilationResult(
            target=self.name,
            workload=workload.name,
            num_qubits=formula.num_vars,
            num_clauses=formula.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=duration_us * 1e-6,
            eps=eps,
            num_pulses=program.total_pulses,
            program=program,
            native_circuit=result.native_circuit,
            stats=dict(result.stats),
            profile=result.profile,
            device=self.device_name,
            device_profile=self.profile.to_dict() if self.profile else None,
        )


class NoCompressFPQATarget(FPQATarget):
    """The compression ablation as a first-class target (Fig. 10c)."""

    name = "fpqa-nocompress"
    description = "Weaver FPQA path with 3-qubit CCZ compression disabled"

    def __init__(
        self,
        hardware: FPQAHardwareParams | None = None,
        compression: bool | None = None,
        **kw,
    ):
        # Historically a compression= option here was dropped on the
        # floor; asking this target to compress is a user error.
        if compression:
            raise TargetError(
                "target 'fpqa-nocompress' forces compression off; use "
                "target 'fpqa' to compile with compression"
            )
        super().__init__(hardware=hardware, compression=False, **kw)

    def run(self, workload, parameters, deadline, compression=None, **options):
        if compression:
            raise TargetError(
                "target 'fpqa-nocompress' forces compression off; use "
                "target 'fpqa' to compile with compression"
            )
        return super().run(
            workload, parameters, deadline, compression=False, **options
        )


class SuperconductingTarget(Target):
    """SABRE routing onto a Washington-like 127-qubit heavy-hex device."""

    name = "superconducting"
    description = "Qiskit-style transpile to a 127-qubit heavy-hex backend"
    capabilities = frozenset({CAP_FORMULA, CAP_CIRCUIT})
    default_pipeline = ("qaoa-lowering", "basis-translation", "sabre-routing")

    def __init__(
        self,
        backend=None,
        seed: int = 0,
        device: str | DeviceProfile | None = None,
        **unknown,
    ):
        from ..superconducting.backend import washington_backend

        _reject_unknown_options(self.name, unknown)
        self.profile: DeviceProfile | None = None
        if device is not None:
            if backend is not None:
                raise TargetError(
                    f"target {self.name!r}: pass either backend= or "
                    "device=, not both"
                )
            self.profile = _resolve_profile(self.name, device, "superconducting")
            backend = self.profile.backend
        self.backend = backend or washington_backend()
        self.device_name = self.profile.name if self.profile else None
        self.seed = seed

    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        measure: bool = True,
        **options,
    ) -> CompilationResult:
        from ..superconducting.transpiler import SuperconductingTranspiler

        _reject_unknown_options(self.name, options)
        if workload.num_qubits > self.backend.num_qubits:
            raise RoutingError(
                f"{workload.num_qubits} qubits exceed the "
                f"{self.backend.num_qubits}-qubit backend"
            )
        circuit = workload.circuit(parameters, measure=measure)
        transpiler = SuperconductingTranspiler(self.backend, seed=self.seed)
        result = transpiler.transpile(circuit)
        if deadline is not None:
            deadline.check()
        return CompilationResult(
            target=self.name,
            workload=workload.name,
            num_qubits=workload.num_qubits,
            num_clauses=workload.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=result.duration_us * 1e-6,
            eps=result.eps,
            num_pulses=None,  # not a pulse-level target
            native_circuit=circuit,
            stats={
                "num_swaps": result.num_swaps,
                "counts": result.counts,
                "depth": result.circuit.depth(),
            },
            device=self.device_name,
            device_profile=self.profile.to_dict() if self.profile else None,
        )


class BaselineTarget(Target):
    """Adapter: any legacy :class:`BaselineCompiler` as a target."""

    capabilities = frozenset({CAP_FORMULA})
    #: Subclasses set the wrapped compiler class.
    baseline_cls: type | None = None

    def __init__(self, **compiler_options):
        if "device" in compiler_options:
            raise TargetError(
                f"target {self.name!r} does not support device profiles; "
                "only fpqa and superconducting targets are device-aware"
            )
        try:
            self._compiler = self.baseline_cls(**compiler_options)
        except TypeError as exc:
            # Unknown constructor options are a user error, not a crash.
            raise TargetError(f"target {self.name!r}: {exc}") from exc

    def run(
        self,
        workload: Workload,
        parameters: QaoaParameters | None,
        deadline: Deadline | None,
        measure: bool = True,
        **options,
    ) -> CompilationResult:
        if not measure:
            # The wrapped pipelines always lower to a measured circuit.
            raise TargetError(
                f"target {self.name!r} always measures; measure=False is "
                "not supported"
            )
        _reject_unknown_options(self.name, options)
        formula = workload.require_formula(self.name)
        row = self._compiler.compile_formula(formula, parameters, deadline)
        result = CompilationResult.from_baseline_result(row, target=self.name)
        result.workload = workload.name
        return result


class AtomiqueTarget(BaselineTarget):
    name = "atomique"
    description = "fixed atom array, SABRE mapping, movement-based routing"
    default_pipeline = ("qaoa-lowering", "nativize", "sabre-routing", "scheduling")

    @staticmethod
    def baseline_cls(**kw):
        from ..baselines.atomique import AtomiqueCompiler

        return AtomiqueCompiler(**kw)


class GeyserTarget(BaselineTarget):
    name = "geyser"
    description = "3-qubit circuit blocking on a fixed triangular lattice"
    default_budget_seconds = 60.0
    default_pipeline = ("qaoa-lowering", "sabre-routing", "blocking", "composition")

    @staticmethod
    def baseline_cls(**kw):
        from ..baselines.geyser import GeyserCompiler

        return GeyserCompiler(**kw)


class DpqaTarget(BaselineTarget):
    name = "dpqa"
    description = "solver-based Rydberg stage scheduling (exact MIS)"
    default_budget_seconds = 60.0
    default_pipeline = ("qaoa-lowering", "nativize", "mis-staging")

    @staticmethod
    def baseline_cls(**kw):
        from ..baselines.dpqa import DpqaCompiler

        return DpqaCompiler(**kw)
