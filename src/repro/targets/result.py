"""The common result record every target returns.

:class:`CompilationResult` unifies the two historical result types —
:class:`~repro.passes.woptimizer.WeaverCompilationResult` (FPQA path,
carries the wQasm program) and
:class:`~repro.baselines.base.BaselineResult` (evaluation rows) — into
one JSON-serializable record, so the evaluation harness, the session
cache, and user code all consume the same shape regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..wqasm.program import WQasmProgram

#: Schema version stamped into serialized results; bump when the dict
#: layout changes so stale cache entries are ignored rather than misread.
RESULT_SCHEMA_VERSION = 1


def jsonify(value: Any) -> Any:
    """Best-effort conversion of metric payloads into JSON-safe values.

    Shared by every result serializer in the framework (unified results,
    legacy :class:`~repro.baselines.base.BaselineResult` rows).
    """
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [jsonify(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


@dataclass
class CompilationResult:
    """One compilation of one workload for one target."""

    target: str
    workload: str
    num_qubits: int
    num_clauses: int | None = None
    #: Name of the device profile compiled for (``None`` = target default).
    device: str | None = None
    #: JSON snapshot of that profile (result provenance: a stored result
    #: reconstructs the exact machine via ``DeviceProfile.from_dict``).
    device_profile: dict | None = None
    compile_seconds: float = 0.0
    execution_seconds: float | None = None
    eps: float | None = None
    num_pulses: int | None = None
    timed_out: bool = False
    error: str | None = None
    #: The emitted wQasm program, for targets that produce one (FPQA).
    program: WQasmProgram | None = None
    #: The hardware-agnostic reference circuit, when the target builds one.
    native_circuit: Any = None
    #: Per-pass statistics and backend-specific extras.
    stats: dict = field(default_factory=dict)
    #: Per-pass / per-primitive performance profile (see
    #: :mod:`repro.perf`); ``None`` for targets without instrumentation.
    profile: dict | None = None
    #: JSON payload of a simulated execution (see :mod:`repro.sim`);
    #: populated by ``repro.compile(..., simulate=...)`` and the
    #: service's ``sim`` jobs.  Decode with ``ExecutionResult.from_dict``.
    execution: dict | None = None
    #: JSON payload of a static-analysis report (see
    #: :mod:`repro.analysis`); populated by
    #: ``repro.compile(..., analyze=...)`` and the service's ``lint``
    #: jobs.  Decode with ``AnalysisReport.from_dict``.
    analysis: dict | None = None
    cached: bool = False

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    # ------------------------------------------------------------------
    # JSON round trip (used by the session's on-disk cache and the
    # evaluation ResultStore persistence)
    # ------------------------------------------------------------------
    def to_dict(self, include_program: bool = True) -> dict:
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "target": self.target,
            "workload": self.workload,
            "num_qubits": self.num_qubits,
            "num_clauses": self.num_clauses,
            "device": self.device,
            "device_profile": jsonify(self.device_profile)
            if self.device_profile is not None
            else None,
            "compile_seconds": self.compile_seconds,
            "execution_seconds": self.execution_seconds,
            "eps": self.eps,
            "num_pulses": self.num_pulses,
            "timed_out": self.timed_out,
            "error": self.error,
            "stats": jsonify(self.stats),
            "profile": jsonify(self.profile) if self.profile is not None else None,
            "execution": jsonify(self.execution)
            if self.execution is not None
            else None,
            "analysis": jsonify(self.analysis)
            if self.analysis is not None
            else None,
        }
        if include_program and self.program is not None:
            payload["program_wqasm"] = self.program.to_wqasm()
        if include_program and self.native_circuit is not None:
            # Preserve the verification reference across the cache, so a
            # disk hit can still be checked against the original circuit.
            try:
                from ..qasm import circuit_to_qasm

                payload["native_qasm"] = circuit_to_qasm(self.native_circuit)
            except Exception:  # noqa: BLE001 — cache stays usable without it
                pass
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CompilationResult":
        if payload.get("schema") != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {payload.get('schema')!r}"
            )
        program = None
        text = payload.get("program_wqasm")
        if text:
            from ..wqasm import parse_wqasm

            program = parse_wqasm(text, name=payload["workload"])
        native_circuit = None
        native_text = payload.get("native_qasm")
        if native_text:
            from ..qasm import qasm_to_circuit

            native_circuit = qasm_to_circuit(native_text, name=payload["workload"])
        return cls(
            target=payload["target"],
            workload=payload["workload"],
            num_qubits=payload["num_qubits"],
            num_clauses=payload.get("num_clauses"),
            device=payload.get("device"),
            device_profile=payload.get("device_profile"),
            compile_seconds=payload.get("compile_seconds", 0.0),
            execution_seconds=payload.get("execution_seconds"),
            eps=payload.get("eps"),
            num_pulses=payload.get("num_pulses"),
            timed_out=payload.get("timed_out", False),
            error=payload.get("error"),
            program=program,
            native_circuit=native_circuit,
            stats=payload.get("stats", {}),
            profile=payload.get("profile"),
            execution=payload.get("execution"),
            analysis=payload.get("analysis"),
            cached=True,
        )

    # ------------------------------------------------------------------
    # Execution views
    # ------------------------------------------------------------------
    def as_circuit(self):
        """The canonical executable circuit of this result.

        For wQasm-producing targets the circuit is reconstructed from
        the compiled *annotation stream* (pulse-to-gate replay on the
        result's device profile) — the artifact, not the logical
        circuit it claims — so simulating or inspecting it exercises
        what the compiler actually emitted.  Gate-level targets return
        their native circuit.  The returned circuit carries no
        measurements; append them if needed.

        This is the one supported way to get a circuit view of a
        result; reaching into ``repro.checker`` internals for ad-hoc
        reconstruction is deprecated.
        """
        if self.program is not None:
            from ..checker.pulse_to_gate import reconstruct_circuit

            return reconstruct_circuit(self.program, self.fpqa_hardware())
        if self.native_circuit is not None:
            return self.native_circuit
        from ..exceptions import TargetError

        raise TargetError(
            f"target {self.target!r} produced neither a wQasm program nor "
            "a circuit; there is nothing to reconstruct"
        )

    def fpqa_hardware(self):
        """The FPQA hardware parameters this result was compiled for.

        Reconstructed from the ``device_profile`` provenance; ``None``
        when the result carries no profile (target defaults apply) or
        the profile is not an FPQA machine.  Public seam for metric and
        simulator code that re-evaluates a result on its own hardware.
        """
        if self.device_profile is None:
            return None
        from ..devices.profile import KIND_FPQA, DeviceProfile

        profile = DeviceProfile.from_dict(self.device_profile)
        return profile.hardware if profile.kind == KIND_FPQA else None

    def simulate(
        self,
        shots: int = 1024,
        noise=1.0,
        seed=0,
        formula=None,
        max_trajectories: int = 8,
        profiler=None,
    ):
        """Execute this result on the noise-aware simulator.

        Returns an :class:`~repro.sim.ExecutionResult`; see
        :func:`repro.sim.simulate_result` for the parameters.  Pass the
        workload's CNF ``formula`` to get solution-quality metrics.
        This method is pure — use ``repro.compile(..., simulate=...)``
        to record the execution on the result itself.
        """
        from ..sim import simulate_result

        return simulate_result(
            self,
            shots=shots,
            noise=noise,
            seed=seed,
            formula=formula,
            max_trajectories=max_trajectories,
            profiler=profiler,
        )

    def analyze(self):
        """Statically verify this result with the wLint analyzer.

        Returns an :class:`~repro.analysis.AnalysisReport`: one linear
        pass over the compiled artifact (the pulse IR for FPQA targets,
        the circuit IR otherwise) proving constraint safety without
        simulation — the cheapest tier of the evidence ladder (lint ->
        wChecker -> simulate).  This method is pure — use
        ``repro.compile(..., analyze=...)`` to record the report on the
        result itself.
        """
        from ..analysis import analyze_result

        return analyze_result(self)

    # ------------------------------------------------------------------
    # Interop with the legacy evaluation record
    # ------------------------------------------------------------------
    def to_baseline_result(self, compiler: str | None = None):
        """View this result as a legacy :class:`BaselineResult` row."""
        from ..baselines.base import BaselineResult

        extra = dict(self.stats)
        if self.device is not None:
            extra.setdefault("device", self.device)
        return BaselineResult(
            compiler=compiler or self.target,
            workload=self.workload,
            num_vars=self.num_qubits,
            num_clauses=self.num_clauses or 0,
            compile_seconds=self.compile_seconds,
            execution_seconds=self.execution_seconds,
            eps=self.eps,
            num_pulses=self.num_pulses,
            timed_out=self.timed_out,
            error=self.error,
            extra=extra,
        )

    @classmethod
    def from_baseline_result(cls, result, target: str | None = None) -> "CompilationResult":
        """Lift a legacy :class:`BaselineResult` into the unified record."""
        return cls(
            target=target or result.compiler,
            workload=result.workload,
            num_qubits=result.num_vars,
            num_clauses=result.num_clauses,
            compile_seconds=result.compile_seconds,
            execution_seconds=result.execution_seconds,
            eps=result.eps,
            num_pulses=result.num_pulses,
            timed_out=result.timed_out,
            error=result.error,
            stats=dict(result.extra),
        )
